#include "map/fault_tolerance.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "sim/rng.hpp"

namespace rtg::map {

// ---------------------------------------------------------------------------
// Platform state

PlatformState PlatformState::nominal_for(const Platform& platform) {
  PlatformState s;
  s.proc_down.assign(platform.processors(), 0);
  s.link_down.assign(platform.links.size(), 0);
  s.link_factor.assign(platform.links.size(), 1);
  return s;
}

bool PlatformState::nominal() const {
  for (const std::uint8_t d : proc_down) {
    if (d) return false;
  }
  for (const std::uint8_t d : link_down) {
    if (d) return false;
  }
  for (const Time f : link_factor) {
    if (f > 1) return false;
  }
  return true;
}

std::vector<ProcId> PlatformState::failed_procs() const {
  std::vector<ProcId> failed;
  for (ProcId p = 0; p < proc_down.size(); ++p) {
    if (proc_down[p]) failed.push_back(p);
  }
  return failed;
}

bool PlatformState::links_disturbed() const {
  for (const std::uint8_t d : link_down) {
    if (d) return true;
  }
  for (const Time f : link_factor) {
    if (f > 1) return true;
  }
  return false;
}

std::string PlatformState::describe(const Platform& platform) const {
  std::string s;
  auto add = [&](const std::string& part) {
    if (!s.empty()) s += "; ";
    s += part;
  };
  for (ProcId p = 0; p < proc_down.size(); ++p) {
    if (proc_down[p]) add(platform.processor_names[p] + " down");
  }
  for (std::size_t l = 0; l < link_down.size(); ++l) {
    if (link_down[l]) {
      add("link " + platform.links[l].name + " down");
    } else if (l < link_factor.size() && link_factor[l] > 1) {
      add("link " + platform.links[l].name + " /" + std::to_string(link_factor[l]));
    }
  }
  return s.empty() ? "nominal" : s;
}

std::string PlatformState::key() const {
  std::string k;
  k.reserve(proc_down.size() + 2 * link_down.size() + 2);
  for (const std::uint8_t d : proc_down) k += d ? '1' : '0';
  k += '|';
  for (const std::uint8_t d : link_down) k += d ? '1' : '0';
  k += '|';
  for (const Time f : link_factor) {
    k += std::to_string(f);
    k += ',';
  }
  return k;
}

PlatformState platform_state_at(const core::FaultInjector& injector,
                                const Platform& platform, Time t) {
  PlatformState s = PlatformState::nominal_for(platform);
  for (ProcId p = 0; p < platform.processors(); ++p) {
    s.proc_down[p] = injector.processor_down(p, t) ? 1 : 0;
  }
  for (std::size_t l = 0; l < platform.links.size(); ++l) {
    s.link_down[l] = injector.link_down(l, t) ? 1 : 0;
    s.link_factor[l] = injector.link_degrade(l, t);
  }
  return s;
}

Platform apply_state(const Platform& base, const PlatformState& state) {
  Platform degraded = base;
  for (std::size_t l = 0; l < degraded.links.size(); ++l) {
    Link& link = degraded.links[l];
    if (l < state.link_down.size() && state.link_down[l]) {
      link.routes.clear();
      continue;
    }
    std::erase_if(link.routes, [&](const Route& r) {
      return (r.first < state.proc_down.size() && state.proc_down[r.first]) ||
             (r.second < state.proc_down.size() && state.proc_down[r.second]);
    });
    if (l < state.link_factor.size() && state.link_factor[l] > 1) {
      link.bandwidth = std::max<Time>(1, link.bandwidth / state.link_factor[l]);
    }
  }
  return degraded;
}

core::PlatformNames platform_names(const Platform& platform) {
  core::PlatformNames names;
  names.processors = platform.processor_names;
  names.links.reserve(platform.links.size());
  for (const Link& link : platform.links) names.links.push_back(link.name);
  return names;
}

// ---------------------------------------------------------------------------
// Tolerant deployment

const MigrationEntry* MigrationTable::find(const std::vector<ProcId>& failed) const {
  const auto it = std::lower_bound(
      entries.begin(), entries.end(), failed,
      [](const MigrationEntry& e, const std::vector<ProcId>& f) { return e.failed < f; });
  if (it == entries.end() || it->failed != failed) return nullptr;
  return &*it;
}

std::vector<ProcId> migrate_assignment(const std::vector<ProcId>& primary,
                                       const std::vector<ProcId>& standby,
                                       const std::vector<ProcId>& failed,
                                       std::size_t processors) {
  auto down = [&](ProcId p) {
    return std::binary_search(failed.begin(), failed.end(), p);
  };
  std::vector<ProcId> patched = primary;
  for (std::size_t e = 0; e < patched.size(); ++e) {
    if (!down(patched[e])) continue;
    ProcId target = e < standby.size() ? standby[e] : patched[e];
    for (std::size_t step = 0; step < processors && down(target); ++step) {
      target = (target + 1) % processors;
    }
    patched[e] = target;
  }
  return patched;
}

namespace {

// Standby placement: process elements in id order, put each replica on
// the processor (!= primary) with the least primary+replica load so far
// — deterministic, and replicas spread instead of stacking on the one
// lightest processor.
std::vector<ProcId> choose_standby(const core::CommGraph& comm,
                                   const std::vector<ProcId>& primary,
                                   std::size_t processors) {
  std::vector<Time> load(processors, 0);
  for (ElementId e = 0; e < comm.size(); ++e) {
    if (comm.has_element(e) && primary[e] < processors) {
      load[primary[e]] += comm.weight(e);
    }
  }
  std::vector<ProcId> standby(primary.size(), 0);
  for (ElementId e = 0; e < comm.size() && e < primary.size(); ++e) {
    const ProcId home = primary[e];
    ProcId best = home == 0 && processors > 1 ? 1 : 0;
    for (ProcId p = 0; p < processors; ++p) {
      if (p == home) continue;
      if (load[p] < load[best] || (load[p] == load[best] && p < best)) best = p;
    }
    standby[e] = best;
    if (comm.has_element(e)) load[best] += comm.weight(e);
  }
  return standby;
}

void enumerate_subsets(std::size_t processors, std::size_t k,
                       std::vector<std::vector<ProcId>>& out) {
  std::vector<ProcId> cur;
  auto rec = [&](auto&& self, ProcId start) -> void {
    if (!cur.empty()) out.push_back(cur);
    if (cur.size() == k) return;
    for (ProcId p = start; p < processors; ++p) {
      cur.push_back(p);
      self(self, p + 1);
      cur.pop_back();
    }
  };
  rec(rec, 0);
  std::sort(out.begin(), out.end(),
            [](const std::vector<ProcId>& a, const std::vector<ProcId>& b) {
              return a < b;
            });
}

std::string scenario_name(const std::vector<ProcId>& failed, const Platform& platform) {
  std::string s = "{";
  for (std::size_t i = 0; i < failed.size(); ++i) {
    if (i) s += ",";
    s += platform.processor_names[failed[i]];
  }
  s += "}";
  return s;
}

}  // namespace

TolerantDeployment deploy_tolerant(const core::GraphModel& model,
                                   const Platform& platform,
                                   const TolerantOptions& options) {
  TolerantDeployment out;
  out.k = options.k;
  out.base = deploy(model, platform, options.deploy);
  out.cancelled = out.base.cancelled;
  if (!out.base.success) {
    out.failure_reason = "nominal deployment failed: " + out.base.failure_reason;
    return out;
  }
  out.success = true;

  const std::size_t m = platform.processors();
  const std::size_t k = std::min(options.k, m > 0 ? m - 1 : 0);
  out.k = k;
  out.standby = choose_standby(out.base.scheduled_model.comm(),
                               out.base.mapping.assignment, m);
  if (k == 0) {
    out.tolerant = true;
    return out;
  }

  std::vector<std::vector<ProcId>> scenarios;
  enumerate_subsets(m, k, scenarios);
  if (scenarios.size() > options.max_scenarios) {
    out.failure_reason = "scenario budget exceeded: C(P,<=k) = " +
                         std::to_string(scenarios.size()) + " > max_scenarios = " +
                         std::to_string(options.max_scenarios);
    return out;
  }
  out.scenarios = scenarios.size();

  for (const std::vector<ProcId>& failed : scenarios) {
    PlatformState state = PlatformState::nominal_for(platform);
    for (const ProcId p : failed) state.proc_down[p] = 1;
    const Platform degraded = apply_state(platform, state);
    std::vector<ProcId> patched = migrate_assignment(
        out.base.mapping.assignment, out.standby, failed, m);
    Deployment d = deploy_assignment(out.base.scheduled_model, degraded,
                                     std::move(patched), options.deploy, "migrate");
    if (d.cancelled) {
      out.cancelled = true;
      out.failure_reason = "cancelled while proving migration " +
                           scenario_name(failed, platform);
      return out;
    }
    if (d.success) {
      out.table.entries.push_back(MigrationEntry{failed, std::move(d)});
    } else {
      out.uncovered.push_back(UncoveredScenario{
          failed, "migration " + scenario_name(failed, platform) +
                      " inadmissible: " + d.failure_reason});
    }
  }
  out.tolerant = out.uncovered.empty();
  if (!out.tolerant && out.failure_reason.empty()) {
    out.failure_reason = out.uncovered.front().reason;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Degraded-mode communication rescheduling

RerouteResult reroute_messages(const Deployment& deployment, const Platform& degraded,
                               const SeamOptions& seam) {
  RerouteResult out;
  std::string why;
  auto messages = collect_messages(deployment.scheduled_model, degraded,
                                   deployment.mapping.assignment, &why);
  if (!messages) {
    out.failure_reason = "no feasible reroute: " + why;
    return out;
  }
  out.messages = std::move(*messages);
  out.comm = build_comm_schedule(degraded, out.messages);
  const CommCheck check = check_comm_schedule(degraded, out.comm);
  if (!check.ok) {
    out.failure_reason = "rerouted comm schedule invalid: " + check.diagnostics.front();
    return out;
  }
  for (const Message& msg : out.comm.messages) {
    const std::size_t old = deployment.comm.find_message(msg.from, msg.to);
    if (old == CommSchedule::npos ||
        deployment.comm.messages[old].link != msg.link) {
      ++out.rerouted;
    }
  }

  bool all_ok = true;
  const auto& constraints = deployment.scheduled_model.constraints();
  for (std::size_t c = 0; c < constraints.size(); ++c) {
    GlobalWitness witness;
    SeamOptions opts = seam;
    opts.witness = &witness;
    const auto latency = distributed_latency(
        constraints[c].task_graph, deployment.processor_schedules,
        deployment.mapping.assignment, out.comm, opts);
    out.end_to_end.push_back(latency);
    if (!latency || *latency > constraints[c].deadline) {
      all_ok = false;
      if (out.failure_reason.empty()) {
        out.failure_reason =
            "constraint '" + constraints[c].name + "': no feasible reroute (" +
            (latency ? "latency " + std::to_string(*latency) + " > deadline " +
                           std::to_string(constraints[c].deadline)
                     : "no distributed execution over surviving routes") +
            ")";
      }
      continue;
    }
    const auto bad = check_witness(constraints[c].task_graph,
                                   deployment.processor_schedules,
                                   deployment.mapping.assignment, out.comm, witness);
    if (bad) {
      all_ok = false;
      if (out.failure_reason.empty()) {
        out.failure_reason = "constraint '" + constraints[c].name +
                             "': reroute witness invalid: " + *bad;
      }
      continue;
    }
    out.witnesses.push_back(std::move(witness));
    out.witness_constraint.push_back(c);
  }
  out.success = all_ok;
  return out;
}

// ---------------------------------------------------------------------------
// The run loop

namespace {

// One cached configuration: what the healed loop dispatches for a given
// platform state. `dep` points into the TolerantDeployment (base or a
// MigrationTable entry); reroute, when present, replaces its tables.
struct ActiveConfig {
  const Deployment* dep = nullptr;
  std::vector<ProcId> failed;  ///< the entry's failure set (empty = base)
  std::optional<RerouteResult> reroute;
  EpochRecord::Mode mode = EpochRecord::Mode::kNominal;
  /// Per-constraint verdict on the state this config was built for.
  std::vector<std::uint8_t> proven_ok;
  std::string state_key;
  std::string detail;
  bool outage = false;
};

// Structural verdict of a configuration evaluated against a state it
// was *not* built for (the blind baseline, the detection/switch gap,
// and outage epochs): every element of the constraint must sit on a
// live processor, and every cross message must ride a live link whose
// degraded bandwidth still fits the slot run its table reserved.
bool structural_ok(const Deployment& dep, const CommSchedule& comm,
                   const Platform& base_platform, const PlatformState& state,
                   const core::TimingConstraint& c) {
  const auto& assignment = dep.mapping.assignment;
  for (const ElementId e : c.task_graph.labels()) {
    const ProcId p = assignment[e];
    if (p < state.proc_down.size() && state.proc_down[p]) return false;
  }
  for (const graph::Edge& edge : c.task_graph.skeleton().edges()) {
    const ElementId u = c.task_graph.label(edge.from);
    const ElementId v = c.task_graph.label(edge.to);
    if (assignment[u] == assignment[v]) continue;
    const std::size_t mi = comm.find_message(u, v);
    if (mi == CommSchedule::npos) return false;
    const Message& msg = comm.messages[mi];
    if (msg.link < state.link_down.size() && state.link_down[msg.link]) return false;
    const Time factor =
        msg.link < state.link_factor.size() ? state.link_factor[msg.link] : 1;
    if (factor > 1) {
      const Time nominal_bw =
          std::max<Time>(base_platform.links[msg.link].bandwidth, 1);
      const Time degraded_bw = std::max<Time>(1, nominal_bw / factor);
      const Time needed = (std::max<Time>(msg.size, 1) + degraded_bw - 1) / degraded_bw;
      if (needed > msg.slots) return false;
    }
  }
  return true;
}

std::vector<std::uint8_t> structural_verdicts(const Deployment& dep,
                                              const CommSchedule& comm,
                                              const Platform& base_platform,
                                              const PlatformState& state) {
  const auto& constraints = dep.scheduled_model.constraints();
  std::vector<std::uint8_t> ok(constraints.size(), 0);
  for (std::size_t c = 0; c < constraints.size(); ++c) {
    ok[c] = structural_ok(dep, comm, base_platform, state, constraints[c]) ? 1 : 0;
  }
  return ok;
}

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 0x100000001b3ULL;
  }
}

}  // namespace

std::uint64_t PlatformFaultRun::fingerprint() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const EpochRecord& e : epochs) {
    fnv_mix(h, static_cast<std::uint64_t>(e.begin));
    fnv_mix(h, static_cast<std::uint64_t>(e.end));
    fnv_mix(h, static_cast<std::uint64_t>(e.mode));
    for (const std::uint8_t d : e.state.proc_down) fnv_mix(h, d);
    for (const std::uint8_t d : e.state.link_down) fnv_mix(h, d);
    for (const Time f : e.state.link_factor) fnv_mix(h, static_cast<std::uint64_t>(f));
    for (const std::uint8_t ok : e.constraint_ok) fnv_mix(h, ok);
  }
  fnv_mix(h, windows_total);
  fnv_mix(h, windows_ok);
  fnv_mix(h, migrations);
  fnv_mix(h, reroutes);
  fnv_mix(h, reverts);
  fnv_mix(h, outages);
  fnv_mix(h, proof_checks);
  fnv_mix(h, proof_failures);
  for (const rt::RecoveryAction& a : actions) {
    fnv_mix(h, static_cast<std::uint64_t>(a.kind));
    fnv_mix(h, static_cast<std::uint64_t>(a.onset));
    fnv_mix(h, static_cast<std::uint64_t>(a.completed));
  }
  return h;
}

PlatformFaultRun run_deployment_with_faults(const TolerantDeployment& td,
                                            const core::FaultPlan& plan, Time horizon,
                                            const FaultRunOptions& options) {
  PlatformFaultRun run;
  if (!td.success || horizon <= 0) return run;
  const Deployment& base = td.base;
  const Platform& platform = base.platform;
  const auto& constraints = base.scheduled_model.constraints();
  const core::FaultInjector injector(plan);

  // Epoch boundaries: every platform event, plus the switch-latency
  // echo of each (the gap where the old tables run on new hardware).
  std::vector<Time> cuts{0, horizon};
  for (const Time t : injector.platform_event_times(horizon)) {
    cuts.push_back(t);
    if (options.heal && options.switch_latency > 0 &&
        t + options.switch_latency < horizon) {
      cuts.push_back(t + options.switch_latency);
    }
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  // Config cache: state key -> the (proof-checked) configuration the
  // healed policy dispatches in that state.
  std::map<std::string, ActiveConfig> cache;
  auto config_for = [&](const PlatformState& state) -> const ActiveConfig& {
    const std::string key = state.key();
    auto it = cache.find(key);
    if (it != cache.end()) return it->second;
    ActiveConfig cfg;
    cfg.state_key = key;
    cfg.failed = state.failed_procs();
    if (cfg.failed.empty()) {
      cfg.dep = &base;
    } else if (const MigrationEntry* entry = td.table.find(cfg.failed)) {
      cfg.dep = &entry->deployment;
      cfg.mode = EpochRecord::Mode::kMigrated;
    } else {
      // Uncovered failure set: no admissible configuration — the healed
      // policy degenerates to dispatching the nominal deployment on the
      // broken platform (exactly the blind baseline's position).
      cfg.dep = &base;
      cfg.outage = true;
      cfg.mode = EpochRecord::Mode::kOutage;
      cfg.detail = "no migration entry for " + scenario_name(cfg.failed, platform);
      cfg.proven_ok = structural_verdicts(base, base.comm, platform, state);
      return cache.emplace(key, std::move(cfg)).first->second;
    }
    if (state.links_disturbed()) {
      // Keeping the current tables is always an option: the reserved
      // slot runs are unchanged, so if every message still fits its
      // slots at the degraded bandwidth the nominal proof stands.
      // Rerouting regenerates the tables and can *lengthen* the TDMA
      // cycle, so it is adopted only when the kept tables actually
      // break AND the reroute re-proves every constraint — never a
      // trade of proved windows for unproved ones (the healed-vs-blind
      // dominance of E24 rests on this).
      const std::vector<std::uint8_t> keep_ok =
          structural_verdicts(*cfg.dep, cfg.dep->comm, platform, state);
      const bool keep_fine =
          std::all_of(keep_ok.begin(), keep_ok.end(),
                      [](std::uint8_t ok) { return ok != 0; });
      if (keep_fine) {
        cfg.proven_ok = keep_ok;
        cfg.detail = "nominal tables fit degraded links";
      } else {
        SeamOptions seam;
        seam.n_threads = options.seam_threads;
        RerouteResult reroute =
            reroute_messages(*cfg.dep, apply_state(platform, state), seam);
        if (reroute.success) {
          cfg.detail =
              "rerouted " + std::to_string(reroute.rerouted) + " message(s)";
          cfg.reroute = std::move(reroute);
          cfg.mode = cfg.failed.empty() ? EpochRecord::Mode::kRerouted
                                        : EpochRecord::Mode::kMigratedRerouted;
          cfg.proven_ok.assign(constraints.size(), 1);
        } else {
          // No admissible reroute: keep the current tables (exactly the
          // blind baseline's position) and surface the diagnostic.
          cfg.outage = true;
          cfg.mode = EpochRecord::Mode::kOutage;
          cfg.proven_ok = keep_ok;
          cfg.detail = "reroute rejected: " + reroute.failure_reason;
        }
      }
    } else {
      cfg.proven_ok.assign(constraints.size(), 0);
      for (std::size_t c = 0; c < constraints.size(); ++c) {
        const auto& l = cfg.dep->end_to_end[c];
        cfg.proven_ok[c] = l && *l <= constraints[c].deadline ? 1 : 0;
      }
    }
    return cache.emplace(key, std::move(cfg)).first->second;
  };

  // Re-validate every witness a configuration carries before
  // dispatching it: the "every executed migration is proof-checked"
  // guarantee. Returns false only on a busted proof (never expected).
  auto proof_check = [&](const ActiveConfig& cfg) {
    if (cfg.outage) return true;
    const CommSchedule& comm = cfg.reroute ? cfg.reroute->comm : cfg.dep->comm;
    const auto& witnesses = cfg.reroute ? cfg.reroute->witnesses : cfg.dep->witnesses;
    const auto& wc =
        cfg.reroute ? cfg.reroute->witness_constraint : cfg.dep->witness_constraint;
    bool all = true;
    for (std::size_t w = 0; w < witnesses.size(); ++w) {
      ++run.proof_checks;
      const auto bad =
          check_witness(constraints[wc[w]].task_graph, cfg.dep->processor_schedules,
                        cfg.dep->mapping.assignment, comm, witnesses[w]);
      if (bad) {
        ++run.proof_failures;
        all = false;
      }
    }
    return all;
  };

  const PlatformState nominal = PlatformState::nominal_for(platform);
  const ActiveConfig* active = &config_for(nominal);
  const ActiveConfig* pending = nullptr;
  Time pending_at = 0;
  Time pending_onset = 0;
  std::string last_state_key = nominal.key();

  for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
    const Time a = cuts[i];
    const Time b = cuts[i + 1];
    const PlatformState state = platform_state_at(injector, platform, a);

    if (options.heal) {
      if (pending && a >= pending_at) {
        // Activation: log the action and re-validate the proofs.
        rt::RecoveryAction action;
        action.onset = pending_onset;
        action.detected = pending_onset;
        action.completed = a;
        if (pending->failed != active->failed) {
          if (pending->failed.empty()) {
            action.kind = rt::RecoveryActionKind::kRevert;
            ++run.reverts;
          } else {
            action.kind = rt::RecoveryActionKind::kMigrate;
            ++run.migrations;
          }
        } else {
          action.kind = rt::RecoveryActionKind::kReroute;
          ++run.reroutes;
        }
        proof_check(*pending);
        run.actions.push_back(action);
        active = pending;
        pending = nullptr;
      }
      if (state.key() != last_state_key) {
        const ActiveConfig& desired = config_for(state);
        last_state_key = state.key();
        if (desired.state_key != active->state_key) {
          // Same placement, same tables (e.g. a degrade window the
          // nominal tables absorb, or its repair): nothing to execute,
          // so no action, no proof re-check, no switch gap.
          const bool same_tables = desired.failed == active->failed &&
                                   !desired.reroute.has_value() &&
                                   !active->reroute.has_value();
          if (same_tables) {
            active = &desired;
            pending = nullptr;
          } else if (options.switch_latency <= 0) {
            rt::RecoveryAction action;
            action.onset = a;
            action.detected = a;
            action.completed = a;
            if (desired.failed != active->failed) {
              if (desired.failed.empty()) {
                action.kind = rt::RecoveryActionKind::kRevert;
                ++run.reverts;
              } else {
                action.kind = rt::RecoveryActionKind::kMigrate;
                ++run.migrations;
              }
            } else {
              action.kind = rt::RecoveryActionKind::kReroute;
              ++run.reroutes;
            }
            proof_check(desired);
            run.actions.push_back(action);
            active = &desired;
            pending = nullptr;
          } else {
            pending = &desired;
            pending_at = a + options.switch_latency;
            pending_onset = a;
          }
        } else {
          pending = nullptr;
        }
      }
    }

    EpochRecord epoch;
    epoch.begin = a;
    epoch.end = b;
    epoch.state = state;
    if (!options.heal) {
      // Blind baseline: the nominal deployment, whatever the weather.
      epoch.mode = state.nominal() ? EpochRecord::Mode::kNominal
                                   : EpochRecord::Mode::kOutage;
      epoch.constraint_ok = structural_verdicts(base, base.comm, platform, state);
      epoch.detail = state.describe(platform);
    } else if (active->state_key == state.key()) {
      epoch.mode = active->mode;
      epoch.constraint_ok = active->proven_ok;
      epoch.detail = active->outage ? active->detail : state.describe(platform);
      if (active->outage) ++run.outages;
    } else {
      // Detection/switch gap: the previous configuration's tables on
      // the new platform state.
      epoch.mode = EpochRecord::Mode::kOutage;
      const CommSchedule& comm =
          active->reroute ? active->reroute->comm : active->dep->comm;
      epoch.constraint_ok =
          structural_verdicts(*active->dep, comm, platform, state);
      epoch.detail = "switching (" + state.describe(platform) + ")";
    }
    run.epochs.push_back(std::move(epoch));
  }

  // Score constraint windows at the maximum invocation rate: window
  // [t, t+deadline) is satisfied iff every epoch it overlaps carries an
  // ok verdict for the constraint.
  for (std::size_t c = 0; c < constraints.size(); ++c) {
    const Time period = std::max<Time>(constraints[c].period, 1);
    const Time deadline = constraints[c].deadline;
    std::size_t ei = 0;
    for (Time t = 0; t + deadline <= horizon; t += period) {
      while (ei < run.epochs.size() && run.epochs[ei].end <= t) ++ei;
      bool ok = true;
      for (std::size_t j = ei; j < run.epochs.size() && run.epochs[j].begin < t + deadline;
           ++j) {
        if (!run.epochs[j].constraint_ok[c]) {
          ok = false;
          break;
        }
      }
      ++run.windows_total;
      if (ok) ++run.windows_ok;
    }
  }
  return run;
}

// ---------------------------------------------------------------------------
// Seeded platform fault schedules

namespace {

// The unit_draw construction from core::FaultInjector, with its own
// decision tags: a pure hash of (seed, tag, resource, slot).
double platform_draw(std::uint64_t seed, std::uint64_t tag, std::uint64_t resource,
                     std::uint64_t slot) {
  std::uint64_t state = seed;
  std::uint64_t h = sim::splitmix64(state);
  state ^= (tag + 1) * 0x9e3779b97f4a7c15ULL;
  h ^= sim::splitmix64(state);
  state ^= resource * 0xbf58476d1ce4e5b9ULL;
  h ^= sim::splitmix64(state);
  state ^= slot * 0x94d049bb133111ebULL;
  h ^= sim::splitmix64(state);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

constexpr std::uint64_t kTagProcFail = 11;
constexpr std::uint64_t kTagLinkFail = 12;
constexpr std::uint64_t kTagLinkDegrade = 13;

}  // namespace

core::FaultPlan make_platform_fault_plan(std::uint64_t seed, const Platform& platform,
                                         Time horizon, double proc_rate,
                                         double link_rate, Time repair,
                                         double degrade_rate) {
  core::FaultPlan plan;
  plan.seed = seed;
  repair = std::max<Time>(repair, 1);
  auto sweep = [&](std::uint64_t tag, std::size_t resource, double rate,
                   core::FaultKind kind) {
    if (rate <= 0.0) return;
    Time t = 0;
    while (t < horizon) {
      if (platform_draw(seed, tag, resource, static_cast<std::uint64_t>(t)) < rate) {
        core::FaultSpec spec;
        spec.kind = kind;
        spec.resource = resource;
        spec.begin = t;
        if (kind == core::FaultKind::kLinkDegrade) {
          spec.end = t + repair;
          spec.magnitude = 2;
        } else {
          spec.magnitude = repair;
        }
        plan.faults.push_back(spec);
        t += repair;  // one outage at a time per resource
      } else {
        ++t;
      }
    }
  };
  for (ProcId p = 0; p < platform.processors(); ++p) {
    sweep(kTagProcFail, p, proc_rate, core::FaultKind::kProcessorFail);
  }
  for (std::size_t l = 0; l < platform.links.size(); ++l) {
    sweep(kTagLinkFail, l, link_rate, core::FaultKind::kLinkFail);
    sweep(kTagLinkDegrade, l, degrade_rate, core::FaultKind::kLinkDegrade);
  }
  return plan;
}

}  // namespace rtg::map
