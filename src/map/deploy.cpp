#include "map/deploy.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "core/pipeline.hpp"

namespace rtg::map {

std::optional<Time> Deployment::min_margin(const core::GraphModel& model) const {
  std::optional<Time> margin;
  const auto& constraints = model.constraints();
  for (std::size_t c = 0; c < constraints.size() && c < end_to_end.size(); ++c) {
    if (!end_to_end[c]) return std::nullopt;
    const Time slack = constraints[c].deadline - *end_to_end[c];
    if (!margin || slack < *margin) margin = slack;
  }
  return margin;
}

Deployment deploy(const core::GraphModel& input, const Platform& platform,
                  const DeployOptions& options) {
  Deployment out;
  out.platform = platform;
  if (platform.processors() == 0) {
    out.failure_reason = "zero processors";
    return out;
  }

  // Pipelining happens once, globally, so sub-problems share element ids.
  core::GraphModel model =
      options.local.pipeline ? core::pipeline_model(input).model : input;

  // 1. Map.
  std::unique_ptr<Mapper> owned;
  const Mapper* mapper = options.custom;
  if (!mapper) {
    owned = make_mapper(options.mapper, options.seed);
    if (!owned) {
      out.scheduled_model = std::move(model);
      out.failure_reason = "unknown mapper '" + options.mapper + "'";
      return out;
    }
    mapper = owned.get();
  }
  Mapping mapping = mapper->assign(model, platform);
  return deploy_assignment(model, platform, std::move(mapping.assignment), options,
                           std::move(mapping.mapper));
}

Deployment deploy_assignment(const core::GraphModel& model, const Platform& platform,
                             std::vector<ProcId> assignment,
                             const DeployOptions& options, std::string mapper_name) {
  Deployment out;
  out.platform = platform;
  if (platform.processors() == 0) {
    out.failure_reason = "zero processors";
    return out;
  }
  out.scheduled_model = model;
  const core::CommGraph& comm = model.comm();
  const std::size_t m = platform.processors();
  out.mapping.assignment = std::move(assignment);
  out.mapping.mapper = std::move(mapper_name);
  if (out.mapping.assignment.size() < comm.size()) {
    out.failure_reason = "assignment does not cover every element";
    return out;
  }

  // 2. Messages + slot tables.
  std::string why;
  auto messages = collect_messages(model, platform, out.mapping.assignment, &why);
  if (!messages) {
    out.failure_reason = "unroutable mapping: " + why;
    return out;
  }
  out.messages = std::move(*messages);
  out.comm = build_comm_schedule(platform, out.messages);
  const CommCheck comm_check = check_comm_schedule(platform, out.comm);
  if (!comm_check.ok) {
    out.failure_reason = "comm schedule invalid: " + comm_check.diagnostics.front();
    return out;
  }

  // 3. Shard the comm graph.
  out.shards = shard_comm(comm, out.mapping.assignment, m);

  // 4. Project constraints with the work-proportional deadline split:
  // one worst-case link cycle per crossing, the rest divided between
  // processor segments in proportion to their work.
  std::vector<std::vector<core::TimingConstraint>> local_constraints(m);
  for (const core::TimingConstraint& c : model.constraints()) {
    std::set<std::size_t> procs;
    for (ElementId e : c.task_graph.labels()) {
      procs.insert(out.mapping.assignment[e]);
    }
    Time msg_budget = 0;
    for (const graph::Edge& e : c.task_graph.skeleton().edges()) {
      const ElementId u = c.task_graph.label(e.from);
      const ElementId v = c.task_graph.label(e.to);
      if (out.mapping.assignment[u] == out.mapping.assignment[v]) continue;
      msg_budget += out.comm.worst_delay(out.comm.find_message(u, v));
    }
    const Time local_total = c.deadline - msg_budget;
    if (local_total < static_cast<Time>(procs.size())) {
      out.failure_reason = "constraint '" + c.name +
                           "': deadline too small after message budget " +
                           std::to_string(msg_budget);
      return out;
    }
    std::vector<Time> proc_work(m, 0);
    Time total_work = 0;
    for (ElementId e : c.task_graph.labels()) {
      proc_work[out.mapping.assignment[e]] += comm.weight(e);
      total_work += comm.weight(e);
    }
    // Heavier segments get more of the remaining budget, never less
    // than twice their work (so their async server can fit). The exact
    // seam check below is what ultimately decides feasibility.
    auto local_deadline_for = [&](std::size_t p) {
      const Time proportional =
          local_total * proc_work[p] / std::max<Time>(total_work, 1);
      return std::max<Time>(2 * proc_work[p], proportional);
    };

    for (std::size_t p : procs) {
      const ProcessorShard& shard = out.shards[p];
      core::TaskGraph sub;
      std::vector<core::OpId> sub_op(c.task_graph.size(), graph::kInvalidNode);
      for (core::OpId op = 0; op < c.task_graph.size(); ++op) {
        const ElementId e = c.task_graph.label(op);
        if (out.mapping.assignment[e] == p) {
          sub_op[op] = sub.add_op(shard.to_local[e]);
        }
      }
      if (sub.empty()) continue;
      for (const graph::Edge& e : c.task_graph.skeleton().edges()) {
        if (sub_op[e.from] != graph::kInvalidNode &&
            sub_op[e.to] != graph::kInvalidNode) {
          sub.add_dep(sub_op[e.from], sub_op[e.to]);
        }
      }
      core::TimingConstraint local;
      local.name = c.name + "@" + std::to_string(p);
      local.task_graph = std::move(sub);
      local.period = c.period;
      local.deadline = local_deadline_for(p);
      local.kind = core::ConstraintKind::kAsynchronous;
      local_constraints[p].push_back(std::move(local));
    }
  }

  // 5. Per-processor synthesis.
  out.shard_models.reserve(m);
  out.local_schedules.resize(m);
  out.processor_schedules.resize(m);
  for (std::size_t p = 0; p < m; ++p) {
    core::GraphModel local_model(out.shards[p].comm);
    for (core::TimingConstraint& c : local_constraints[p]) {
      local_model.add_constraint(std::move(c));
    }
    core::HeuristicOptions local_opts = options.local;
    local_opts.pipeline = false;  // already pipelined globally
    const core::HeuristicResult local = core::latency_schedule(local_model, local_opts);
    out.shard_models.push_back(std::move(local_model));
    if (!local.success) {
      out.cancelled = options.local.cancel &&
                      options.local.cancel->load(std::memory_order_relaxed);
      out.failure_reason = "processor " + std::to_string(p) + ": " +
                           local.failure_reason;
      return out;
    }
    out.local_schedules[p] = *local.schedule;
    core::StaticSchedule global_sched;
    for (const core::ScheduleEntry& entry : local.schedule->entries()) {
      if (entry.elem == core::kIdleEntry) {
        global_sched.push_idle(entry.duration);
      } else {
        global_sched.push_execution(out.shards[p].to_global[entry.elem],
                                    entry.duration);
      }
    }
    out.processor_schedules[p] = std::move(global_sched);
  }
  for (std::size_t p = 0; p < m; ++p) {
    if (out.processor_schedules[p].length() == 0) {
      out.processor_schedules[p].push_idle(1);
      out.local_schedules[p].push_idle(1);
    }
  }

  // 6a. Shard verification: the existing IncrementalVerifier per
  // processor, against the projected sub-model.
  for (std::size_t p = 0; p < m; ++p) {
    core::IncrementalVerifier verifier(out.shard_models[p]);
    ShardVerification shard;
    shard.proc = p;
    shard.report = verifier.verify(out.local_schedules[p]);
    const bool ok = shard.report.feasible;
    out.shard_reports.push_back(std::move(shard));
    if (!ok) {
      out.failure_reason =
          "processor " + std::to_string(p) + ": shard verification failed";
      return out;
    }
  }

  // 6b. Seam check: exact end-to-end latency across shards.
  bool all_ok = true;
  const auto& constraints = model.constraints();
  for (std::size_t c = 0; c < constraints.size(); ++c) {
    GlobalWitness witness;
    bool cancelled = false;
    SeamOptions seam;
    seam.n_threads = options.seam_threads;
    seam.flat_reference = options.flat_reference;
    seam.witness = &witness;
    seam.stats = &out.seam_stats;
    seam.cancel = options.local.cancel;
    seam.progress = options.local.progress;
    seam.cancelled = &cancelled;
    const auto latency =
        distributed_latency(constraints[c].task_graph, out.processor_schedules,
                            out.mapping.assignment, out.comm, seam);
    if (cancelled) {
      out.cancelled = true;
      out.failure_reason = "cancelled";
      return out;
    }
    out.end_to_end.push_back(latency);
    if (!latency || *latency > constraints[c].deadline) {
      all_ok = false;
      continue;
    }
    if (options.check_witnesses) {
      const auto bad = check_witness(constraints[c].task_graph,
                                     out.processor_schedules,
                                     out.mapping.assignment, out.comm, witness);
      if (bad) {
        out.failure_reason = "constraint '" + constraints[c].name +
                             "': seam witness invalid: " + *bad;
        return out;
      }
    }
    out.witnesses.push_back(std::move(witness));
    out.witness_constraint.push_back(c);
  }
  if (!all_ok) {
    out.failure_reason = "end-to-end verification failed";
    return out;
  }
  out.success = true;
  return out;
}

}  // namespace rtg::map
