// fault_tolerance.hpp — k-failure-tolerant deployments, proof-checked
// migration plans, and degraded-mode communication rescheduling.
//
// PR 5 made a *single* processor survive faults: precomputed, proof-
// checked FailoverTables plus a self-healing executive that measurably
// dominates a blind baseline. The mapping layer (PR 9) had no fault
// story at all — a dead processor or link silently voided every proof.
// This module closes that seam, following the same "re-verify, don't
// re-solve" design (Kermia; Dong & Liu, PAPERS.md): migration plans are
// deterministic *patches* of the nominal mapping, and every one is
// admissibility-checked through the existing machinery — messages
// re-derived, generalized-TDMA slot tables rebuilt, per-processor
// schedules re-synthesized, shard verification re-run, and the exact
// `distributed_latency` seam check re-proved with an independently
// re-validated GlobalWitness. Nothing is trusted because it "should"
// still fit; everything executed at run time carries a fresh proof.
//
// Three layers:
//
//   * PlatformState / apply_state — a snapshot of which processors and
//     links are down (and how degraded), and the degraded Platform copy
//     it induces. Link and processor *indices stay stable*: a dead link
//     keeps its slot in Platform::links but loses its routes, so every
//     table in flight keeps meaning what it meant.
//   * deploy_tolerant — produces the nominal deployment plus a standby
//     (replica) processor per element on a *disjoint* processor, and a
//     MigrationTable: one proof-checked degraded-platform deployment
//     per failure set |F| <= k. Inadmissible scenarios are absent from
//     the table and listed in `uncovered` with the verifier's
//     diagnostic — the k-tolerance claim is exactly "uncovered is
//     empty".
//   * run_deployment_with_faults — a deterministic distributed run
//     loop: platform fault windows from a core::FaultPlan partition the
//     horizon into epochs; on each state change the healed policy
//     switches to the MigrationTable entry (processor loss) and/or
//     regenerates the slot tables over surviving routes (link loss or
//     degradation), re-validating every witness it activates; the blind
//     policy keeps dispatching the nominal deployment. Constraint
//     windows are scored against the active configuration, giving the
//     healed-vs-blind differential of E24 (BENCH_platform_faults.json).
//     All verification funnels through distributed_latency, so the run
//     is bit-identical at any seam thread count.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/fault_injection.hpp"
#include "map/deploy.hpp"
#include "rt/recovery.hpp"

namespace rtg::map {

// ---------------------------------------------------------------------------
// Platform state

/// Availability and degradation of every platform resource at an
/// instant. Sizes match the platform (processors / links / links).
struct PlatformState {
  std::vector<std::uint8_t> proc_down;
  std::vector<std::uint8_t> link_down;
  /// Bandwidth divisor per link, >= 1 (1 = nominal).
  std::vector<Time> link_factor;

  [[nodiscard]] static PlatformState nominal_for(const Platform& platform);
  [[nodiscard]] bool nominal() const;
  /// Sorted indices of down processors.
  [[nodiscard]] std::vector<ProcId> failed_procs() const;
  /// True iff any link is down or degraded.
  [[nodiscard]] bool links_disturbed() const;
  /// Human-readable summary, e.g. "p1 down; link bus /2".
  [[nodiscard]] std::string describe(const Platform& platform) const;
  /// Canonical key for config caching.
  [[nodiscard]] std::string key() const;

  friend bool operator==(const PlatformState&, const PlatformState&) = default;
};

/// Platform state at absolute time t under a fault plan (pure function
/// of the plan — every consumer sees the same state).
[[nodiscard]] PlatformState platform_state_at(const core::FaultInjector& injector,
                                              const Platform& platform, Time t);

/// The degraded platform a state induces: down links lose their routes,
/// every route touching a down processor disappears, degraded links
/// divide their bandwidth (floor, min 1). Link indices are stable — a
/// dead link keeps its position with an empty route set.
[[nodiscard]] Platform apply_state(const Platform& base, const PlatformState& state);

/// Adapter for core's platform-aware fault grammar (procfail/linkfail/
/// linkdegrade name resolution).
[[nodiscard]] core::PlatformNames platform_names(const Platform& platform);

// ---------------------------------------------------------------------------
// Tolerant deployment

struct TolerantOptions {
  /// Target tolerance: the MigrationTable covers every failure set of
  /// at most k processors (k is clamped to processors - 1).
  std::size_t k = 1;
  /// Options for the nominal deployment and every migration re-proof.
  DeployOptions deploy;
  /// Hard cap on enumerated failure scenarios (sum of C(P, i), i<=k);
  /// exceeding it fails the tolerant deployment explicitly rather than
  /// silently truncating coverage.
  std::size_t max_scenarios = 512;
};

/// One precomputed migration: the proof-checked deployment to switch to
/// when exactly the processors in `failed` are down.
struct MigrationEntry {
  std::vector<ProcId> failed;  ///< sorted, non-empty
  Deployment deployment;       ///< verified on the degraded platform
};

/// The cross-processor generalization of rt::FailoverTable: entries are
/// whole degraded-platform deployments instead of alternate schedules,
/// and admissibility is the full shard + seam + witness proof instead
/// of the single-processor phase check. Inadmissible cells are absent.
struct MigrationTable {
  std::vector<MigrationEntry> entries;  ///< sorted by `failed`

  [[nodiscard]] const MigrationEntry* find(const std::vector<ProcId>& failed) const;
  [[nodiscard]] std::size_t size() const { return entries.size(); }
};

/// A scenario with no admissible migration, and why.
struct UncoveredScenario {
  std::vector<ProcId> failed;
  std::string reason;
};

struct TolerantDeployment {
  /// The nominal deployment verified.
  bool success = false;
  /// Every failure set |F| <= k has an admissible MigrationTable entry.
  bool tolerant = false;
  bool cancelled = false;
  std::size_t k = 0;
  std::string failure_reason;
  Deployment base;
  /// standby[e] = replica processor for element e, always different
  /// from the primary (the disjointness the migration patch relies on).
  std::vector<ProcId> standby;
  MigrationTable table;
  std::vector<UncoveredScenario> uncovered;
  /// Scenarios enumerated (covered + uncovered).
  std::size_t scenarios = 0;
};

/// The deterministic migration patch for failure set `failed` (sorted):
/// each element stays on its live primary, else moves to its live
/// standby, else to the next live processor scanning up from the
/// standby. Pure function of its arguments.
[[nodiscard]] std::vector<ProcId> migrate_assignment(
    const std::vector<ProcId>& primary, const std::vector<ProcId>& standby,
    const std::vector<ProcId>& failed, std::size_t processors);

/// Deploys `model` on `platform` and precomputes the MigrationTable for
/// every failure set of at most options.k processors.
[[nodiscard]] TolerantDeployment deploy_tolerant(const core::GraphModel& model,
                                                 const Platform& platform,
                                                 const TolerantOptions& options = {});

// ---------------------------------------------------------------------------
// Degraded-mode communication rescheduling

/// Outcome of rerouting a deployment's messages over a degraded
/// platform: fresh message set (surviving routes only), regenerated
/// slot tables, and the re-proved per-constraint end-to-end latencies
/// against the *unchanged* processor schedules.
struct RerouteResult {
  bool success = false;
  /// Explicit diagnostic when no feasible reroute exists: the first
  /// unroutable channel, invalid table, or busted constraint.
  std::string failure_reason;
  std::vector<Message> messages;
  CommSchedule comm;
  /// Per constraint; nullopt = infinite.
  std::vector<std::optional<Time>> end_to_end;
  std::vector<GlobalWitness> witnesses;
  std::vector<std::size_t> witness_constraint;
  /// Messages whose link changed relative to the deployment's tables.
  std::size_t rerouted = 0;
};

/// Reroutes `deployment`'s channels over `degraded` (an apply_state
/// output): placement and processor schedules stay fixed; messages are
/// re-collected, the generalized-TDMA tables rebuilt at the degraded
/// bandwidths, and every constraint re-proved through the seam check
/// with witnesses re-validated.
[[nodiscard]] RerouteResult reroute_messages(const Deployment& deployment,
                                             const Platform& degraded,
                                             const SeamOptions& seam = {});

// ---------------------------------------------------------------------------
// The distributed self-healing run loop

struct FaultRunOptions {
  /// false = the blind baseline: keep dispatching the nominal
  /// deployment whatever the platform does.
  bool heal = true;
  /// Seam-check fan-out inside the loop; the run (scores, actions,
  /// fingerprint) is bit-identical at every count.
  std::size_t seam_threads = 1;
  /// Slots from a platform event to the new configuration taking
  /// effect (detection + table swap); the old configuration is scored
  /// against the new platform state in the gap.
  Time switch_latency = 1;
};

/// One maximal interval of constant platform state and configuration.
struct EpochRecord {
  enum class Mode : std::uint8_t {
    kNominal,           ///< nominal deployment, nominal tables
    kMigrated,          ///< a MigrationTable entry is active
    kRerouted,          ///< nominal placement, regenerated tables
    kMigratedRerouted,  ///< both
    kOutage,            ///< no admissible configuration (uncovered set)
  };

  Time begin = 0;
  Time end = 0;
  PlatformState state;
  Mode mode = Mode::kNominal;
  /// Per-constraint verdict of the active configuration on this state.
  std::vector<std::uint8_t> constraint_ok;
  std::string detail;
};

struct PlatformFaultRun {
  std::vector<EpochRecord> epochs;
  /// Constraint windows scored / satisfied over the horizon.
  std::size_t windows_total = 0;
  std::size_t windows_ok = 0;
  /// Configuration switches executed (healed mode only).
  std::size_t migrations = 0;
  std::size_t reroutes = 0;
  std::size_t reverts = 0;
  /// Epochs with no admissible configuration.
  std::size_t outages = 0;
  /// Witnesses re-validated when activating configurations, and how
  /// many failed (always 0 — activation refuses a busted proof).
  std::size_t proof_checks = 0;
  std::size_t proof_failures = 0;
  /// Migrate / reroute / revert log (rt::RecoveryAction records).
  std::vector<rt::RecoveryAction> actions;

  [[nodiscard]] double success_rate() const {
    return windows_total == 0
               ? 1.0
               : static_cast<double>(windows_ok) / static_cast<double>(windows_total);
  }
  /// FNV-1a digest of epochs, verdicts, counters, and the action log —
  /// the cross-thread determinism pin.
  [[nodiscard]] std::uint64_t fingerprint() const;
};

/// Runs the deployment for `horizon` slots under the plan's platform
/// faults (element-level fault kinds are ignored here — they are the
/// uniprocessor executives' job). Requires td.success; constraint
/// windows are scored at the maximum invocation rate. Deterministic:
/// same inputs, same run, at any seam_threads.
[[nodiscard]] PlatformFaultRun run_deployment_with_faults(
    const TolerantDeployment& td, const core::FaultPlan& plan, Time horizon,
    const FaultRunOptions& options = {});

/// Seeded schedule of platform faults for chaos sweeps and E24: each
/// processor and link independently fails at the given per-slot rates
/// (repair after `repair` slots); links may also degrade (factor 2, for
/// `repair` slots) at `degrade_rate`. Every decision is a pure hash of
/// (seed, resource, slot) — no generator state, so the plan is
/// identical however it is consumed.
[[nodiscard]] core::FaultPlan make_platform_fault_plan(
    std::uint64_t seed, const Platform& platform, Time horizon, double proc_rate,
    double link_rate, Time repair, double degrade_rate = 0.0);

}  // namespace rtg::map
