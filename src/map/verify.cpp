#include "map/verify.hpp"

#include <algorithm>
#include <set>
#include <thread>

#include "core/latency.hpp"
#include "rt/task.hpp"  // lcm_checked

namespace rtg::map {

namespace {

using core::ScheduledOp;
using core::StaticSchedule;
using core::TaskGraph;
using core::UnrollIndex;

// Everything one completion query needs, shared read-only by workers.
struct SeamWorld {
  const TaskGraph* tg = nullptr;
  const std::vector<StaticSchedule>* schedules = nullptr;
  const std::vector<ProcId>* assignment = nullptr;
  const CommSchedule* comm = nullptr;
  std::vector<core::OpId> topo;

  // Indexed path: one UnrollIndex per non-empty processor schedule.
  std::vector<UnrollIndex> index;
  // Flat path: materialized unrolled ops per processor.
  std::vector<std::vector<ScheduledOp>> flat;
  bool use_flat = false;
};

// Greedy distributed completion of the task graph within the window
// starting at `t`; returns the makespan or nullopt. When `witness` is
// non-null the concrete placement is recorded.
std::optional<Time> completion(const SeamWorld& world, Time t, std::size_t* seeks,
                               GlobalWitness* witness) {
  const TaskGraph& tg = *world.tg;
  std::vector<Time> finish(tg.size(), 0);
  Time makespan = t;
  if (witness) {
    witness->window_begin = t;
    witness->ops.assign(tg.size(), WitnessOp{});
    witness->hops.clear();
  }
  for (core::OpId v : world.topo) {
    const ElementId ev = tg.label(v);
    const std::size_t pv = world.assignment->at(ev);
    Time ready = t;
    for (core::OpId u : tg.skeleton().predecessors(v)) {
      const ElementId eu = tg.label(u);
      if (world.assignment->at(eu) == pv) {
        ready = std::max(ready, finish[u]);
      } else {
        const std::size_t msg = world.comm->find_message(eu, ev);
        if (msg == CommSchedule::npos) return std::nullopt;
        // The transmission must also lie inside the window: send >= t.
        const Time msg_ready = std::max(finish[u], t);
        const Time arrive = world.comm->arrival(msg, msg_ready);
        if (witness) {
          const auto& [li, si] = world.comm->slot_of[msg];
          const Time duration = world.comm->links[li].slots[si].duration;
          witness->hops.push_back(MessageHop{msg, u, v, arrive - duration, arrive});
        }
        ready = std::max(ready, arrive);
      }
    }
    // First execution of ev on processor pv starting at or after ready.
    std::optional<ScheduledOp> placed;
    if (world.use_flat) {
      for (const ScheduledOp& op : world.flat[pv]) {
        if (op.elem == ev && op.start >= ready) {
          placed = op;
          break;
        }
      }
    } else if (world.index[pv].size() > 0) {
      if (seeks) ++*seeks;
      const std::size_t idx =
          world.index[pv].first_at_or_after(ev, ready, world.index[pv].size());
      if (idx != UnrollIndex::npos) placed = world.index[pv].op(idx);
    }
    if (!placed) return std::nullopt;
    finish[v] = placed->finish();
    makespan = std::max(makespan, finish[v]);
    if (witness) witness->ops[v] = WitnessOp{v, pv, placed->start, placed->finish()};
  }
  if (witness) witness->makespan = makespan;
  return makespan;
}

struct ChunkResult {
  bool failed = false;
  Time max_latency = 0;
  Time best_t = 0;  ///< smallest window start attaining max_latency
  bool any = false;
  SeamStats stats;
};

void run_chunk(const SeamWorld& world, const std::vector<Time>& candidates,
               std::size_t begin, std::size_t end, const SeamOptions& options,
               std::atomic<bool>& abort, ChunkResult& out) {
  for (std::size_t i = begin; i < end; ++i) {
    if (abort.load(std::memory_order_relaxed)) return;
    if (options.cancel && options.cancel->load(std::memory_order_relaxed)) {
      abort.store(true, std::memory_order_relaxed);
      return;
    }
    if (options.progress) {
      options.progress->fetch_add(1, std::memory_order_relaxed);
    }
    const Time t = candidates[i];
    const auto finish = completion(world, t, &out.stats.index_seeks, nullptr);
    ++out.stats.windows;
    if (!finish) {
      out.failed = true;
      abort.store(true, std::memory_order_relaxed);
      return;
    }
    const Time latency = *finish - t;
    if (!out.any || latency > out.max_latency) {
      out.any = true;
      out.max_latency = latency;
      out.best_t = t;
    }
  }
}

}  // namespace

std::optional<Time> distributed_latency(const TaskGraph& tg,
                                        const std::vector<StaticSchedule>& schedules,
                                        const std::vector<ProcId>& assignment,
                                        const CommSchedule& comm,
                                        const SeamOptions& options) {
  if (options.cancelled) *options.cancelled = false;
  if (tg.empty()) {
    if (options.witness) *options.witness = GlobalWitness{};
    return 0;
  }

  // Common cycle of every processor schedule and every active link.
  Time cycle = 1;
  for (const LinkSchedule& table : comm.links) {
    if (!table.slots.empty()) cycle = rt::lcm_checked(cycle, table.cycle);
  }
  for (const StaticSchedule& s : schedules) {
    if (s.length() == 0) continue;
    cycle = rt::lcm_checked(cycle, s.length());
  }
  const std::size_t horizon_cycles = 2 * tg.size() + 2;
  const Time horizon = static_cast<Time>(horizon_cycles) * cycle;

  SeamWorld world;
  world.tg = &tg;
  world.schedules = &schedules;
  world.assignment = &assignment;
  world.comm = &comm;
  world.topo = tg.topological_ops();
  world.use_flat = options.flat_reference;
  if (world.use_flat) {
    world.flat.resize(schedules.size());
  } else {
    world.index.resize(schedules.size());
  }
  for (std::size_t p = 0; p < schedules.size(); ++p) {
    if (schedules[p].length() == 0) continue;
    const std::size_t reps =
        static_cast<std::size_t>(horizon / schedules[p].length()) + 1;
    if (world.use_flat) {
      world.flat[p] = core::unroll_ops(schedules[p], reps);
    } else {
      world.index[p] = UnrollIndex(schedules[p], reps);
    }
  }

  // Candidate window starts: 0, every op boundary + 1, and every instant
  // inside a link's occupied slot region (one past each busy tick —
  // with fully-packed tables this is every tick, matching the legacy
  // TDMA enumeration exactly).
  std::set<Time> candidate_set{0};
  for (std::size_t p = 0; p < schedules.size(); ++p) {
    if (schedules[p].length() == 0) continue;
    const Time reps_in_cycle = cycle / schedules[p].length();
    for (Time r = 0; r < reps_in_cycle; ++r) {
      for (const ScheduledOp& op : schedules[p].ops()) {
        const Time s = r * schedules[p].length() + op.start + 1;
        if (s < cycle) candidate_set.insert(s);
      }
    }
  }
  for (const LinkSchedule& table : comm.links) {
    if (table.slots.empty()) continue;
    std::vector<bool> occupied(static_cast<std::size_t>(table.cycle), false);
    for (const SlotAssignment& slot : table.slots) {
      for (Time d = 0; d < slot.duration; ++d) {
        occupied[static_cast<std::size_t>(slot.offset + d)] = true;
      }
    }
    for (Time s = 1; s < cycle; ++s) {
      if (occupied[static_cast<std::size_t>((s - 1) % table.cycle)]) {
        candidate_set.insert(s);
      }
    }
  }
  const std::vector<Time> candidates(candidate_set.begin(), candidate_set.end());

  const std::size_t threads =
      std::min(std::max<std::size_t>(options.n_threads, 1), candidates.size());
  std::atomic<bool> abort{false};
  std::vector<ChunkResult> results(threads);
  if (threads <= 1) {
    run_chunk(world, candidates, 0, candidates.size(), options, abort, results[0]);
  } else {
    std::vector<std::thread> workers;
    workers.reserve(threads);
    const std::size_t per = (candidates.size() + threads - 1) / threads;
    for (std::size_t w = 0; w < threads; ++w) {
      const std::size_t begin = w * per;
      const std::size_t end = std::min(begin + per, candidates.size());
      workers.emplace_back([&, w, begin, end] {
        run_chunk(world, candidates, begin, end, options, abort, results[w]);
      });
    }
    for (std::thread& worker : workers) worker.join();
  }

  bool failed = false;
  bool any = false;
  Time latency = 0;
  Time best_t = 0;
  SeamStats stats;
  stats.threads_used = threads;
  for (const ChunkResult& r : results) {
    stats += r.stats;
    if (r.failed) failed = true;
    // Chunks cover ascending windows, so the first chunk attaining the
    // running max holds the smallest worst window — deterministic at
    // every thread count.
    if (r.any && (!any || r.max_latency > latency)) {
      any = true;
      latency = r.max_latency;
      best_t = r.best_t;
    }
  }
  if (options.stats) *options.stats += stats;
  if (options.cancel && options.cancel->load(std::memory_order_relaxed)) {
    if (options.cancelled) *options.cancelled = true;
    return std::nullopt;
  }
  if (failed || !any) return std::nullopt;
  if (options.witness) {
    std::size_t seeks = 0;
    (void)completion(world, best_t, &seeks, options.witness);
  }
  return latency;
}

std::optional<std::string> check_witness(const TaskGraph& tg,
                                         const std::vector<StaticSchedule>& schedules,
                                         const std::vector<ProcId>& assignment,
                                         const CommSchedule& comm,
                                         const GlobalWitness& witness) {
  auto fail = [](std::string why) { return std::optional<std::string>(std::move(why)); };
  if (witness.ops.size() != tg.size()) return fail("witness op count mismatch");

  Time latest = witness.window_begin;
  for (core::OpId v = 0; v < tg.size(); ++v) {
    const WitnessOp& w = witness.ops[v];
    const ElementId e = tg.label(v);
    if (w.op != v) return fail("witness ops out of op-id order");
    if (w.proc != assignment.at(e)) return fail("op on the wrong processor");
    if (w.start < witness.window_begin) return fail("op starts before the window");
    if (w.proc >= schedules.size()) return fail("unknown processor");
    const StaticSchedule& sched = schedules[w.proc];
    if (sched.length() == 0) return fail("op placed on an empty schedule");
    // The (start, finish) pair must be a genuine cyclic occurrence of
    // the element on that processor.
    const Time base = w.start % sched.length();
    bool genuine = false;
    for (const ScheduledOp& op : sched.ops()) {
      if (op.elem == e && op.start == base && w.finish - w.start == op.duration) {
        genuine = true;
        break;
      }
    }
    if (!genuine) return fail("op is not a scheduled execution of its element");
    latest = std::max(latest, w.finish);
  }
  if (witness.makespan != latest) return fail("makespan != latest finish");

  for (const graph::Edge& e : tg.skeleton().edges()) {
    const core::OpId u = e.from;
    const core::OpId v = e.to;
    const ElementId eu = tg.label(u);
    const ElementId ev = tg.label(v);
    if (assignment.at(eu) == assignment.at(ev)) {
      if (witness.ops[u].finish > witness.ops[v].start) {
        return fail("same-processor precedence violated");
      }
      continue;
    }
    const std::size_t msg = comm.find_message(eu, ev);
    if (msg == CommSchedule::npos) return fail("crossing edge has no message");
    const MessageHop* hop = nullptr;
    for (const MessageHop& h : witness.hops) {
      if (h.producer == u && h.consumer == v) {
        hop = &h;
        break;
      }
    }
    if (!hop) return fail("crossing edge has no hop in the witness");
    if (hop->message != msg) return fail("hop rides the wrong message");
    const auto& [li, si] = comm.slot_of[msg];
    const LinkSchedule& table = comm.links[li];
    const SlotAssignment& slot = table.slots[si];
    if (hop->send < 0 || hop->send % table.cycle != slot.offset) {
      return fail("hop send is not a slot-run start of its message");
    }
    if (hop->arrive != hop->send + slot.duration) {
      return fail("hop arrival != send + transfer");
    }
    if (hop->send < witness.ops[u].finish || hop->send < witness.window_begin) {
      return fail("hop sent before the producer finished (or before the window)");
    }
    if (hop->arrive > witness.ops[v].start) {
      return fail("consumer starts before the message arrives");
    }
  }
  return std::nullopt;
}

}  // namespace rtg::map
