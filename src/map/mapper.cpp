#include "map/mapper.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <stdexcept>
#include <utility>

#include "core/multiproc.hpp"
#include "graph/digraph.hpp"
#include "sim/rng.hpp"

namespace rtg::map {

namespace {

// Undirected adjacency (deduplicated) over the comm graph's channels.
std::vector<std::vector<ElementId>> undirected_adjacency(const core::CommGraph& comm) {
  const std::size_t n = comm.size();
  std::vector<std::vector<ElementId>> adj(n);
  for (ElementId e = 0; e < n; ++e) {
    std::set<ElementId> nbrs;
    for (ElementId u : comm.digraph().predecessors(e)) nbrs.insert(u);
    for (ElementId u : comm.digraph().successors(e)) nbrs.insert(u);
    nbrs.erase(e);
    adj[e].assign(nbrs.begin(), nbrs.end());
  }
  return adj;
}

// Distinct channels used by any constraint edge, (from, to) order.
std::set<std::pair<ElementId, ElementId>> constraint_channels(
    const core::GraphModel& model) {
  std::set<std::pair<ElementId, ElementId>> channels;
  for (const core::TimingConstraint& c : model.constraints()) {
    for (const graph::Edge& e : c.task_graph.skeleton().edges()) {
      const ElementId u = c.task_graph.label(e.from);
      const ElementId v = c.task_graph.label(e.to);
      if (u != v) channels.insert({u, v});
    }
  }
  return channels;
}

Time message_size(const core::GraphModel& model, const Platform& platform,
                  ElementId producer) {
  return platform.fixed_message_size > 0 ? platform.fixed_message_size
                                         : model.comm().weight(producer);
}

}  // namespace

std::vector<ProcId> GreedyMapper::legacy_partition(const core::CommGraph& comm,
                                                   std::size_t m, Policy policy) {
  // Single-sourced in core::partition_elements (the deprecation shim the
  // seed tests pin); this is delegation, not duplication.
  core::PartitionStrategy strategy = core::PartitionStrategy::kLpt;
  switch (policy) {
    case Policy::kRoundRobin: strategy = core::PartitionStrategy::kRoundRobin; break;
    case Policy::kLpt:
    case Policy::kLatencyDensity:  // falls back to LPT without a model
      strategy = core::PartitionStrategy::kLpt;
      break;
    case Policy::kCommunication:
      strategy = core::PartitionStrategy::kCommunication;
      break;
  }
  return core::partition_elements(comm, m, strategy);
}

Mapping GreedyMapper::assign(const core::GraphModel& model,
                             const Platform& platform) const {
  const core::CommGraph& comm = model.comm();
  const std::size_t m = std::max<std::size_t>(platform.processors(), 1);
  Mapping mapping;
  mapping.mapper = name();

  if (policy_ != Policy::kLatencyDensity) {
    mapping.assignment = legacy_partition(comm, m, policy_);
    return mapping;
  }

  const std::size_t n = comm.size();
  mapping.assignment.assign(n, 0);
  if (m == 1 || n == 0) return mapping;

  // Latency density: an element that appears in tight constraints and
  // carries weight is urgent — place it while processors are empty.
  std::vector<double> density(n, 0.0);
  for (const core::TimingConstraint& c : model.constraints()) {
    std::set<ElementId> labels(c.task_graph.labels().begin(),
                               c.task_graph.labels().end());
    for (ElementId e : labels) {
      density[e] += static_cast<double>(comm.weight(e)) /
                    static_cast<double>(std::max<Time>(c.deadline, 1));
    }
  }
  std::vector<ElementId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](ElementId a, ElementId b) {
    if (density[a] != density[b]) return density[a] > density[b];
    return comm.weight(a) > comm.weight(b);
  });

  std::vector<bool> placed(n, false);
  std::vector<Time> load(m, 0);
  for (ElementId e : order) {
    double best_cost = 0.0;
    std::size_t best = static_cast<std::size_t>(-1);
    for (std::size_t p = 0; p < m; ++p) {
      // Transfer cost of channels to already-placed neighbours, and a
      // hard skip when a channel would have no serving link.
      double comm_cost = 0.0;
      bool routable = true;
      auto channel_cost = [&](ElementId producer, ProcId src, ProcId dst) {
        if (src == dst) return;
        const auto link = platform.route(src, dst);
        if (!link) {
          routable = false;
          return;
        }
        comm_cost += static_cast<double>(
            platform.transfer_slots(*link, message_size(model, platform, producer)));
      };
      for (ElementId u : comm.digraph().predecessors(e)) {
        if (placed[u]) channel_cost(u, mapping.assignment[u], p);
      }
      for (ElementId u : comm.digraph().successors(e)) {
        if (placed[u]) channel_cost(e, p, mapping.assignment[u]);
      }
      if (!routable) continue;
      const double cost =
          static_cast<double>(load[p] + comm.weight(e)) + 2.0 * comm_cost;
      if (best == static_cast<std::size_t>(-1) || cost < best_cost) {
        best = p;
        best_cost = cost;
      }
    }
    if (best == static_cast<std::size_t>(-1)) {
      best = static_cast<std::size_t>(
          std::min_element(load.begin(), load.end()) - load.begin());
    }
    mapping.assignment[e] = best;
    placed[e] = true;
    load[best] += comm.weight(e);
  }
  return mapping;
}

std::string GreedyMapper::name() const {
  switch (policy_) {
    case Policy::kRoundRobin: return "greedy:roundrobin";
    case Policy::kLpt: return "greedy:lpt";
    case Policy::kCommunication: return "greedy:comm";
    case Policy::kLatencyDensity: return "greedy";
  }
  return "greedy";
}

double SimulatedAnnealingMapper::energy(const core::GraphModel& model,
                                        const Platform& platform,
                                        const std::vector<ProcId>& assignment) {
  const core::CommGraph& comm = model.comm();
  const std::size_t m = std::max<std::size_t>(platform.processors(), 1);

  // Cross-channel routing + transfer slots (distinct channels, like the
  // communication scheduler will see them).
  double miss = 0.0;
  double slots = 0.0;
  std::set<std::pair<ElementId, ElementId>> crossing;
  for (const auto& [u, v] : constraint_channels(model)) {
    if (assignment[u] == assignment[v]) continue;
    crossing.insert({u, v});
    const auto link = platform.route(assignment[u], assignment[v]);
    if (!link) {
      miss += 1.0;
      continue;
    }
    slots += static_cast<double>(
        platform.transfer_slots(*link, message_size(model, platform, u)));
  }

  // Deadline pressure: a constraint needs roughly twice its work for
  // the per-processor async servers plus its message budget; count how
  // far past the deadline that estimate runs.
  double overage = 0.0;
  for (const core::TimingConstraint& c : model.constraints()) {
    Time work = 0;
    std::set<ElementId> labels(c.task_graph.labels().begin(),
                               c.task_graph.labels().end());
    for (ElementId e : labels) work += comm.weight(e);
    Time msg_budget = 0;
    for (const graph::Edge& e : c.task_graph.skeleton().edges()) {
      const ElementId u = c.task_graph.label(e.from);
      const ElementId v = c.task_graph.label(e.to);
      if (assignment[u] == assignment[v]) continue;
      const auto link = platform.route(assignment[u], assignment[v]);
      if (!link) continue;  // already charged as a route miss
      msg_budget += platform.transfer_slots(*link, message_size(model, platform, u));
    }
    const Time estimate = 2 * work + msg_budget;
    if (estimate > c.deadline) overage += static_cast<double>(estimate - c.deadline);
  }

  std::vector<Time> load(m, 0);
  for (ElementId e = 0; e < comm.size(); ++e) load[assignment[e]] += comm.weight(e);
  const Time peak = load.empty() ? 0 : *std::max_element(load.begin(), load.end());

  return 1.0e6 * miss + 50.0 * overage + 4.0 * static_cast<double>(peak) +
         2.0 * slots;
}

Mapping SimulatedAnnealingMapper::assign(const core::GraphModel& model,
                                         const Platform& platform) const {
  const core::CommGraph& comm = model.comm();
  const std::size_t n = comm.size();
  const std::size_t m = std::max<std::size_t>(platform.processors(), 1);

  Mapping mapping = GreedyMapper().assign(model, platform);
  mapping.mapper = name();
  if (m == 1 || n == 0) return mapping;

  std::vector<ProcId> current = mapping.assignment;
  std::vector<ProcId> best = current;
  double current_e = energy(model, platform, current);
  double best_e = current_e;

  sim::Rng rng(options_.seed);
  double temperature = options_.initial_temperature;

  for (std::size_t iter = 0; iter < options_.iterations; ++iter) {
    std::vector<ProcId> candidate = current;
    const std::int64_t kind = rng.uniform(0, 2);
    if (kind == 0) {
      // Migrate one element to a different processor.
      const auto e = static_cast<ElementId>(rng.uniform(0, static_cast<std::int64_t>(n) - 1));
      auto p = static_cast<ProcId>(rng.uniform(0, static_cast<std::int64_t>(m) - 2));
      if (p >= candidate[e]) ++p;  // skip the current processor
      candidate[e] = p;
    } else if (kind == 1) {
      // Swap a pair of elements across processors.
      const auto a = static_cast<ElementId>(rng.uniform(0, static_cast<std::int64_t>(n) - 1));
      const auto b = static_cast<ElementId>(rng.uniform(0, static_cast<std::int64_t>(n) - 1));
      std::swap(candidate[a], candidate[b]);
    } else {
      // Rebalance a chain: migrate a maximal out-degree<=1 run starting
      // at a random element, keeping pipelines together.
      auto e = static_cast<ElementId>(rng.uniform(0, static_cast<std::int64_t>(n) - 1));
      const auto p = static_cast<ProcId>(rng.uniform(0, static_cast<std::int64_t>(m) - 1));
      std::size_t hops = 0;
      while (hops++ < n) {
        candidate[e] = p;
        const auto& succs = comm.digraph().successors(e);
        if (succs.size() != 1 || comm.digraph().in_degree(succs[0]) > 1) break;
        e = succs[0];
      }
    }
    const double cand_e = energy(model, platform, candidate);
    const double delta = cand_e - current_e;
    if (delta <= 0.0 || rng.uniform01() < std::exp(-delta / std::max(temperature, 1e-9))) {
      current = std::move(candidate);
      current_e = cand_e;
      if (current_e < best_e) {
        best = current;
        best_e = current_e;
      }
    }
    temperature *= options_.cooling;
  }

  mapping.assignment = std::move(best);
  return mapping;
}

std::vector<ElementId> SeriesParallelDecompositionMapper::articulation_points(
    const core::CommGraph& comm) {
  const std::size_t n = comm.size();
  const auto adj = undirected_adjacency(comm);
  std::vector<int> disc(n, -1);
  std::vector<int> low(n, 0);
  std::vector<bool> cut(n, false);
  int timer = 0;

  // Iterative DFS: each frame tracks the next neighbour to visit.
  struct Frame {
    ElementId v;
    ElementId parent;
    std::size_t next = 0;
    std::size_t children = 0;
  };
  for (ElementId root = 0; root < n; ++root) {
    if (disc[root] != -1) continue;
    std::vector<Frame> stack;
    stack.push_back({root, static_cast<ElementId>(-1)});
    disc[root] = low[root] = timer++;
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.next < adj[f.v].size()) {
        const ElementId u = adj[f.v][f.next++];
        if (u == f.parent) continue;
        if (disc[u] != -1) {
          low[f.v] = std::min(low[f.v], disc[u]);
        } else {
          disc[u] = low[u] = timer++;
          ++f.children;
          stack.push_back({u, f.v});
        }
      } else {
        const Frame done = f;
        stack.pop_back();
        if (!stack.empty()) {
          Frame& up = stack.back();
          low[up.v] = std::min(low[up.v], low[done.v]);
          if (up.parent != static_cast<ElementId>(-1) && low[done.v] >= disc[up.v]) {
            cut[up.v] = true;
          }
        }
        if (done.v == root && done.children >= 2) cut[root] = true;
      }
    }
  }

  std::vector<ElementId> points;
  for (ElementId e = 0; e < n; ++e) {
    if (cut[e]) points.push_back(e);
  }
  return points;
}

Mapping SeriesParallelDecompositionMapper::assign(const core::GraphModel& model,
                                                  const Platform& platform) const {
  const core::CommGraph& comm = model.comm();
  const std::size_t n = comm.size();
  const std::size_t m = std::max<std::size_t>(platform.processors(), 1);
  Mapping mapping;
  mapping.mapper = name();
  mapping.assignment.assign(n, 0);
  if (m == 1 || n == 0) return mapping;

  const auto adj = undirected_adjacency(comm);
  const auto cuts = articulation_points(comm);
  std::vector<bool> is_cut(n, false);
  for (ElementId e : cuts) is_cut[e] = true;

  // Fragments: connected components of the comm graph with the cut
  // vertices removed — the series-parallel pieces between seams.
  std::vector<int> fragment(n, -1);
  std::vector<Time> frag_weight;
  for (ElementId s = 0; s < n; ++s) {
    if (is_cut[s] || fragment[s] != -1) continue;
    const int id = static_cast<int>(frag_weight.size());
    frag_weight.push_back(0);
    std::vector<ElementId> queue{s};
    fragment[s] = id;
    while (!queue.empty()) {
      const ElementId v = queue.back();
      queue.pop_back();
      frag_weight[id] += comm.weight(v);
      for (ElementId u : adj[v]) {
        if (is_cut[u] || fragment[u] != -1) continue;
        fragment[u] = id;
        queue.push_back(u);
      }
    }
  }

  // LPT over fragments: heaviest fragment onto the least-loaded
  // processor, keeping each piece whole.
  std::vector<int> frag_order(frag_weight.size());
  std::iota(frag_order.begin(), frag_order.end(), 0);
  std::stable_sort(frag_order.begin(), frag_order.end(), [&](int a, int b) {
    return frag_weight[a] > frag_weight[b];
  });
  std::vector<Time> load(m, 0);
  std::vector<ProcId> frag_proc(frag_weight.size(), 0);
  for (int f : frag_order) {
    const auto target = static_cast<ProcId>(
        std::min_element(load.begin(), load.end()) - load.begin());
    frag_proc[f] = target;
    load[target] += frag_weight[f];
  }
  for (ElementId e = 0; e < n; ++e) {
    if (fragment[e] != -1) mapping.assignment[e] = frag_proc[fragment[e]];
  }

  // Attach the cut vertices where most of their neighbours live;
  // load-balance breaks ties.
  for (ElementId e : cuts) {
    std::vector<std::size_t> affinity(m, 0);
    for (ElementId u : adj[e]) {
      if (!is_cut[u] || u < e) ++affinity[mapping.assignment[u]];
    }
    ProcId best = 0;
    for (ProcId p = 1; p < m; ++p) {
      if (affinity[p] > affinity[best] ||
          (affinity[p] == affinity[best] && load[p] < load[best])) {
        best = p;
      }
    }
    mapping.assignment[e] = best;
    load[best] += comm.weight(e);
  }
  return mapping;
}

std::unique_ptr<Mapper> make_mapper(std::string_view name, std::uint64_t seed) {
  if (name == "greedy") return std::make_unique<GreedyMapper>();
  if (name == "roundrobin") {
    return std::make_unique<GreedyMapper>(GreedyMapper::Policy::kRoundRobin);
  }
  if (name == "lpt") return std::make_unique<GreedyMapper>(GreedyMapper::Policy::kLpt);
  if (name == "comm") {
    return std::make_unique<GreedyMapper>(GreedyMapper::Policy::kCommunication);
  }
  if (name == "sa") {
    AnnealOptions options;
    options.seed = seed;
    return std::make_unique<SimulatedAnnealingMapper>(options);
  }
  if (name == "spd") return std::make_unique<SeriesParallelDecompositionMapper>();
  return nullptr;
}

}  // namespace rtg::map
