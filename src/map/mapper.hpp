// mapper.hpp — the mapping portfolio: algorithms that place functional
// elements onto processors.
//
// Every mapper implements the same contract: given a model and a
// platform, produce a Mapping (assignment vector). Mappers are pure and
// deterministic — SimulatedAnnealingMapper draws all randomness from an
// explicit seed — so corpus runs and benches are reproducible from a
// one-line repro. Quality is judged downstream: deploy() runs the full
// per-processor synthesis + communication scheduling + exact end-to-end
// verification on whatever the mapper emits, and the E23 bench compares
// portfolio members on success rate / latency margin / link slots /
// load balance.
//
// Portfolio members:
//  * GreedyMapper — one pass in a chosen order. Policies kRoundRobin /
//    kLpt / kCommunication are the legacy core::PartitionStrategy
//    heuristics, moved here verbatim (the core shim delegates, so the
//    seed pins still hold). The default kLatencyDensity policy orders
//    elements by latency density (sum over constraints of weight /
//    deadline — tighter, heavier elements first) and places each on the
//    processor minimizing load + transfer cost, skipping placements
//    whose induced channels have no serving link.
//  * SimulatedAnnealingMapper — anytime, seeded-deterministic annealing
//    from the greedy start. Move set: migrate one element / swap a
//    cross-processor pair / rebalance a maximal chain. Energy mixes
//    route misses (lexically dominant), estimated deadline overage,
//    peak load, and total transfer slots.
//  * SeriesParallelDecompositionMapper — cuts the undirected comm graph
//    at articulation vertices, packs the resulting fragments LPT, then
//    attaches the cut vertices by neighbour affinity. Keeps
//    series-parallel runs intact, so pipelines shard at their seams.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/model.hpp"
#include "map/mapping.hpp"
#include "map/platform.hpp"

namespace rtg::map {

class Mapper {
 public:
  virtual ~Mapper() = default;
  /// Places every element of `model` onto a processor of `platform`.
  [[nodiscard]] virtual Mapping assign(const core::GraphModel& model,
                                       const Platform& platform) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

class GreedyMapper final : public Mapper {
 public:
  enum class Policy : std::uint8_t {
    kRoundRobin,      ///< element i -> processor i mod m (legacy)
    kLpt,             ///< longest processing time first (legacy)
    kCommunication,   ///< co-locate with predecessors (legacy)
    kLatencyDensity,  ///< density order, load+comm+route-aware placement
  };

  explicit GreedyMapper(Policy policy = Policy::kLatencyDensity) : policy_(policy) {}

  [[nodiscard]] Mapping assign(const core::GraphModel& model,
                               const Platform& platform) const override;
  [[nodiscard]] std::string name() const override;

  /// The legacy partition pass over a bare comm graph (no platform
  /// routing, no constraints) — the core::partition_elements shim and
  /// the legacy policies above both bottom out here.
  [[nodiscard]] static std::vector<ProcId> legacy_partition(
      const core::CommGraph& comm, std::size_t m, Policy policy);

 private:
  Policy policy_;
};

struct AnnealOptions {
  std::uint64_t seed = 1;
  /// Move attempts. The anytime knob: more iterations, better mappings.
  std::size_t iterations = 2000;
  double initial_temperature = 8.0;
  double cooling = 0.995;  ///< geometric per-iteration factor
};

class SimulatedAnnealingMapper final : public Mapper {
 public:
  explicit SimulatedAnnealingMapper(AnnealOptions options = {}) : options_(options) {}

  [[nodiscard]] Mapping assign(const core::GraphModel& model,
                               const Platform& platform) const override;
  [[nodiscard]] std::string name() const override { return "sa"; }

  /// The annealer's objective, exposed for tests and the bench: route
  /// misses dominate, then estimated deadline overage, peak load, and
  /// transfer slots.
  [[nodiscard]] static double energy(const core::GraphModel& model,
                                     const Platform& platform,
                                     const std::vector<ProcId>& assignment);

 private:
  AnnealOptions options_;
};

class SeriesParallelDecompositionMapper final : public Mapper {
 public:
  [[nodiscard]] Mapping assign(const core::GraphModel& model,
                               const Platform& platform) const override;
  [[nodiscard]] std::string name() const override { return "spd"; }

  /// Articulation vertices of the undirected view of `comm` (cut
  /// vertices whose removal disconnects a component).
  [[nodiscard]] static std::vector<ElementId> articulation_points(
      const core::CommGraph& comm);
};

/// Factory for the CLI / service surface: "greedy", "sa", "spd"
/// (aliases "roundrobin" / "lpt" / "comm" select the legacy greedy
/// policies). Returns nullptr for unknown names. `seed` feeds the
/// annealer and is ignored by deterministic mappers.
[[nodiscard]] std::unique_ptr<Mapper> make_mapper(std::string_view name,
                                                  std::uint64_t seed = 1);

}  // namespace rtg::map
