// verify.hpp — cross-shard (seam) verification of mapped deployments.
//
// A mapped system is verified in two layers:
//
//   1. Per processor, the existing core::IncrementalVerifier checks the
//      shard's local schedule against its projected sub-constraints —
//      the single-processor problem the paper's decomposition reduces
//      to (deploy.hpp drives this).
//   2. Across processors, `distributed_latency` (here) measures the
//      exact end-to-end latency of a task graph against the set of
//      cyclic processor schedules plus the communication slot tables:
//      the smallest k such that every window of length >= k contains a
//      distributed execution — ops on their assigned processors, every
//      cross edge riding a message slot that starts after the producer
//      finishes (and after the window opens) and arrives before the
//      consumer starts. This is the seam check: it proves the local
//      schedules *compose*, not just that each one works in isolation.
//
// The indexed fast path resolves "first execution of e at or after t"
// probes through per-processor core::UnrollIndex rows; the
// `flat_reference` path recomputes everything with independent linear
// scans over materialized unrolled ops — the repo's differential
// convention — and the two are bit-identical, as is the result at any
// thread count (per-window results are pure; the reduction is max with
// any-failure short-circuit).
//
// A successful seam check can emit a GlobalWitness — concrete
// (processor, start, finish) rows per task-graph op plus (send, arrive)
// rows per crossing — for the worst window, and check_witness()
// re-validates such a witness against the raw schedules and slot
// tables with no shared code, closing the loop.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "core/static_schedule.hpp"
#include "map/comm_schedule.hpp"

namespace rtg::map {

/// One task-graph op's placement in a distributed execution.
struct WitnessOp {
  core::OpId op = 0;
  ProcId proc = 0;
  Time start = 0;
  Time finish = 0;

  friend bool operator==(const WitnessOp&, const WitnessOp&) = default;
};

/// One crossing edge's message transmission.
struct MessageHop {
  std::size_t message = 0;  ///< index into CommSchedule::messages
  core::OpId producer = 0;  ///< task-graph op that emitted it
  core::OpId consumer = 0;
  Time send = 0;    ///< slot-run start (>= producer finish, >= window)
  Time arrive = 0;  ///< send + transfer duration

  friend bool operator==(const MessageHop&, const MessageHop&) = default;
};

/// A concrete distributed execution for one (worst) window.
struct GlobalWitness {
  Time window_begin = 0;
  Time makespan = 0;  ///< latest finish; latency = makespan - window_begin
  std::vector<WitnessOp> ops;    ///< one per task-graph op, op-id order
  std::vector<MessageHop> hops;  ///< one per crossing edge, edge order

  friend bool operator==(const GlobalWitness&, const GlobalWitness&) = default;
};

struct SeamStats {
  std::size_t windows = 0;      ///< candidate windows examined
  std::size_t index_seeks = 0;  ///< UnrollIndex probes (indexed path)
  std::size_t threads_used = 1;

  SeamStats& operator+=(const SeamStats& other) {
    windows += other.windows;
    index_seeks += other.index_seeks;
    threads_used = std::max(threads_used, other.threads_used);
    return *this;
  }
};

struct SeamOptions {
  /// Worker threads for the candidate-window fan-out. 0 or 1 = serial;
  /// results are bit-identical at every count.
  std::size_t n_threads = 1;
  /// Recompute with independent linear scans (no UnrollIndex); the
  /// monolithic reference for the differential suite.
  bool flat_reference = false;
  /// When non-null, receives the witness of the worst window (the
  /// smallest window start among those attaining the latency). Only
  /// written when the latency is finite.
  GlobalWitness* witness = nullptr;
  SeamStats* stats = nullptr;
  const std::atomic<bool>* cancel = nullptr;
  std::atomic<std::uint64_t>* progress = nullptr;
  /// Set to true when the run was abandoned through `cancel` (the
  /// nullopt result then means "unknown", not "infinite").
  bool* cancelled = nullptr;
};

/// Exact end-to-end latency of `tg` against the processor schedules and
/// the communication slot tables; nullopt = infinite (or cancelled, see
/// SeamOptions::cancelled). Exact for task graphs without repeated
/// labels (greedy completion); may over-approximate otherwise — the
/// same contract as the legacy core::multiproc_latency, which is the
/// single-link unit-slot special case of this function.
[[nodiscard]] std::optional<Time> distributed_latency(
    const core::TaskGraph& tg, const std::vector<core::StaticSchedule>& schedules,
    const std::vector<ProcId>& assignment, const CommSchedule& comm,
    const SeamOptions& options = {});

/// Independently re-validates a GlobalWitness against the raw schedules
/// and slot tables: every op is a real scheduled execution of its
/// element on its assigned processor; precedence holds (same-processor
/// edges by finish <= start, crossings through a hop whose send is a
/// genuine slot-run start of the right message at or after
/// max(producer finish, window) and whose arrival precedes the
/// consumer); makespan is the latest finish. Returns a diagnostic on
/// the first violation, nullopt when the witness is sound.
[[nodiscard]] std::optional<std::string> check_witness(
    const core::TaskGraph& tg, const std::vector<core::StaticSchedule>& schedules,
    const std::vector<ProcId>& assignment, const CommSchedule& comm,
    const GlobalWitness& witness);

}  // namespace rtg::map
