#include "map/platform.hpp"

#include <algorithm>

namespace rtg::map {

bool Link::serves(ProcId from, ProcId to) const {
  return std::binary_search(routes.begin(), routes.end(), Route{from, to});
}

bool Link::is_bus(std::size_t processors) const {
  if (processors < 2) return false;
  if (routes.size() != processors * (processors - 1)) return false;
  std::size_t k = 0;
  for (ProcId a = 0; a < processors; ++a) {
    for (ProcId b = 0; b < processors; ++b) {
      if (a == b) continue;
      if (routes[k++] != Route{a, b}) return false;
    }
  }
  return true;
}

std::optional<std::size_t> Platform::route(ProcId from, ProcId to) const {
  for (std::size_t l = 0; l < links.size(); ++l) {
    if (links[l].serves(from, to)) return l;
  }
  return std::nullopt;
}

Time Platform::transfer_slots(std::size_t l, Time size) const {
  const Time bw = std::max<Time>(links[l].bandwidth, 1);
  const Time slots = (std::max<Time>(size, 1) + bw - 1) / bw;
  return std::max<Time>(slots, 1);
}

namespace {

// GCC 12's -Wrestrict misfires on `"lit" + std::to_string(n)` at -O3;
// building the label with += sidesteps it.
std::string label(const char* prefix, unsigned long long n) {
  std::string s(prefix);
  s += std::to_string(n);
  return s;
}

std::vector<std::string> default_names(std::size_t processors) {
  std::vector<std::string> names;
  names.reserve(processors);
  for (std::size_t p = 0; p < processors; ++p) {
    names.push_back(label("p", p));
  }
  return names;
}

}  // namespace

Platform Platform::bus(std::size_t processors, Time bandwidth) {
  Platform plat;
  plat.processor_names = default_names(processors);
  Link link;
  link.name = "bus";
  link.bandwidth = bandwidth;
  for (ProcId a = 0; a < processors; ++a) {
    for (ProcId b = 0; b < processors; ++b) {
      if (a != b) link.routes.emplace_back(a, b);
    }
  }
  if (processors >= 2) plat.links.push_back(std::move(link));
  return plat;
}

Platform Platform::full(std::size_t processors, Time bandwidth) {
  Platform plat;
  plat.processor_names = default_names(processors);
  for (ProcId a = 0; a < processors; ++a) {
    for (ProcId b = 0; b < processors; ++b) {
      if (a == b) continue;
      Link link;
      link.name = label("w", a) + "_" + std::to_string(b);
      link.bandwidth = bandwidth;
      link.routes.emplace_back(a, b);
      plat.links.push_back(std::move(link));
    }
  }
  return plat;
}

Platform Platform::partial_mesh(std::size_t processors, Time bandwidth) {
  Platform plat = Platform::ring(processors, 2 * bandwidth);
  for (std::size_t l = 0; l < plat.links.size(); ++l) {
    plat.links[l].name = label("m", l);
  }
  if (processors >= 2) {
    Link bus;
    bus.name = "bb";
    bus.bandwidth = bandwidth;
    for (ProcId a = 0; a < processors; ++a) {
      for (ProcId b = 0; b < processors; ++b) {
        if (a != b) bus.routes.emplace_back(a, b);
      }
    }
    plat.links.push_back(std::move(bus));
  }
  return plat;
}

Platform Platform::ring(std::size_t processors, Time bandwidth) {
  Platform plat;
  plat.processor_names = default_names(processors);
  if (processors < 2) return plat;
  for (ProcId a = 0; a < processors; ++a) {
    const ProcId b = (a + 1) % processors;
    if (processors == 2 && a == 1) break;  // both directions already in r0
    Link link;
    link.name = label("r", a);
    link.bandwidth = bandwidth;
    link.routes.emplace_back(a, b);
    link.routes.emplace_back(b, a);
    std::sort(link.routes.begin(), link.routes.end());
    plat.links.push_back(std::move(link));
  }
  return plat;
}

}  // namespace rtg::map
