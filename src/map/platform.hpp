// platform.hpp — execution platform descriptions for mapped deployment.
//
// A Platform is the target of the paper's multiprocessor decomposition:
// P named processors plus a set of communication links. Each link owns
// a cyclic slot table (built by comm_schedule) and serves a set of
// directed processor pairs ("routes"). A classic shared TDMA bus is one
// link whose routes are all ordered pairs — shared capacity then falls
// out of the per-link slot table, with no special-casing. Point-to-point
// meshes and rings are just different route sets.
//
// Transfer costs follow the ComputationBasedSystem idiom (SNIPPETS.md
// §1): a message's transmission time is its size divided by the link
// bandwidth, rounded up to whole slots. Message size defaults to the
// producing element's weight (heavier computations emit bigger
// payloads); `fixed_message_size` pins it (the legacy TDMA shim uses 1
// so every message takes exactly one slot, reproducing core/multiproc).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/model.hpp"

namespace rtg::map {

using core::ElementId;
using core::Time;

/// Index of a processor within a Platform.
using ProcId = std::size_t;

/// A directed processor pair served by a link.
using Route = std::pair<ProcId, ProcId>;

/// A communication link: a broadcast bus, a point-to-point wire, or
/// anything between, depending on its route set.
struct Link {
  std::string name;
  /// Payload units moved per slot; transfer takes ceil(size/bandwidth)
  /// slots. Must be >= 1.
  Time bandwidth = 1;
  /// Directed processor pairs this link can carry, sorted ascending.
  std::vector<Route> routes;

  [[nodiscard]] bool serves(ProcId from, ProcId to) const;
  /// True iff routes == every ordered pair over `processors` (a bus).
  [[nodiscard]] bool is_bus(std::size_t processors) const;

  friend bool operator==(const Link&, const Link&) = default;
};

/// P processors + links. Processor names default to "p0", "p1", ...
struct Platform {
  std::vector<std::string> processor_names;
  std::vector<Link> links;
  /// When > 0, every message has this size regardless of its producer's
  /// weight. The legacy core/multiproc shim sets 1 (unit TDMA slots).
  Time fixed_message_size = 0;

  [[nodiscard]] std::size_t processors() const { return processor_names.size(); }

  /// First link (declaration order) serving from->to, or nullopt.
  [[nodiscard]] std::optional<std::size_t> route(ProcId from, ProcId to) const;

  /// Slots needed to move `size` payload units over link `l`.
  [[nodiscard]] Time transfer_slots(std::size_t l, Time size) const;

  /// Shared-bus platform: P processors, one link serving all pairs.
  [[nodiscard]] static Platform bus(std::size_t processors, Time bandwidth = 1);
  /// Full point-to-point mesh: one link per ordered pair.
  [[nodiscard]] static Platform full(std::size_t processors, Time bandwidth = 1);
  /// Bidirectional ring: link i serves i <-> (i+1) mod P; non-adjacent
  /// processors have no route.
  [[nodiscard]] static Platform ring(std::size_t processors, Time bandwidth = 1);
  /// Partial mesh: adjacent point-to-point wires ("m0".."m{P-1}", double
  /// bandwidth) plus a shared fallback bus ("bb") at `bandwidth` serving
  /// every pair. Adjacent traffic prefers its wire (declaration order);
  /// every route survives any single wire loss via the bus — the
  /// redundancy fault_tolerance's reroute path exercises.
  [[nodiscard]] static Platform partial_mesh(std::size_t processors,
                                             Time bandwidth = 1);

  friend bool operator==(const Platform&, const Platform&) = default;
};

}  // namespace rtg::map
