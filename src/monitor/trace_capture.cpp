#include "monitor/trace_capture.hpp"

#include <array>

namespace rtg::monitor {

namespace {

/// Record carrying only a drop count (flushed by close()); never a real
/// element id in practice, and the monitor would reject it if it were.
constexpr sim::Slot kDropsOnly = static_cast<sim::Slot>(-2);

}  // namespace

TraceCapture::TraceCapture(sim::TraceSink& downstream, std::size_t ring_capacity)
    : downstream_(&downstream),
      ring_(ring_capacity),
      drain_([this] { drain_loop(); }) {}

TraceCapture::~TraceCapture() { close(); }

void TraceCapture::on_slot(sim::Slot s) {
  ++produced_;
  produced_published_.store(produced_, std::memory_order_relaxed);
  const Record r{pending_drops_, s};
  if (ring_.try_push(r)) {
    pending_drops_ = 0;
  } else {
    ++pending_drops_;
  }
}

void TraceCapture::close() {
  if (!open_.load(std::memory_order_relaxed)) {
    if (drain_.joinable()) drain_.join();
    return;
  }
  if (pending_drops_ > 0) {
    const Record r{pending_drops_, kDropsOnly};
    // The ring drains continuously, so this terminates; close() is the
    // one place the producer may wait.
    while (!ring_.try_push(r)) std::this_thread::yield();
    pending_drops_ = 0;
  }
  open_.store(false, std::memory_order_release);
  if (drain_.joinable()) drain_.join();
}

CaptureStats TraceCapture::stats() const {
  CaptureStats s;
  s.produced = produced_published_.load(std::memory_order_relaxed);
  s.consumed = consumed_.load(std::memory_order_relaxed);
  s.dropped = dropped_.load(std::memory_order_relaxed);
  return s;
}

void TraceCapture::deliver(const Record& r) {
  if (r.dropped_before > 0 && drop_listener_) {
    drop_listener_(r.dropped_before);
  }
  for (std::uint32_t i = 0; i < r.dropped_before; ++i) {
    downstream_->on_slot(sim::kIdle);
  }
  dropped_.fetch_add(r.dropped_before, std::memory_order_relaxed);
  if (r.slot != kDropsOnly) {
    downstream_->on_slot(r.slot);
    consumed_.fetch_add(1, std::memory_order_relaxed);
  }
}

void TraceCapture::drain_loop() {
  std::array<Record, 256> batch;
  for (;;) {
    const std::size_t n = ring_.pop_batch(batch);
    if (n == 0) {
      // Producer closed and everything it pushed before the release
      // store is visible (acquire) and drained: done.
      if (!open_.load(std::memory_order_acquire) && ring_.empty()) return;
      std::this_thread::yield();
      continue;
    }
    for (std::size_t i = 0; i < n; ++i) deliver(batch[i]);
  }
}

}  // namespace rtg::monitor
