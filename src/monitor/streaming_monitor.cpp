#include "monitor/streaming_monitor.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace rtg::monitor {

namespace {

constexpr std::size_t kNoEvent = static_cast<std::size_t>(-1);

// Evaluable windows of a constraint over `horizon` slots: starts t = 0,
// stride, 2*stride, ... with t + d <= horizon. Shared by the monitor's
// report and the offline reference so the counts agree by construction.
std::size_t evaluable_windows(Time horizon, Time deadline, Time stride) {
  if (horizon < deadline) return 0;
  return static_cast<std::size_t>((horizon - deadline) / stride) + 1;
}

}  // namespace

std::vector<Time> MonitorReport::violated_starts(std::size_t constraint) const {
  std::vector<Time> starts;
  for (const ViolationEvent& e : violations) {
    if (e.constraint != constraint) continue;
    for (Time t = e.first_begin; t <= e.last_begin; t += e.stride) {
      starts.push_back(t);
    }
  }
  std::sort(starts.begin(), starts.end());
  return starts;
}

StreamingMonitor::StreamingMonitor(const core::GraphModel& model,
                                   const MonitorOptions& options)
    : model_(&model), options_(options) {
  if (options_.slack_buckets == 0) {
    throw std::invalid_argument("StreamingMonitor: slack_buckets must be >= 1");
  }
  element_busy_.assign(model.comm().size(), 0);
  cs_.resize(model.constraint_count());
  for (std::size_t i = 0; i < model.constraint_count(); ++i) {
    const core::TimingConstraint& c = model.constraint(i);
    if (c.deadline < 1 || c.period < 1) {
      throw std::invalid_argument("StreamingMonitor: constraint '" + c.name +
                                  "' needs p >= 1 and d >= 1");
    }
    ConstraintState& s = cs_[i];
    s.deadline = c.deadline;
    s.stride = c.periodic() ? c.period : 1;
    s.trivial = c.task_graph.empty();
    s.relevant.assign(model.comm().size(), false);
    s.needed.assign(model.comm().size(), 0);
    s.live_count.assign(model.comm().size(), 0);
    for (core::ElementId e : c.task_graph.labels()) {
      s.relevant[e] = true;
      if (s.needed[e]++ == 0) ++s.deficit;
    }
    s.slack_hist.assign(options_.slack_buckets, 0);
  }
}

void StreamingMonitor::on_slot(sim::Slot s) {
  if (s != sim::kIdle && !model_->comm().has_element(s)) {
    throw std::invalid_argument("StreamingMonitor: unknown element id " +
                                std::to_string(s));
  }
  // Run decoding, identical to ops_from_trace: a maximal run of element
  // e yields one execution per weight(e) consecutive slots from the run
  // start; a trailing partial chunk is dropped.
  if (s == run_elem_) {
    ++run_len_;
  } else {
    run_elem_ = s;
    run_len_ = (s == sim::kIdle) ? 0 : 1;
  }
  ++now_;
  if (s == sim::kIdle) {
    ++idle_slots_;
  } else {
    ++element_busy_[s];
  }
  if (run_elem_ != sim::kIdle) {
    const Time w = model_->comm().weight(run_elem_);
    if (run_len_ == w) {
      feed_execution(core::ScheduledOp{run_elem_, now_ - w, w});
      run_len_ = 0;
    }
  }
  // Close windows whose deadline has passed without a witness. Safe
  // without re-querying: after every execution event the cascade ends
  // on a failed query or a label deficit (either way no embedding
  // exists from next_check), and windows with a later start only see
  // a subset of the eligible executions.
  for (std::size_t ci = 0; ci < cs_.size(); ++ci) close_expired(ci);
}

void StreamingMonitor::feed_execution(const core::ScheduledOp& op) {
  for (std::size_t ci = 0; ci < cs_.size(); ++ci) {
    ConstraintState& s = cs_[ci];
    if (s.trivial || !s.relevant[op.elem]) continue;
    // An execution starting before the earliest unresolved window can
    // never participate in a future witness.
    if (op.start < s.next_check) continue;
    s.buf.push_back(op);
    s.peak_buf = std::max(s.peak_buf, s.buf.size() - s.head);
    if (++s.live_count[op.elem] == s.needed[op.elem]) --s.deficit;
    query_cascade(ci);
  }
}

void StreamingMonitor::query_cascade(std::size_t ci) {
  ConstraintState& s = cs_[ci];
  const core::TaskGraph& tg = model_->constraint(ci).task_graph;
  for (;;) {
    // The live multiset lacks some label of C: every query would fail.
    if (s.deficit > 0) break;
    ++s.queries;
    const auto witness = core::find_earliest_embedding(tg, live(s), s.next_check);
    if (!witness) break;
    const std::span<const core::ScheduledOp> ops = live(s);
    Time witness_start = witness->finish;
    for (std::size_t idx : witness->assignment) {
      witness_start = std::min(witness_start, ops[idx].start);
    }
    resolve(ci, witness->finish, witness_start);
    prune(ci);
  }
}

// A witness with finish f whose earliest execution starts at s* proves
// F(t) = f for every window start t in [next_check, s*]: the witness is
// an embedding for all of them (monotone lower bound from t =
// next_check, upper bound by exhibition), and f is final because every
// later execution finishes strictly later. Each such window is settled
// now: satisfied iff f <= t + d.
void StreamingMonitor::resolve(std::size_t ci, Time finish, Time witness_start) {
  ConstraintState& s = cs_[ci];
  Time t = s.next_check;
  while (t <= witness_start && t + s.deadline < finish) {
    emit_violation(ci, t);
    t += s.stride;
  }
  while (t <= witness_start) {
    record_satisfied(ci, t, finish);
    t += s.stride;
  }
  s.next_check = t;
}

void StreamingMonitor::close_expired(std::size_t ci) {
  ConstraintState& s = cs_[ci];
  if (s.trivial) return;
  bool advanced = false;
  while (s.next_check + s.deadline <= now_) {
    emit_violation(ci, s.next_check);
    s.next_check += s.stride;
    advanced = true;
  }
  if (advanced) prune(ci);
}

bool StreamingMonitor::capture_degraded() const {
  if (dropped_slots_ < options_.drop_degrade_min) return false;
  // Ratio denominator: slots that should have reached us so far —
  // delivered slots plus the announced-but-not-yet-substituted drops.
  const double seen = static_cast<double>(now_) + static_cast<double>(dropped_slots_);
  return static_cast<double>(dropped_slots_) >= options_.drop_degrade_ratio * seen;
}

void StreamingMonitor::note_dropped(std::uint64_t n) {
  if (n == 0) return;
  // The ratio may have recovered while slots streamed in since the last
  // announcement; re-sample so a later sustained overflow is a fresh
  // rising edge rather than a continuation of the old one.
  was_degraded_ = capture_degraded();
  dropped_slots_ += n;
  const bool degraded = capture_degraded();
  if (degraded && !was_degraded_) {
    capture_events_.push_back(CaptureHealthEvent{now_, dropped_slots_});
  }
  was_degraded_ = degraded;
}

void StreamingMonitor::emit_violation(std::size_t ci, Time begin) {
  ConstraintState& s = cs_[ci];
  ++s.violated;
  if (violation_listener_) violation_listener_(ci, begin, s.deadline);
  if (s.last_event != kNoEvent) {
    ViolationEvent& open = events_[s.last_event];
    if (open.last_begin + open.stride == begin) {
      open.last_begin = begin;
      return;
    }
  }
  ViolationEvent event;
  event.constraint = ci;
  event.first_begin = begin;
  event.last_begin = begin;
  event.deadline = s.deadline;
  event.stride = s.stride;
  event.matched_ops = diagnose(ci, begin);
  event.total_ops = model_->constraint(ci).task_graph.size();
  s.last_event = events_.size();
  events_.push_back(event);
}

void StreamingMonitor::record_satisfied(std::size_t ci, Time begin, Time finish) {
  ConstraintState& s = cs_[ci];
  const Time slack = begin + s.deadline - finish;
  if (!s.min_slack || slack < *s.min_slack) s.min_slack = slack;
  const auto bucket = std::min(static_cast<std::size_t>(slack),
                               options_.slack_buckets - 1);
  ++s.slack_hist[bucket];
}

void StreamingMonitor::prune(std::size_t ci) {
  ConstraintState& s = cs_[ci];
  while (s.head < s.buf.size() && s.buf[s.head].start < s.next_check) {
    const core::ElementId gone = s.buf[s.head].elem;
    if (s.live_count[gone]-- == s.needed[gone]) ++s.deficit;
    ++s.head;
  }
  if (s.head > 64 && s.head * 2 > s.buf.size()) {
    s.buf.erase(s.buf.begin(), s.buf.begin() + static_cast<std::ptrdiff_t>(s.head));
    s.head = 0;
  }
}

// Best-effort furthest-partial-embedding diagnosis for a violated
// window [begin, begin + d): greedy injective placement in topological
// order, skipping ops whose predecessors could not be placed. Exact for
// chains; a lower bound in general (the violation itself is exact).
std::size_t StreamingMonitor::diagnose(std::size_t ci, Time begin) const {
  const ConstraintState& s = cs_[ci];
  const core::TaskGraph& tg = model_->constraint(ci).task_graph;
  const Time end = begin + s.deadline;
  const std::span<const core::ScheduledOp> ops = live(s);
  std::vector<bool> placed(tg.size(), false);
  std::vector<bool> used(ops.size(), false);
  std::vector<Time> finish(tg.size(), 0);
  std::size_t count = 0;
  for (core::OpId v : tg.topological_ops()) {
    Time ready = begin;
    bool feasible = true;
    for (core::OpId u : tg.skeleton().predecessors(v)) {
      if (!placed[u]) {
        feasible = false;
        break;
      }
      ready = std::max(ready, finish[u]);
    }
    if (!feasible) continue;
    const core::ElementId want = tg.label(v);
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (used[i] || ops[i].elem != want) continue;
      if (ops[i].start < ready) continue;
      if (ops[i].finish() > end) break;  // start-sorted: no later fit either
      used[i] = true;
      placed[v] = true;
      finish[v] = ops[i].finish();
      ++count;
      break;
    }
  }
  return count;
}

MonitorReport StreamingMonitor::report() const {
  MonitorReport report;
  report.horizon = now_;
  report.violations = events_;
  std::stable_sort(report.violations.begin(), report.violations.end(),
                   [](const ViolationEvent& a, const ViolationEvent& b) {
                     if (a.first_begin != b.first_begin) {
                       return a.first_begin < b.first_begin;
                     }
                     return a.constraint < b.constraint;
                   });
  report.health.resize(cs_.size());
  for (std::size_t i = 0; i < cs_.size(); ++i) {
    const ConstraintState& s = cs_[i];
    ConstraintHealth& h = report.health[i];
    h.windows_checked = evaluable_windows(now_, s.deadline, s.stride);
    h.windows_violated = s.violated;
    h.slack_histogram = s.slack_hist;
    h.min_slack = s.min_slack;
    h.peak_buffered_ops = s.peak_buf;
    h.embedding_queries = s.queries;
  }
  report.idle_slots = idle_slots_;
  report.element_busy = element_busy_;
  report.dropped_slots = dropped_slots_;
  report.capture_degraded = capture_degraded();
  report.capture_events = capture_events_;
  return report;
}

bool ReferenceVerdict::ok() const {
  for (const std::vector<Time>& v : violated) {
    if (!v.empty()) return false;
  }
  return true;
}

ReferenceVerdict reference_check(const sim::ExecutionTrace& trace,
                                 const core::GraphModel& model) {
  const std::vector<core::ScheduledOp> ops = core::ops_from_trace(trace, model.comm());
  ReferenceVerdict verdict;
  verdict.horizon = static_cast<Time>(trace.size());
  verdict.violated.resize(model.constraint_count());
  verdict.checked.resize(model.constraint_count());
  for (std::size_t i = 0; i < model.constraint_count(); ++i) {
    const core::TimingConstraint& c = model.constraint(i);
    if (c.deadline < 1 || c.period < 1) {
      throw std::invalid_argument("reference_check: constraint '" + c.name +
                                  "' needs p >= 1 and d >= 1");
    }
    const Time stride = c.periodic() ? c.period : 1;
    for (Time t = 0; t + c.deadline <= verdict.horizon; t += stride) {
      ++verdict.checked[i];
      if (!core::window_contains_execution(c.task_graph, ops, t, t + c.deadline)) {
        verdict.violated[i].push_back(t);
      }
    }
  }
  return verdict;
}

bool verdicts_match(const MonitorReport& report, const ReferenceVerdict& reference) {
  if (report.horizon != reference.horizon) return false;
  if (report.health.size() != reference.violated.size()) return false;
  for (std::size_t i = 0; i < reference.violated.size(); ++i) {
    if (report.health[i].windows_checked != reference.checked[i]) return false;
    if (report.violated_starts(i) != reference.violated[i]) return false;
  }
  return true;
}

}  // namespace rtg::monitor
