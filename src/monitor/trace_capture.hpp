// trace_capture.hpp — lock-free trace capture between an executive and
// a monitor.
//
// An executive must never block on observation: TraceCapture is a
// TraceSink whose on_slot is a wait-free push into an SPSC ring. A
// drain thread pops slots in batches and forwards them, in order, to a
// downstream sink (typically a StreamingMonitor, an RttWriter, or a
// FanOutSink over both). When the ring is full the slot is *dropped
// and counted*, never blocked on: each subsequent record carries the
// number of drops preceding it, and the drain substitutes one idle
// slot per drop so downstream indices stay aligned with real time.
// Substituting idle is conservative for constraint checking — it can
// produce spurious violations for windows overlapping the gap, but it
// can never mask a real violation (removing executions only shrinks
// the set of embeddings).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>

#include "sim/trace.hpp"
#include "util/spsc_ring.hpp"

namespace rtg::monitor {

/// Counters of one capture session. produced == consumed + dropped
/// holds after close().
struct CaptureStats {
  std::uint64_t produced = 0;  ///< slots offered by the executive
  std::uint64_t consumed = 0;  ///< slots delivered downstream as-is
  std::uint64_t dropped = 0;   ///< slots lost to overflow (delivered as idle)
};

class TraceCapture final : public sim::TraceSink {
 public:
  /// `downstream` must outlive the capture. The drain thread starts
  /// immediately.
  explicit TraceCapture(sim::TraceSink& downstream, std::size_t ring_capacity = 1024);

  /// Joins the drain thread (close() if still open). Pending slots are
  /// flushed first.
  ~TraceCapture() override;

  TraceCapture(const TraceCapture&) = delete;
  TraceCapture& operator=(const TraceCapture&) = delete;

  /// Producer side; wait-free. Call from exactly one thread.
  void on_slot(sim::Slot s) override;

  /// Stops accepting slots, flushes everything buffered (including a
  /// trailing drop count), and joins the drain thread. Idempotent.
  /// After close() the downstream sink has received exactly produced
  /// slots, of which `dropped` were idle substitutes.
  void close();

  [[nodiscard]] CaptureStats stats() const;

  /// Called on the drain thread with each batch of dropped slots, just
  /// *before* their idle substitutes are forwarded downstream — wire it
  /// to StreamingMonitor::note_dropped so sustained ring overflow
  /// surfaces as degraded capture health instead of silent idle. Set
  /// before the producer starts; runs on the same thread as the
  /// downstream sink, so it may touch the monitor safely.
  void set_drop_listener(std::function<void(std::uint64_t)> listener) {
    drop_listener_ = std::move(listener);
  }

 private:
  struct Record {
    std::uint32_t dropped_before = 0;  ///< drops since the previous record
    sim::Slot slot = sim::kIdle;
  };

  void drain_loop();
  void deliver(const Record& r);

  sim::TraceSink* downstream_;
  std::function<void(std::uint64_t)> drop_listener_;
  util::SpscRing<Record> ring_;
  std::atomic<bool> open_{true};
  // Producer-owned.
  std::uint32_t pending_drops_ = 0;
  std::uint64_t produced_ = 0;
  // Consumer-owned (drain thread), published for stats().
  std::atomic<std::uint64_t> consumed_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> produced_published_{0};
  std::thread drain_;
};

}  // namespace rtg::monitor
