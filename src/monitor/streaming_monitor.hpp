// streaming_monitor.hpp — online constraint checking over a live trace.
//
// The offline verifiers decide feasibility of a *static schedule* before
// it runs; this module closes the observability gap at run time. A
// StreamingMonitor consumes the execution trace F : ℕ → V ∪ {φ} one
// slot at a time and decides, for every timing constraint (C, p, d),
// exactly the windows the paper's semantics demand:
//
//   * asynchronous: every window [t, t+d) with t+d <= horizon must
//     contain a complete execution (embedding) of C;
//   * periodic: the windows starting at t = 0, p, 2p, ... only.
//
// The checker is exact and incremental. Per constraint it keeps the
// earliest still-open window start and a short buffer of decoded
// executions of C's elements; the key invariant is that the earliest
// finish F(t) of an embedding with starts >= t is non-decreasing in t
// and *final* as soon as it is witnessed (later executions finish
// later, so they can never improve it). One successful embedding query
// therefore resolves every window start up to the witness's earliest
// execution, and a failed query stays failed until a relevant element
// completes — so the number of embedding queries over a trace is
// bounded by the number of relevant executions, not by the number of
// slots or windows, and per-slot cost is amortized near-constant.
// State is pruned as windows close: peak memory is O(Σ_c d_c) decoded
// executions (see ConstraintHealth::peak_buffered_ops).
//
// Verdicts are bit-identical to offline verification of the same
// finite trace (reference_check below; pinned by the differential
// suite in tests/monitor/), which makes every captured trace a free
// differential oracle against verify_schedule.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/latency.hpp"
#include "core/model.hpp"
#include "sim/trace.hpp"

namespace rtg::monitor {

using core::Time;

/// One maximal run of violated windows of one constraint. For an
/// asynchronous constraint the violated window starts are first_begin,
/// first_begin + 1, ..., last_begin; for a periodic constraint they
/// step by the period. Coalescing keeps a long outage one event
/// instead of thousands.
struct ViolationEvent {
  std::size_t constraint = 0;
  Time first_begin = 0;  ///< first violated window start
  Time last_begin = 0;   ///< last violated window start (inclusive)
  Time deadline = 0;     ///< the constraint's d: windows are [t, t+d)
  Time stride = 1;       ///< spacing of window starts within the event
  /// Diagnosis at first_begin: how many of C's operations a best-effort
  /// greedy pass could still place inside the window (the furthest
  /// partial embedding), out of total_ops.
  std::size_t matched_ops = 0;
  std::size_t total_ops = 0;

  /// Number of violated windows the event covers.
  [[nodiscard]] std::size_t windows() const {
    return static_cast<std::size_t>((last_begin - first_begin) / stride) + 1;
  }

  friend bool operator==(const ViolationEvent&, const ViolationEvent&) = default;
};

/// Rolling per-constraint health.
struct ConstraintHealth {
  /// Windows whose deadline fell inside the observed horizon (the
  /// evaluable windows; identical to the offline count).
  std::size_t windows_checked = 0;
  std::size_t windows_violated = 0;
  /// Histogram of slack = (t + d) - finish over satisfied windows,
  /// clamped into the last bucket. Early-resolved windows whose
  /// deadline lies past the horizon are included (their satisfaction
  /// is already final), so the bucket sum may exceed windows_checked.
  std::vector<std::size_t> slack_histogram;
  std::optional<Time> min_slack;
  /// Peak decoded executions buffered for this constraint (the memory
  /// bound: never exceeds the executions of one deadline-length span).
  std::size_t peak_buffered_ops = 0;
  /// Embedding queries issued (amortized O(relevant executions)).
  std::size_t embedding_queries = 0;

  friend bool operator==(const ConstraintHealth&, const ConstraintHealth&) = default;
};

/// Degraded capture health: the capture ring ahead of this monitor has
/// been overflowing (note_dropped) persistently enough that verdicts
/// over the substituted-idle gaps are no longer trustworthy as ground
/// truth (still conservative: substitution can only add violations).
struct CaptureHealthEvent {
  Time at = 0;              ///< monitor time when degradation was declared
  std::uint64_t dropped = 0;  ///< cumulative dropped slots at that point

  friend bool operator==(const CaptureHealthEvent&, const CaptureHealthEvent&) = default;
};

/// Snapshot of the monitor's verdicts and health after `horizon` slots.
struct MonitorReport {
  Time horizon = 0;
  /// All violation events, sorted by (first_begin, constraint).
  std::vector<ViolationEvent> violations;
  std::vector<ConstraintHealth> health;
  /// Idle slots seen so far (idle ratio = idle_slots / horizon).
  std::size_t idle_slots = 0;
  /// Busy slots per element id (per-element utilization).
  std::vector<std::size_t> element_busy;
  /// Capture-ring drops announced via note_dropped, and whether they
  /// currently exceed the degradation thresholds (one event per rising
  /// edge).
  std::uint64_t dropped_slots = 0;
  bool capture_degraded = false;
  std::vector<CaptureHealthEvent> capture_events;

  [[nodiscard]] bool ok() const { return violations.empty(); }
  [[nodiscard]] double idle_ratio() const {
    return horizon == 0 ? 0.0
                        : static_cast<double>(idle_slots) / static_cast<double>(horizon);
  }
  /// Expands this constraint's events into individual violated window
  /// starts, ascending (for differential comparisons).
  [[nodiscard]] std::vector<Time> violated_starts(std::size_t constraint) const;
};

struct MonitorOptions {
  /// Buckets of the per-constraint slack histogram (slack >= buckets-1
  /// clamps into the last bucket).
  std::size_t slack_buckets = 32;
  /// Capture health: note_dropped declares the capture degraded once
  /// cumulative drops reach drop_degrade_min AND the drop ratio
  /// (drops / slots observed) reaches drop_degrade_ratio. Sustained
  /// ring overflow thus raises a health event instead of being
  /// silently replayed as idle.
  double drop_degrade_ratio = 0.01;
  std::uint64_t drop_degrade_min = 64;
};

/// The online checker. Feed slots via on_slot / on_slots (it is a
/// TraceSink, so executives and the capture drain thread can write to
/// it directly); read verdicts at any time via report() — all windows
/// whose deadline has passed are always resolved. Single-threaded:
/// wrap in TraceCapture for concurrent producers.
class StreamingMonitor final : public sim::TraceSink {
 public:
  explicit StreamingMonitor(const core::GraphModel& model,
                            const MonitorOptions& options = {});

  /// Consumes the next trace slot. Throws std::invalid_argument on a
  /// symbol that is neither idle nor a known element (same contract as
  /// ops_from_trace).
  void on_slot(sim::Slot s) override;

  /// Invoked synchronously for *every* violated window as it is decided
  /// (constraint index, window start, deadline d) — including windows
  /// coalesced into an existing event. Runs on the feeding thread from
  /// inside on_slot; the callback must not feed this monitor
  /// re-entrantly. This is the hook recovery managers use to react to
  /// violations online.
  using ViolationListener = std::function<void(std::size_t constraint, Time begin,
                                               Time deadline)>;
  void set_violation_listener(ViolationListener listener) {
    violation_listener_ = std::move(listener);
  }

  /// Announces `n` trace slots dropped by the capture layer ahead of
  /// this monitor (e.g. TraceCapture ring overflow) *before* their
  /// substituted idle slots are fed. Drops accumulate into the report;
  /// crossing the MonitorOptions degradation thresholds raises a
  /// CaptureHealthEvent (edge-triggered).
  void note_dropped(std::uint64_t n);

  /// Cumulative dropped slots announced so far.
  [[nodiscard]] std::uint64_t dropped_slots() const { return dropped_slots_; }

  /// True while announced drops exceed the degradation thresholds.
  [[nodiscard]] bool capture_degraded() const;

  /// Slots consumed so far.
  [[nodiscard]] Time now() const { return now_; }

  /// Violation events so far, in emission order (per constraint that
  /// is ascending window order). The last event of a constraint may
  /// still be extended by future slots.
  [[nodiscard]] const std::vector<ViolationEvent>& violations() const {
    return events_;
  }

  /// Verdict + health snapshot over the slots consumed so far.
  [[nodiscard]] MonitorReport report() const;

 private:
  struct ConstraintState {
    Time deadline = 0;
    Time stride = 1;  ///< 1 for asynchronous, p for periodic
    bool trivial = false;  ///< empty task graph: every window satisfied
    bool element_relevant_dirty = true;
    std::vector<bool> relevant;  ///< element id -> labels C?
    Time next_check = 0;         ///< earliest unresolved window start
    std::vector<core::ScheduledOp> buf;  ///< decoded executions, start order
    std::size_t head = 0;                ///< buf[head..) is live
    // Multiset gate: an embedding needs an injective assignment, so a
    // query cannot succeed unless every label of C has at least as
    // many live executions as C has ops with that label. Queries are
    // only issued while deficit == 0, which skips the doomed query
    // after each intermediate execution of a multi-op task graph.
    std::vector<std::uint32_t> needed;      ///< element id -> ops of C so labeled
    std::vector<std::uint32_t> live_count;  ///< element id -> live executions
    std::size_t deficit = 0;  ///< labels with live_count < needed
    // Health.
    std::size_t violated = 0;
    std::vector<std::size_t> slack_hist;
    std::optional<Time> min_slack;
    std::size_t peak_buf = 0;
    std::size_t queries = 0;
    // Open-event coalescing: index into events_ of this constraint's
    // most recent event, or npos.
    std::size_t last_event = static_cast<std::size_t>(-1);
  };

  void feed_execution(const core::ScheduledOp& op);
  void query_cascade(std::size_t ci);
  void resolve(std::size_t ci, Time finish, Time witness_start);
  void close_expired(std::size_t ci);
  void emit_violation(std::size_t ci, Time begin);
  void record_satisfied(std::size_t ci, Time begin, Time finish);
  void prune(std::size_t ci);
  [[nodiscard]] static std::span<const core::ScheduledOp> live(const ConstraintState& s) {
    return {s.buf.data() + s.head, s.buf.size() - s.head};
  }
  [[nodiscard]] std::size_t diagnose(std::size_t ci, Time begin) const;

  const core::GraphModel* model_;
  MonitorOptions options_;
  std::vector<ConstraintState> cs_;
  std::vector<ViolationEvent> events_;
  ViolationListener violation_listener_;
  std::uint64_t dropped_slots_ = 0;
  bool was_degraded_ = false;
  std::vector<CaptureHealthEvent> capture_events_;
  Time now_ = 0;
  // Run decoding (shared across constraints, matches ops_from_trace).
  sim::Slot run_elem_ = sim::kIdle;
  Time run_len_ = 0;  ///< slots of run_elem_ since the last emitted execution
  // Trace-level health.
  std::size_t idle_slots_ = 0;
  std::vector<std::size_t> element_busy_;
};

/// Offline reference verdict of a finite trace: the naive per-window
/// re-verification (decode the whole trace, then one embedding query
/// per evaluable window). Used as the differential oracle for the
/// streaming monitor and as the "before" baseline of E18.
struct ReferenceVerdict {
  Time horizon = 0;
  /// Per constraint: violated window starts, ascending.
  std::vector<std::vector<Time>> violated;
  /// Per constraint: number of evaluable windows.
  std::vector<std::size_t> checked;

  [[nodiscard]] bool ok() const;
};

[[nodiscard]] ReferenceVerdict reference_check(const sim::ExecutionTrace& trace,
                                               const core::GraphModel& model);

/// True iff the monitor report and the reference verdict agree exactly:
/// same horizon, same violated window starts per constraint, same
/// evaluable-window counts.
[[nodiscard]] bool verdicts_match(const MonitorReport& report,
                                  const ReferenceVerdict& reference);

}  // namespace rtg::monitor
