// trace_io.hpp — versioned binary trace files (.rtt).
//
// Layout of version 1 (all integers little-endian):
//
//   offset  size  field
//   0       4     magic "RTTB"
//   4       4     u32 format version (= 1)
//   8       8     u64 model fingerprint (FNV-1a, see model_fingerprint)
//   16      8     u64 slot count N
//   24      ...   RLE payload: runs of (varint symbol-code, varint
//                 length) until the lengths sum to N. symbol-code 0 is
//                 idle; code k >= 1 is element id k - 1. Varints are
//                 LEB128 (7 bits per byte, high bit = continue).
//
// The fingerprint binds a capture to the model it was captured under:
// replay refuses a trace whose fingerprint matches neither the raw nor
// the pipelined model, because verdicts against the wrong constraint
// set are meaningless. Readers are strict — bad magic, an unsupported
// version, a truncated payload, an overlong or overflowing LEB128
// varint, or a run-length mismatch all throw RttError (a
// std::runtime_error carrying a machine-readable kind) rather than
// returning a partial trace. A declared slot count is checked against
// RttReadLimits before any allocation, so a hostile 30-byte file
// cannot make the reader allocate terabytes.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/model.hpp"
#include "sim/trace.hpp"

namespace rtg::monitor {

/// What exactly a strict reader rejected.
enum class RttErrorKind : std::uint8_t {
  kIo,              ///< cannot open / write failure
  kBadMagic,        ///< not an .rtt file
  kBadVersion,      ///< unsupported format version
  kTruncated,       ///< header or payload ends early
  kMalformedVarint, ///< LEB128 longer than 10 bytes or overflowing 64 bits
  kBadSymbol,       ///< symbol code outside the slot alphabet
  kBadRun,          ///< zero-length run or runs exceeding the declared count
  kTrailingBytes,   ///< payload bytes after the declared slot count
  kTooLarge,        ///< declared slot count exceeds RttReadLimits::max_slots
};

[[nodiscard]] std::string_view rtt_error_kind_name(RttErrorKind kind);

/// Structured reader/writer failure. Derives std::runtime_error, so
/// existing catch sites keep working; kind() tells tools apart
/// corruption (retryable from a fresh capture) from resource refusal.
class RttError : public std::runtime_error {
 public:
  RttError(RttErrorKind kind, const std::string& what)
      : std::runtime_error("rtt: " + what), kind_(kind) {}

  [[nodiscard]] RttErrorKind kind() const { return kind_; }

 private:
  RttErrorKind kind_;
};

/// Resource bounds enforced *before* allocation while reading. The
/// default admits a billion-slot trace (4 GiB decoded) — far beyond any
/// realistic capture; lower it when ingesting untrusted files.
struct RttReadLimits {
  std::uint64_t max_slots = std::uint64_t{1} << 30;
};

/// Order-sensitive FNV-1a digest of the model's observable structure:
/// elements (name, weight, pipelinability), channels, and constraints
/// (name, task graph, period, deadline, kind). Two models that could
/// judge a trace differently get different fingerprints.
[[nodiscard]] std::uint64_t model_fingerprint(const core::GraphModel& model);

/// Streaming .rtt encoder: a TraceSink that run-length-encodes slots as
/// they arrive (bounded memory in the number of runs, not slots) and
/// writes the complete file on finish().
class RttWriter final : public sim::TraceSink {
 public:
  explicit RttWriter(std::uint64_t fingerprint) : fingerprint_(fingerprint) {}

  void on_slot(sim::Slot s) override;

  /// Writes header + payload. The writer stays usable; a later finish()
  /// rewrites the longer prefix.
  void finish(std::ostream& out) const;

  [[nodiscard]] std::uint64_t slot_count() const { return slots_; }

 private:
  std::uint64_t fingerprint_;
  std::uint64_t slots_ = 0;
  std::vector<sim::TraceRun> runs_;
};

struct RttFile {
  std::uint64_t fingerprint = 0;
  sim::ExecutionTrace trace;
};

void write_trace(std::ostream& out, const sim::ExecutionTrace& trace,
                 std::uint64_t fingerprint);
[[nodiscard]] RttFile read_trace(std::istream& in, const RttReadLimits& limits = {});

/// File-path convenience wrappers (binary mode; throw RttError with
/// kind kIo on I/O failure).
void write_trace_file(const std::string& path, const sim::ExecutionTrace& trace,
                      std::uint64_t fingerprint);
[[nodiscard]] RttFile read_trace_file(const std::string& path,
                                      const RttReadLimits& limits = {});

/// In-memory convenience wrapper: parses an .rtt image already held in
/// a buffer (the service protocol ships traces inline in requests).
/// Same strict reader, same RttError taxonomy.
[[nodiscard]] RttFile read_trace_buffer(std::string_view bytes,
                                        const RttReadLimits& limits = {});

}  // namespace rtg::monitor
