#include "monitor/trace_io.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace rtg::monitor {

namespace {

constexpr char kMagic[4] = {'R', 'T', 'T', 'B'};
constexpr std::uint32_t kVersion = 1;

// --- FNV-1a ---------------------------------------------------------

struct Fnv1a {
  std::uint64_t state = 1469598103934665603ull;

  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      state ^= p[i];
      state *= 1099511628211ull;
    }
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      const unsigned char b = static_cast<unsigned char>(v >> (8 * i));
      bytes(&b, 1);
    }
  }
  void str(const std::string& s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
};

// --- little-endian + varint primitives ------------------------------

void put_u32(std::ostream& out, std::uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>(v >> (8 * i));
  out.write(b, 4);
}

void put_u64(std::ostream& out, std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>(v >> (8 * i));
  out.write(b, 8);
}

void put_varint(std::ostream& out, std::uint64_t v) {
  while (v >= 0x80) {
    const char b = static_cast<char>((v & 0x7f) | 0x80);
    out.write(&b, 1);
    v >>= 7;
  }
  const char b = static_cast<char>(v);
  out.write(&b, 1);
}

[[noreturn]] void fail(RttErrorKind kind, const std::string& what) {
  throw RttError(kind, what);
}

std::uint32_t get_u32(std::istream& in) {
  char b[4];
  if (!in.read(b, 4)) fail(RttErrorKind::kTruncated, "truncated header");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(b[i])) << (8 * i);
  }
  return v;
}

std::uint64_t get_u64(std::istream& in) {
  char b[8];
  if (!in.read(b, 8)) fail(RttErrorKind::kTruncated, "truncated header");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(b[i])) << (8 * i);
  }
  return v;
}

std::uint64_t get_varint(std::istream& in) {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    char b;
    if (!in.read(&b, 1)) fail(RttErrorKind::kTruncated, "truncated payload");
    const auto byte = static_cast<unsigned char>(b);
    const std::uint64_t bits = byte & 0x7f;
    // The 10th byte contributes only the top bit of a u64; anything
    // more would be silently discarded by the shift — reject it.
    if (shift == 63 && bits > 1) {
      fail(RttErrorKind::kMalformedVarint, "varint overflows 64 bits");
    }
    v |= bits << shift;
    if ((byte & 0x80) == 0) return v;
  }
  fail(RttErrorKind::kMalformedVarint, "varint longer than 10 bytes");
}

// Idle maps to code 0 so the most common symbol gets the shortest
// encoding; element e maps to e + 1.
std::uint64_t symbol_code(sim::Slot s) {
  return s == sim::kIdle ? 0 : static_cast<std::uint64_t>(s) + 1;
}

sim::Slot code_symbol(std::uint64_t code) {
  if (code == 0) return sim::kIdle;
  if (code > static_cast<std::uint64_t>(sim::kIdle)) {
    fail(RttErrorKind::kBadSymbol, "symbol code out of range");
  }
  return static_cast<sim::Slot>(code - 1);
}

void write_payload(std::ostream& out, std::uint64_t fingerprint,
                   std::uint64_t slot_count, const std::vector<sim::TraceRun>& runs) {
  out.write(kMagic, 4);
  put_u32(out, kVersion);
  put_u64(out, fingerprint);
  put_u64(out, slot_count);
  for (const sim::TraceRun& run : runs) {
    put_varint(out, symbol_code(run.symbol));
    put_varint(out, run.length);
  }
  if (!out) fail(RttErrorKind::kIo, "write failed");
}

}  // namespace

std::string_view rtt_error_kind_name(RttErrorKind kind) {
  switch (kind) {
    case RttErrorKind::kIo:
      return "io";
    case RttErrorKind::kBadMagic:
      return "bad-magic";
    case RttErrorKind::kBadVersion:
      return "bad-version";
    case RttErrorKind::kTruncated:
      return "truncated";
    case RttErrorKind::kMalformedVarint:
      return "malformed-varint";
    case RttErrorKind::kBadSymbol:
      return "bad-symbol";
    case RttErrorKind::kBadRun:
      return "bad-run";
    case RttErrorKind::kTrailingBytes:
      return "trailing-bytes";
    case RttErrorKind::kTooLarge:
      return "too-large";
  }
  return "?";
}

std::uint64_t model_fingerprint(const core::GraphModel& model) {
  Fnv1a h;
  const core::CommGraph& comm = model.comm();
  h.u64(comm.size());
  for (core::ElementId e = 0; e < comm.size(); ++e) {
    h.str(comm.name(e));
    h.u64(static_cast<std::uint64_t>(comm.weight(e)));
    h.u64(comm.pipelinable(e) ? 1 : 0);
  }
  for (core::ElementId u = 0; u < comm.size(); ++u) {
    const auto& succ = comm.digraph().successors(u);
    h.u64(succ.size());
    for (core::ElementId v : succ) h.u64(v);
  }
  h.u64(model.constraint_count());
  for (const core::TimingConstraint& c : model.constraints()) {
    h.str(c.name);
    h.u64(static_cast<std::uint64_t>(c.period));
    h.u64(static_cast<std::uint64_t>(c.deadline));
    h.u64(c.periodic() ? 0 : 1);
    const core::TaskGraph& tg = c.task_graph;
    h.u64(tg.size());
    for (core::OpId v = 0; v < tg.size(); ++v) {
      h.u64(tg.label(v));
      const auto& succ = tg.skeleton().successors(v);
      h.u64(succ.size());
      for (core::OpId w : succ) h.u64(w);
    }
  }
  return h.state;
}

void RttWriter::on_slot(sim::Slot s) {
  if (!runs_.empty() && runs_.back().symbol == s) {
    ++runs_.back().length;
  } else {
    runs_.push_back(sim::TraceRun{s, static_cast<std::size_t>(slots_), 1});
  }
  ++slots_;
}

void RttWriter::finish(std::ostream& out) const {
  write_payload(out, fingerprint_, slots_, runs_);
}

void write_trace(std::ostream& out, const sim::ExecutionTrace& trace,
                 std::uint64_t fingerprint) {
  std::vector<sim::TraceRun> runs;
  for (const sim::TraceRun& run : trace.runs()) runs.push_back(run);
  write_payload(out, fingerprint, trace.size(), runs);
}

RttFile read_trace(std::istream& in, const RttReadLimits& limits) {
  char magic[4];
  if (!in.read(magic, 4)) fail(RttErrorKind::kTruncated, "truncated header");
  for (int i = 0; i < 4; ++i) {
    if (magic[i] != kMagic[i]) {
      fail(RttErrorKind::kBadMagic, "bad magic (not an .rtt file)");
    }
  }
  const std::uint32_t version = get_u32(in);
  if (version != kVersion) {
    fail(RttErrorKind::kBadVersion, "unsupported version " + std::to_string(version));
  }
  RttFile file;
  file.fingerprint = get_u64(in);
  const std::uint64_t count = get_u64(in);
  // Refuse before allocating anything: a corrupt or hostile count field
  // must not translate into a giant allocation.
  if (count > limits.max_slots) {
    fail(RttErrorKind::kTooLarge, "declared slot count " + std::to_string(count) +
                                      " exceeds limit " +
                                      std::to_string(limits.max_slots));
  }
  std::uint64_t decoded = 0;
  while (decoded < count) {
    const sim::Slot symbol = code_symbol(get_varint(in));
    const std::uint64_t length = get_varint(in);
    if (length == 0) fail(RttErrorKind::kBadRun, "zero-length run");
    if (length > count - decoded) {
      fail(RttErrorKind::kBadRun, "runs exceed declared slot count");
    }
    file.trace.append_run(symbol, static_cast<std::size_t>(length));
    decoded += length;
  }
  // The payload must end exactly at the declared count.
  char extra;
  if (in.read(&extra, 1)) fail(RttErrorKind::kTrailingBytes, "trailing bytes after payload");
  return file;
}

void write_trace_file(const std::string& path, const sim::ExecutionTrace& trace,
                      std::uint64_t fingerprint) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) fail(RttErrorKind::kIo, "cannot open '" + path + "' for writing");
  write_trace(out, trace, fingerprint);
}

RttFile read_trace_file(const std::string& path, const RttReadLimits& limits) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail(RttErrorKind::kIo, "cannot open '" + path + "'");
  return read_trace(in, limits);
}

RttFile read_trace_buffer(std::string_view bytes, const RttReadLimits& limits) {
  std::istringstream in(std::string(bytes), std::ios::binary);
  return read_trace(in, limits);
}

}  // namespace rtg::monitor
