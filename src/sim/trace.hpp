// trace.hpp — execution traces.
//
// The paper defines an execution trace of a processor as a mapping
// F : ℕ → V ∪ {φ}: F(i) = u means functional element u executes in the
// unit interval [i, i+1); F(i) = φ means the processor idles. This
// container stores a finite prefix of such a trace, with helpers to
// count symbols, slice windows, and render compactly.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace rtg::sim {

/// A trace symbol: a functional-element id or idle.
using Slot = std::uint32_t;

/// The idle symbol φ.
inline constexpr Slot kIdle = static_cast<Slot>(-1);

/// Consumer of a trace delivered one slot at a time, in trace order.
/// Implemented by the online monitor, the binary trace writer, and the
/// capture ring's producer side; the executives emit into one of these
/// so observation composes with execution without coupling the layers.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_slot(Slot s) = 0;
  /// Batch delivery; the default forwards slot by slot.
  virtual void on_slots(std::span<const Slot> slots) {
    for (Slot s : slots) on_slot(s);
  }
};

/// Sink adapter appending every slot to an ExecutionTrace.
class ExecutionTrace;
class TraceAppender final : public TraceSink {
 public:
  explicit TraceAppender(ExecutionTrace& trace) : trace_(&trace) {}
  void on_slot(Slot s) override;

 private:
  ExecutionTrace* trace_;
};

/// Sink adapter fanning each slot out to several downstream sinks in
/// order (e.g. a trace writer plus a live monitor).
class FanOutSink final : public TraceSink {
 public:
  explicit FanOutSink(std::vector<TraceSink*> sinks) : sinks_(std::move(sinks)) {}
  void on_slot(Slot s) override {
    for (TraceSink* sink : sinks_) sink->on_slot(s);
  }

 private:
  std::vector<TraceSink*> sinks_;
};

/// One maximal run of a single symbol within a trace.
struct TraceRun {
  Slot symbol = kIdle;
  std::size_t begin = 0;   ///< index of the run's first slot
  std::size_t length = 0;  ///< number of consecutive slots

  friend bool operator==(const TraceRun&, const TraceRun&) = default;
};

/// Finite prefix of an execution trace F : ℕ → V ∪ {φ}.
class ExecutionTrace {
 public:
  ExecutionTrace() = default;
  explicit ExecutionTrace(std::vector<Slot> slots) : slots_(std::move(slots)) {}

  void append(Slot s) { slots_.push_back(s); }
  void append_idle(std::size_t count = 1) {
    slots_.insert(slots_.end(), count, kIdle);
  }
  /// Appends `count` consecutive slots of element `e` (a weight-`count`
  /// non-preemptive execution).
  void append_run(Slot e, std::size_t count) {
    slots_.insert(slots_.end(), count, e);
  }

  [[nodiscard]] std::size_t size() const { return slots_.size(); }
  [[nodiscard]] bool empty() const { return slots_.empty(); }
  [[nodiscard]] Slot at(std::size_t i) const { return slots_.at(i); }
  [[nodiscard]] Slot operator[](std::size_t i) const { return slots_[i]; }
  [[nodiscard]] const std::vector<Slot>& slots() const { return slots_; }

  /// Number of slots carrying element `e`.
  [[nodiscard]] std::size_t count(Slot e) const;

  /// Number of idle slots.
  [[nodiscard]] std::size_t idle_count() const { return count(kIdle); }

  /// Fraction of busy (non-idle) slots; 0 for an empty trace.
  [[nodiscard]] double utilization() const;

  /// View of the `length` slots starting at `begin`. Throws
  /// std::out_of_range when the window does not fit inside the trace
  /// (an empty window at begin <= size() is fine).
  [[nodiscard]] std::span<const Slot> window(std::size_t begin, std::size_t length) const;

  /// Maximal single-symbol runs in trace order (run-length encoding).
  /// Empty for an empty trace; the runs tile [0, size()) exactly.
  class RunIterator {
   public:
    using value_type = TraceRun;
    using difference_type = std::ptrdiff_t;

    RunIterator() = default;
    RunIterator(const std::vector<Slot>* slots, std::size_t begin) : slots_(slots) {
      run_.begin = begin;
      advance();
    }

    const TraceRun& operator*() const { return run_; }
    const TraceRun* operator->() const { return &run_; }
    RunIterator& operator++() {
      run_.begin += run_.length;
      advance();
      return *this;
    }
    RunIterator operator++(int) {
      RunIterator copy = *this;
      ++*this;
      return copy;
    }
    friend bool operator==(const RunIterator& a, const RunIterator& b) {
      return a.run_.begin == b.run_.begin;
    }

   private:
    void advance() {
      run_.length = 0;
      if (slots_ == nullptr || run_.begin >= slots_->size()) return;
      run_.symbol = (*slots_)[run_.begin];
      std::size_t end = run_.begin + 1;
      while (end < slots_->size() && (*slots_)[end] == run_.symbol) ++end;
      run_.length = end - run_.begin;
    }

    const std::vector<Slot>* slots_ = nullptr;
    TraceRun run_;
  };

  class RunRange {
   public:
    explicit RunRange(const std::vector<Slot>& slots) : slots_(&slots) {}
    [[nodiscard]] RunIterator begin() const { return RunIterator(slots_, 0); }
    [[nodiscard]] RunIterator end() const { return RunIterator(slots_, slots_->size()); }

   private:
    const std::vector<Slot>* slots_;
  };

  [[nodiscard]] RunRange runs() const { return RunRange(slots_); }

  /// Compact text rendering: element names where provided (one char per
  /// slot uses ids), '.' for idle. `names[e]` supplies the label for
  /// element e; out-of-range ids render as their number.
  [[nodiscard]] std::string to_string(std::span<const std::string> names = {}) const;

  friend bool operator==(const ExecutionTrace&, const ExecutionTrace&) = default;

 private:
  std::vector<Slot> slots_;
};

}  // namespace rtg::sim
