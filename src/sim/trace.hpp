// trace.hpp — execution traces.
//
// The paper defines an execution trace of a processor as a mapping
// F : ℕ → V ∪ {φ}: F(i) = u means functional element u executes in the
// unit interval [i, i+1); F(i) = φ means the processor idles. This
// container stores a finite prefix of such a trace, with helpers to
// count symbols, slice windows, and render compactly.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace rtg::sim {

/// A trace symbol: a functional-element id or idle.
using Slot = std::uint32_t;

/// The idle symbol φ.
inline constexpr Slot kIdle = static_cast<Slot>(-1);

/// Finite prefix of an execution trace F : ℕ → V ∪ {φ}.
class ExecutionTrace {
 public:
  ExecutionTrace() = default;
  explicit ExecutionTrace(std::vector<Slot> slots) : slots_(std::move(slots)) {}

  void append(Slot s) { slots_.push_back(s); }
  void append_idle(std::size_t count = 1) {
    slots_.insert(slots_.end(), count, kIdle);
  }
  /// Appends `count` consecutive slots of element `e` (a weight-`count`
  /// non-preemptive execution).
  void append_run(Slot e, std::size_t count) {
    slots_.insert(slots_.end(), count, e);
  }

  [[nodiscard]] std::size_t size() const { return slots_.size(); }
  [[nodiscard]] bool empty() const { return slots_.empty(); }
  [[nodiscard]] Slot at(std::size_t i) const { return slots_.at(i); }
  [[nodiscard]] Slot operator[](std::size_t i) const { return slots_[i]; }
  [[nodiscard]] const std::vector<Slot>& slots() const { return slots_; }

  /// Number of slots carrying element `e`.
  [[nodiscard]] std::size_t count(Slot e) const;

  /// Number of idle slots.
  [[nodiscard]] std::size_t idle_count() const { return count(kIdle); }

  /// Fraction of busy (non-idle) slots; 0 for an empty trace.
  [[nodiscard]] double utilization() const;

  /// View of slots [begin, end).
  [[nodiscard]] std::span<const Slot> window(std::size_t begin, std::size_t end) const;

  /// Compact text rendering: element names where provided (one char per
  /// slot uses ids), '.' for idle. `names[e]` supplies the label for
  /// element e; out-of-range ids render as their number.
  [[nodiscard]] std::string to_string(std::span<const std::string> names = {}) const;

  friend bool operator==(const ExecutionTrace&, const ExecutionTrace&) = default;

 private:
  std::vector<Slot> slots_;
};

}  // namespace rtg::sim
