// stats.hpp — streaming and batch statistics for experiment harnesses.
#pragma once

#include <cstdint>
#include <vector>

namespace rtg::sim {

/// Welford streaming accumulator: numerically stable mean/variance with
/// O(1) state, plus min/max.
class Accumulator {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 with fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile of a sample set using nearest-rank interpolation.
/// `q` in [0, 1]. The input is copied and sorted. Returns 0 when empty.
[[nodiscard]] double percentile(std::vector<double> samples, double q);

/// Fixed-width histogram over [lo, hi) with `bins` buckets; samples
/// outside the range clamp into the edge buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  [[nodiscard]] std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::size_t total() const { return total_; }
  /// Inclusive lower edge of bin i.
  [[nodiscard]] double bin_lo(std::size_t i) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace rtg::sim
