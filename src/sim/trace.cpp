#include "sim/trace.hpp"

#include <algorithm>
#include <stdexcept>

namespace rtg::sim {

std::size_t ExecutionTrace::count(Slot e) const {
  return static_cast<std::size_t>(std::count(slots_.begin(), slots_.end(), e));
}

double ExecutionTrace::utilization() const {
  if (slots_.empty()) return 0.0;
  return 1.0 - static_cast<double>(idle_count()) / static_cast<double>(slots_.size());
}

std::span<const Slot> ExecutionTrace::window(std::size_t begin, std::size_t length) const {
  if (begin > slots_.size() || length > slots_.size() - begin) {
    throw std::out_of_range("ExecutionTrace::window: bad range");
  }
  return {slots_.data() + begin, length};
}

void TraceAppender::on_slot(Slot s) { trace_->append(s); }

std::string ExecutionTrace::to_string(std::span<const std::string> names) const {
  std::string out;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (i > 0) out.push_back(' ');
    const Slot s = slots_[i];
    if (s == kIdle) {
      out.push_back('.');
    } else if (s < names.size() && !names[s].empty()) {
      out += names[s];
    } else {
      out += std::to_string(s);
    }
  }
  return out;
}

}  // namespace rtg::sim
