// event_queue.hpp — time-ordered event queue for discrete-event
// simulation. Events at equal timestamps pop in insertion order (FIFO),
// which keeps simulations deterministic without relying on heap
// tie-breaking.
#pragma once

#include <cstdint>
#include <queue>
#include <utility>
#include <vector>

namespace rtg::sim {

/// Simulated time in integral slots, matching the paper's integral
/// invocation instants.
using Time = std::int64_t;

/// Min-queue of (time, payload) ordered by time then insertion order.
template <typename Payload>
class EventQueue {
 public:
  void push(Time t, Payload payload) {
    heap_.push(Entry{t, next_seq_++, std::move(payload)});
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Time of the earliest event. Precondition: !empty().
  [[nodiscard]] Time next_time() const { return heap_.top().time; }

  /// Removes and returns the earliest event's payload.
  /// Precondition: !empty().
  [[nodiscard]] std::pair<Time, Payload> pop() {
    Entry top = heap_.top();
    heap_.pop();
    return {top.time, std::move(top.payload)};
  }

  void clear() {
    heap_ = {};
    next_seq_ = 0;
  }

 private:
  struct Entry {
    Time time;
    std::uint64_t seq;
    Payload payload;

    // std::priority_queue is a max-heap; invert the comparison.
    bool operator<(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  std::priority_queue<Entry> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace rtg::sim
