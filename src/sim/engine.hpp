// engine.hpp — minimal deterministic discrete-event simulation engine.
//
// The run-time executive and the process-based scheduling simulators run
// on this engine: callbacks scheduled at integral times, executed in
// (time, insertion) order. The engine owns the clock; callbacks may
// schedule further events at or after the current time.
#pragma once

#include <functional>
#include <stdexcept>

#include "sim/event_queue.hpp"

namespace rtg::sim {

class Engine {
 public:
  using Callback = std::function<void(Engine&)>;

  /// Current simulated time. Starts at 0.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedules `cb` to run at absolute time `t` (must be >= now()).
  void schedule_at(Time t, Callback cb) {
    if (t < now_) {
      throw std::invalid_argument("Engine::schedule_at: time in the past");
    }
    queue_.push(t, std::move(cb));
  }

  /// Schedules `cb` to run `delay` slots from now.
  void schedule_after(Time delay, Callback cb) {
    schedule_at(now_ + delay, std::move(cb));
  }

  /// Schedules `cb` at first, first + period, ... up to and including
  /// `until` — recurring fault bursts, probes, heartbeats. Events are
  /// materialized eagerly, so keep (until - first) / period modest; the
  /// callback is copied per occurrence.
  void schedule_every(Time first, Time period, Time until, const Callback& cb) {
    if (period < 1) {
      throw std::invalid_argument("Engine::schedule_every: period must be >= 1");
    }
    for (Time t = first; t <= until; t += period) schedule_at(t, cb);
  }

  /// Runs events until the queue is empty or the clock would pass
  /// `horizon`. Events at exactly `horizon` do run. Returns the number
  /// of events executed.
  std::size_t run_until(Time horizon) {
    std::size_t executed = 0;
    while (!queue_.empty() && queue_.next_time() <= horizon) {
      auto [t, cb] = queue_.pop();
      now_ = t;
      cb(*this);
      ++executed;
    }
    if (now_ < horizon) now_ = horizon;
    return executed;
  }

  /// Runs all pending events. Returns the number executed. Use only
  /// when the event population is known to be finite.
  std::size_t run_all() {
    std::size_t executed = 0;
    while (!queue_.empty()) {
      auto [t, cb] = queue_.pop();
      now_ = t;
      cb(*this);
      ++executed;
    }
    return executed;
  }

  [[nodiscard]] bool idle() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

 private:
  Time now_ = 0;
  EventQueue<Callback> queue_;
};

}  // namespace rtg::sim
