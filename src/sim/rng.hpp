// rng.hpp — deterministic pseudo-random number generation.
//
// All workload generators and simulations in this library are seeded
// explicitly so experiments are exactly reproducible run to run.  The
// generator is xoshiro256** seeded via splitmix64, which is fast,
// high-quality, and has a tiny state — appropriate for HPC-style
// simulation loops where std::mt19937_64's 2.5 KB state is overkill.
#pragma once

#include <cstdint>
#include <limits>

namespace rtg::sim {

/// splitmix64 step; used for seeding and as a standalone mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    // Lemire-style bounded generation without modulo bias for the
    // magnitudes we use (span << 2^64 makes the bias negligible; we do
    // the rejection step anyway for exactness).
    if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
    const std::uint64_t limit = max() - max() % span;
    std::uint64_t draw;
    do {
      draw = (*this)();
    } while (draw >= limit);
    return lo + static_cast<std::int64_t>(draw % span);
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p of true.
  bool chance(double p) { return uniform01() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace rtg::sim
