#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rtg::sim {

void Accumulator::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  if (n_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
}

double Accumulator::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("percentile: q out of [0,1]");
  }
  std::sort(samples.begin(), samples.end());
  const double rank = q * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(lo < hi) || bins == 0) {
    throw std::invalid_argument("Histogram: bad range or zero bins");
  }
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::int64_t>(t * static_cast<double>(counts_.size()));
  idx = std::clamp<std::int64_t>(idx, 0, static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const {
  if (i >= counts_.size()) throw std::out_of_range("Histogram::bin_lo");
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

}  // namespace rtg::sim
