#include "svc/chaos.hpp"

namespace rtg::svc {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

double chaos_unit(std::uint64_t seed, std::uint64_t job_id, std::uint64_t attempt,
                  std::uint64_t salt) {
  std::uint64_t h = splitmix64(seed ^ salt);
  h = splitmix64(h ^ job_id);
  h = splitmix64(h ^ attempt);
  // 53 mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool chaos_should_stall(const ChaosPlan& plan, std::uint64_t job_id,
                        std::uint64_t attempt) {
  if (!plan.enabled() || plan.stall_rate <= 0.0) return false;
  return chaos_unit(plan.seed, job_id, attempt, 0x57414c4cull) < plan.stall_rate;
}

bool chaos_should_fail(const ChaosPlan& plan, std::uint64_t job_id,
                       std::uint64_t attempt) {
  if (!plan.enabled() || plan.fail_rate <= 0.0) return false;
  return chaos_unit(plan.seed, job_id, attempt, 0x4641494cull) < plan.fail_rate;
}

}  // namespace rtg::svc
