// chaos.hpp — deterministic fault injection for the service layer.
//
// Same discipline as core/fault_injection: every chaos decision is a
// pure hash of (seed, job id, attempt) — no RNG state threaded through
// the server, no ordering sensitivity. Two runs of the same job mix
// under the same seed make identical decisions regardless of worker
// interleaving, which is what lets the chaos suite assert exact
// properties (exactly one response per job, no wrong verdicts) instead
// of statistical ones.
#pragma once

#include <cstdint>

namespace rtg::svc {

struct ChaosPlan {
  std::uint64_t seed = 0;  ///< 0 disables all injection
  /// Probability a worker stalls (sleeps stall_ms) before running a
  /// delivery — long stalls exercise the supervisor's stuck-worker
  /// re-queue path.
  double stall_rate = 0.0;
  std::uint32_t stall_ms = 0;
  /// Probability a delivery fails transiently after running (exercises
  /// the retry/backoff path).
  double fail_rate = 0.0;

  [[nodiscard]] bool enabled() const { return seed != 0; }
};

/// splitmix64 of the decision coordinates; uniform in [0, 1).
[[nodiscard]] double chaos_unit(std::uint64_t seed, std::uint64_t job_id,
                                std::uint64_t attempt, std::uint64_t salt);

[[nodiscard]] bool chaos_should_stall(const ChaosPlan& plan, std::uint64_t job_id,
                                      std::uint64_t attempt);
[[nodiscard]] bool chaos_should_fail(const ChaosPlan& plan, std::uint64_t job_id,
                                     std::uint64_t attempt);

}  // namespace rtg::svc
