#include "svc/protocol.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

namespace rtg::svc {

namespace {

[[noreturn]] void fail(const std::string& what) { throw ProtocolError(what); }

std::uint64_t parse_u64(const std::string& token, const char* field) {
  if (token.empty()) fail(std::string(field) + ": empty number");
  std::uint64_t v = 0;
  for (const char c : token) {
    if (c < '0' || c > '9') {
      fail(std::string(field) + ": bad number '" + token + "'");
    }
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) {
      fail(std::string(field) + ": number overflow '" + token + "'");
    }
    v = v * 10 + digit;
  }
  return v;
}

bool parse_bool(const std::string& token, const char* field) {
  if (token == "0") return false;
  if (token == "1") return true;
  fail(std::string(field) + ": expected 0 or 1, got '" + token + "'");
}

// getline with the limits' line cap enforced.
bool next_line(std::istream& in, std::string& line, const ProtocolLimits& limits) {
  if (!std::getline(in, line)) return false;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  if (line.size() > limits.max_line_bytes) {
    fail("line exceeds " + std::to_string(limits.max_line_bytes) + " bytes");
  }
  return true;
}

std::string read_section(std::istream& in, std::uint64_t n_lines,
                         const ProtocolLimits& limits, const char* what) {
  if (n_lines > limits.max_section_lines) {
    fail(std::string(what) + ": " + std::to_string(n_lines) +
         " lines exceed the section limit");
  }
  std::string text;
  std::string line;
  for (std::uint64_t i = 0; i < n_lines; ++i) {
    if (!next_line(in, line, limits)) {
      fail(std::string(what) + ": stream ended inside the section");
    }
    text += line;
    text += '\n';
  }
  return text;
}

std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream ss(line);
  std::string tok;
  while (ss >> tok) tokens.push_back(std::move(tok));
  return tokens;
}

std::size_t count_lines(const std::string& text) {
  if (text.empty()) return 0;
  std::size_t n = 0;
  for (const char c : text) {
    if (c == '\n') ++n;
  }
  if (text.back() != '\n') ++n;
  return n;
}

void write_section(std::ostream& out, const char* keyword, const std::string& text) {
  if (text.empty()) return;
  out << keyword << ' ' << count_lines(text) << '\n';
  out << text;
  if (text.back() != '\n') out << '\n';
}

// key=value token; fails when the key does not match.
std::uint64_t parse_kv(const std::string& token, const char* key) {
  const std::string prefix = std::string(key) + "=";
  if (token.compare(0, prefix.size(), prefix) != 0) {
    fail("expected '" + prefix + "...', got '" + token + "'");
  }
  return parse_u64(token.substr(prefix.size()), key);
}

}  // namespace

std::string_view job_kind_name(JobKind kind) {
  switch (kind) {
    case JobKind::kVerify: return "verify";
    case JobKind::kSynthesize: return "synth";
    case JobKind::kMonitor: return "monitor";
    case JobKind::kMap: return "map";
  }
  return "unknown";
}

std::string_view job_status_name(JobStatus status) {
  switch (status) {
    case JobStatus::kOk: return "ok";
    case JobStatus::kRejected: return "rejected";
    case JobStatus::kExpired: return "expired";
    case JobStatus::kInvalid: return "invalid";
    case JobStatus::kFailed: return "failed";
  }
  return "unknown";
}

std::string hex_encode(std::string_view bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const char c : bytes) {
    const auto b = static_cast<unsigned char>(c);
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xf]);
  }
  return out;
}

std::string hex_decode(std::string_view hex) {
  if (hex.size() % 2 != 0) fail("odd-length hex payload");
  const auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    fail(std::string("bad hex digit '") + c + "'");
  };
  std::string out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<char>((nibble(hex[i]) << 4) | nibble(hex[i + 1])));
  }
  return out;
}

std::optional<JobRequest> read_request(std::istream& in,
                                       const ProtocolLimits& limits) {
  std::string line;
  // Skip blank lines between frames; clean EOF here means "no more".
  do {
    if (!next_line(in, line, limits)) return std::nullopt;
  } while (line.empty());

  const std::vector<std::string> head = split_ws(line);
  if (head.empty() || head[0] != "REQ") {
    fail("expected REQ, got '" + line + "'");
  }
  if (head.size() != 6) {
    fail("REQ needs 5 fields (id tenant kind deadline_ms exact), got " +
         std::to_string(head.size() - 1));
  }
  JobRequest req;
  req.id = parse_u64(head[1], "id");
  req.tenant = head[2];
  if (head[3] == "verify") {
    req.kind = JobKind::kVerify;
  } else if (head[3] == "synth") {
    req.kind = JobKind::kSynthesize;
  } else if (head[3] == "monitor") {
    req.kind = JobKind::kMonitor;
  } else if (head[3] == "map") {
    req.kind = JobKind::kMap;
  } else {
    fail("unknown job kind '" + head[3] + "'");
  }
  req.deadline_ms = parse_u64(head[4], "deadline_ms");
  req.exact = parse_bool(head[5], "exact");

  for (;;) {
    if (!next_line(in, line, limits)) fail("stream ended inside a REQ frame");
    if (line == "END") break;
    const std::vector<std::string> tokens = split_ws(line);
    if ((tokens.size() == 3 || tokens.size() == 4) && tokens[0] == "MAP") {
      // MAP <processors> <mapper> [tolerate] — the mapped-job header
      // line; the optional fourth token is the k-tolerance target.
      req.processors = parse_u64(tokens[1], "MAP processors");
      req.mapper = tokens[2];
      req.tolerate = tokens.size() == 4 ? parse_u64(tokens[3], "MAP tolerate") : 0;
      continue;
    }
    if (tokens.size() != 2) fail("bad section header '" + line + "'");
    const std::uint64_t n = parse_u64(tokens[1], tokens[0].c_str());
    if (tokens[0] == "SPEC") {
      req.spec = read_section(in, n, limits, "SPEC");
    } else if (tokens[0] == "SCHED") {
      req.schedule = read_section(in, n, limits, "SCHED");
    } else if (tokens[0] == "TRACE") {
      if (n > limits.max_line_bytes) {
        fail("TRACE: declared " + std::to_string(n) + " hex chars exceed the limit");
      }
      if (!next_line(in, line, limits)) fail("TRACE: stream ended before payload");
      if (line.size() != n) {
        fail("TRACE: declared " + std::to_string(n) + " hex chars, got " +
             std::to_string(line.size()));
      }
      req.trace = hex_decode(line);
    } else {
      fail("unknown section '" + tokens[0] + "'");
    }
  }
  return req;
}

void write_request(std::ostream& out, const JobRequest& req) {
  out << "REQ " << req.id << ' ' << req.tenant << ' ' << job_kind_name(req.kind)
      << ' ' << req.deadline_ms << ' ' << (req.exact ? 1 : 0) << '\n';
  if (req.kind == JobKind::kMap) {
    out << "MAP " << req.processors << ' '
        << (req.mapper.empty() ? "greedy" : req.mapper);
    if (req.tolerate > 0) out << ' ' << req.tolerate;
    out << '\n';
  }
  write_section(out, "SPEC", req.spec);
  write_section(out, "SCHED", req.schedule);
  if (!req.trace.empty()) {
    const std::string hex = hex_encode(req.trace);
    out << "TRACE " << hex.size() << '\n' << hex << '\n';
  }
  out << "END\n";
}

std::optional<JobResponse> read_response(std::istream& in,
                                         const ProtocolLimits& limits) {
  std::string line;
  do {
    if (!next_line(in, line, limits)) return std::nullopt;
  } while (line.empty());

  const std::vector<std::string> head = split_ws(line);
  if (head.empty() || head[0] != "RSP") {
    fail("expected RSP, got '" + line + "'");
  }
  if (head.size() != 9) {
    fail("RSP needs 8 fields, got " + std::to_string(head.size() - 1));
  }
  JobResponse rsp;
  rsp.id = parse_u64(head[1], "id");
  if (head[2] == "ok") {
    rsp.status = JobStatus::kOk;
  } else if (head[2] == "rejected") {
    rsp.status = JobStatus::kRejected;
  } else if (head[2] == "expired") {
    rsp.status = JobStatus::kExpired;
  } else if (head[2] == "invalid") {
    rsp.status = JobStatus::kInvalid;
  } else if (head[2] == "failed") {
    rsp.status = JobStatus::kFailed;
  } else {
    fail("unknown status '" + head[2] + "'");
  }
  rsp.verdict = parse_kv(head[3], "verdict") != 0;
  rsp.cached = parse_kv(head[4], "cached") != 0;
  rsp.degraded = parse_kv(head[5], "degraded") != 0;
  rsp.retry_after_ms = parse_kv(head[6], "retry_after_ms");
  rsp.queue_ms = parse_kv(head[7], "queue_ms");
  rsp.run_ms = parse_kv(head[8], "run_ms");

  for (;;) {
    if (!next_line(in, line, limits)) fail("stream ended inside an RSP frame");
    if (line == "END") break;
    const std::vector<std::string> tokens = split_ws(line);
    if (tokens.size() != 2 || tokens[0] != "BODY") {
      fail("bad section header '" + line + "'");
    }
    rsp.detail = read_section(in, parse_u64(tokens[1], "BODY"), limits, "BODY");
  }
  return rsp;
}

void write_response(std::ostream& out, const JobResponse& rsp) {
  out << "RSP " << rsp.id << ' ' << job_status_name(rsp.status)
      << " verdict=" << (rsp.verdict ? 1 : 0) << " cached=" << (rsp.cached ? 1 : 0)
      << " degraded=" << (rsp.degraded ? 1 : 0)
      << " retry_after_ms=" << rsp.retry_after_ms << " queue_ms=" << rsp.queue_ms
      << " run_ms=" << rsp.run_ms << '\n';
  write_section(out, "BODY", rsp.detail);
  out << "END\n";
}

}  // namespace rtg::svc
