#include "svc/admission.hpp"

#include <algorithm>
#include <cmath>

namespace rtg::svc {

void TokenBucket::refill(std::uint64_t now_ms) {
  if (now_ms <= last_ms_) return;
  const double dt = static_cast<double>(now_ms - last_ms_) / 1000.0;
  tokens_ = std::min(burst_, tokens_ + dt * rate_);
  last_ms_ = now_ms;
}

std::uint64_t TokenBucket::take(std::uint64_t now_ms) {
  refill(now_ms);
  tokens_ -= 1.0;
  if (tokens_ >= 0.0) return 0;
  if (rate_ <= 0.0) return 1000;  // no refill ever: flat hint
  const double wait_ms = std::ceil(-tokens_ / rate_ * 1000.0);
  return static_cast<std::uint64_t>(std::max(1.0, wait_ms));
}

void TokenBucket::refund() { tokens_ = std::min(burst_, tokens_ + 1.0); }

AdmissionVerdict AdmissionController::decide(const std::string& tenant,
                                             std::uint64_t now_ms,
                                             std::size_t pending) {
  AdmissionVerdict verdict;

  // Global backpressure first: quota tokens must not be burned on jobs
  // the queue cannot hold anyway.
  if (pending >= options_.max_pending) {
    verdict.decision = core::AdmissionDecision::kRejected;
    // Hint scales with how deep the queue is; a drained queue clears in
    // roughly one supervisor period.
    verdict.retry_after_ms = 50;
    return verdict;
  }

  std::lock_guard<std::mutex> lock(mutex_);
  auto it = buckets_.find(tenant);
  if (it == buckets_.end()) {
    it = buckets_
             .emplace(tenant,
                      TokenBucket(options_.tenant_rate, options_.tenant_burst))
             .first;
  }
  const std::uint64_t wait_ms = it->second.take(now_ms);
  if (wait_ms == 0) return verdict;  // admitted

  if (options_.policy == core::AdmissionPolicy::kDefer &&
      wait_ms <= options_.max_defer_ms) {
    verdict.decision = core::AdmissionDecision::kDeferred;
    verdict.eligible_ms = now_ms + wait_ms;
    return verdict;
  }
  it->second.refund();
  verdict.decision = core::AdmissionDecision::kRejected;
  verdict.retry_after_ms = wait_ms;
  return verdict;
}

}  // namespace rtg::svc
