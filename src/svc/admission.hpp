// admission.hpp — per-tenant quotas and global backpressure.
//
// The service front door reuses the adaptive executive's admission
// vocabulary (core/degradation's AdmissionPolicy / AdmissionDecision):
// a submission that exceeds its tenant's token-bucket rate is either
// *deferred* — accepted, but only eligible to run once the bucket
// refills, bounded by max_defer_ms — or *rejected* with an explicit
// retry_after hint, per policy. A full global queue always rejects:
// backpressure is pushed to the client as data, never as blocking, and
// never as a silent drop.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/degradation.hpp"

namespace rtg::svc {

/// Classic token bucket over a millisecond clock supplied by the
/// caller (the service passes steady-clock time; tests pass virtual
/// time for determinism).
class TokenBucket {
 public:
  TokenBucket(double rate_per_sec, double burst)
      : rate_(rate_per_sec), burst_(burst), tokens_(burst) {}

  /// Takes one token unconditionally — the balance may go negative —
  /// and returns the milliseconds until the balance is non-negative
  /// again (0 = admitted now). Borrowing is what paces a burst of
  /// deferred jobs out at the refill rate instead of releasing them
  /// all at one instant. Not thread-safe; the controller serializes.
  std::uint64_t take(std::uint64_t now_ms);

  /// Returns a token taken by `take` when the controller decides to
  /// reject instead of defer (a shed job must not consume quota).
  void refund();

 private:
  void refill(std::uint64_t now_ms);

  double rate_;
  double burst_;
  double tokens_;
  std::uint64_t last_ms_ = 0;
};

struct AdmissionVerdict {
  core::AdmissionDecision decision = core::AdmissionDecision::kAdmitted;
  /// kDeferred: the instant the job becomes runnable.
  std::uint64_t eligible_ms = 0;
  /// kRejected: suggested client backoff.
  std::uint64_t retry_after_ms = 0;
};

struct AdmissionOptions {
  /// Tokens added per second per tenant.
  double tenant_rate = 200.0;
  /// Bucket depth (burst allowance) per tenant.
  double tenant_burst = 32.0;
  /// Jobs in flight (queued + running) before the global queue sheds.
  std::size_t max_pending = 256;
  core::AdmissionPolicy policy = core::AdmissionPolicy::kDefer;
  /// Under kDefer: a wait beyond this is rejected instead of deferred.
  std::uint64_t max_defer_ms = 1000;
};

class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionOptions& options) : options_(options) {}

  /// Decides one submission. `pending` is the current global in-flight
  /// count (the caller's load gauge).
  AdmissionVerdict decide(const std::string& tenant, std::uint64_t now_ms,
                          std::size_t pending);

 private:
  AdmissionOptions options_;
  std::mutex mutex_;
  std::unordered_map<std::string, TokenBucket> buckets_;
};

}  // namespace rtg::svc
