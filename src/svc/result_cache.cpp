#include "svc/result_cache.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <utility>
#include <vector>

namespace rtg::svc {

namespace {

constexpr char kMagic[4] = {'R', 'T', 'V', 'C'};
constexpr std::uint32_t kVersion = 1;

void append_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}
void append_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

[[noreturn]] void fail(CacheErrorKind kind, const std::string& what) {
  throw CacheError(kind, what);
}

// Bounds-checked little-endian reads over the in-memory image.
struct Reader {
  std::string_view buf;
  std::size_t pos = 0;

  std::uint64_t read(std::size_t n) {
    if (buf.size() - pos < n) {
      fail(CacheErrorKind::kTruncated, "snapshot ends inside a field");
    }
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < n; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf[pos + i]))
           << (8 * i);
    }
    pos += n;
    return v;
  }
  std::string_view read_bytes(std::size_t n) {
    if (buf.size() - pos < n) {
      fail(CacheErrorKind::kTruncated, "snapshot ends inside a value");
    }
    std::string_view v = buf.substr(pos, n);
    pos += n;
    return v;
  }
};

}  // namespace

std::string_view cache_error_kind_name(CacheErrorKind kind) {
  switch (kind) {
    case CacheErrorKind::kIo: return "io";
    case CacheErrorKind::kBadMagic: return "bad-magic";
    case CacheErrorKind::kBadVersion: return "bad-version";
    case CacheErrorKind::kTruncated: return "truncated";
    case CacheErrorKind::kTooLarge: return "too-large";
    case CacheErrorKind::kChecksum: return "checksum";
    case CacheErrorKind::kTrailingBytes: return "trailing-bytes";
  }
  return "unknown";
}

std::optional<std::string> ResultCache::get(std::uint64_t key) {
  auto value = map_.get(key);
  if (value) {
    hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
  }
  return value;
}

void ResultCache::put(std::uint64_t key, std::string value) {
  map_.put(key, std::move(value));
}

std::string ResultCache::snapshot_bytes() const {
  // Collect and sort so the image depends only on contents, not on the
  // shard layout or recency order.
  std::vector<std::pair<std::uint64_t, std::string>> entries;
  map_.for_each([&entries](const std::uint64_t& key, const std::string& value) {
    entries.emplace_back(key, value);
  });
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  std::string out(kMagic, sizeof kMagic);
  append_u32(out, kVersion);
  append_u64(out, entries.size());
  for (const auto& [key, value] : entries) {
    append_u64(out, key);
    append_u32(out, static_cast<std::uint32_t>(value.size()));
    out += value;
  }
  Fnv1a sum;
  sum.bytes(out);
  append_u64(out, sum.state);
  return out;
}

void ResultCache::save_snapshot(const std::string& path) const {
  const std::string image = snapshot_bytes();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) fail(CacheErrorKind::kIo, "cannot open '" + tmp + "' for writing");
    out.write(image.data(), static_cast<std::streamsize>(image.size()));
    out.flush();
    if (!out) fail(CacheErrorKind::kIo, "short write to '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    fail(CacheErrorKind::kIo, "cannot rename '" + tmp + "' to '" + path + "'");
  }
}

void ResultCache::load_snapshot(const std::string& path,
                                const CacheReadLimits& limits) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail(CacheErrorKind::kIo, "cannot open '" + path + "'");
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  load_snapshot_bytes(bytes, limits);
}

void ResultCache::load_snapshot_bytes(std::string_view bytes,
                                      const CacheReadLimits& limits) {
  Reader r{bytes};
  if (bytes.size() < sizeof kMagic ||
      bytes.compare(0, sizeof kMagic, kMagic, sizeof kMagic) != 0) {
    fail(CacheErrorKind::kBadMagic, "not a cache snapshot");
  }
  r.pos = sizeof kMagic;
  const auto version = static_cast<std::uint32_t>(r.read(4));
  if (version != kVersion) {
    fail(CacheErrorKind::kBadVersion,
         "unsupported version " + std::to_string(version));
  }
  const std::uint64_t count = r.read(8);
  if (count > limits.max_entries) {
    fail(CacheErrorKind::kTooLarge,
         "declared " + std::to_string(count) + " entries, limit " +
             std::to_string(limits.max_entries));
  }

  // Parse fully — including the checksum — before touching the map, so
  // a corrupt snapshot cannot leave a half-merged cache behind.
  std::vector<std::pair<std::uint64_t, std::string>> entries;
  entries.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t key = r.read(8);
    const std::uint64_t len = r.read(4);
    if (len > limits.max_value_bytes) {
      fail(CacheErrorKind::kTooLarge,
           "entry of " + std::to_string(len) + " bytes, limit " +
               std::to_string(limits.max_value_bytes));
    }
    entries.emplace_back(key, std::string(r.read_bytes(static_cast<std::size_t>(len))));
  }
  const std::size_t payload_end = r.pos;
  const std::uint64_t declared_sum = r.read(8);
  Fnv1a sum;
  sum.bytes(bytes.substr(0, payload_end));
  if (sum.state != declared_sum) {
    fail(CacheErrorKind::kChecksum, "checksum mismatch");
  }
  if (r.pos != bytes.size()) {
    fail(CacheErrorKind::kTrailingBytes,
         std::to_string(bytes.size() - r.pos) + " bytes after the checksum");
  }

  for (auto& [key, value] : entries) {
    map_.put(key, std::move(value));
  }
}

}  // namespace rtg::svc
