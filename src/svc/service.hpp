// service.hpp — the multi-tenant batch verification server.
//
// VerifyService accepts verify / synthesize / monitor jobs and is
// robust by construction, in four layers:
//
//   1. Admission + backpressure (svc/admission): per-tenant token
//      buckets and a bounded global in-flight count. Overload sheds
//      load as explicit kRejected responses with a retry_after hint —
//      submit() never blocks and never silently drops.
//   2. Deadlines, cancellation, retry: every job may carry a wall-clock
//      deadline. Queued jobs past their deadline are expired by the
//      supervisor; running jobs are cooperatively cancelled through the
//      poll hooks threaded into core/latency, core/feasibility and
//      core/heuristic. Transient failures (chaos-injected here; any
//      retryable error in general) re-queue with the exponential
//      backoff policy shared with rt/recovery.
//   3. Worker watchdog + graceful degradation: jobs flow
//      submit -> staging deque -> dispatcher thread -> per-worker
//      SpscRing -> resident worker tasks on a util::ThreadPool. The
//      supervisor watches per-worker heartbeats *and* the progress
//      beacons the engines bump at every cancellation poll, so a slow
//      exact search is never mistaken for a wedged worker. A worker
//      with neither signal for stall_grace_ms is marked suspect: the
//      dispatcher routes around it, its queued ring jobs are reclaimed
//      back into staging, and its in-flight job is re-delivered to
//      another worker, bounded by max_redeliveries — an atomic done
//      flag guarantees exactly one response no matter how many
//      deliveries race (monitor ingestion is additionally idempotent
//      per job, so a racing duplicate run cannot double-count a trace).
//      Sustained queue depth degrades exact synthesis to the heuristic
//      (responses carry degraded=true); every mode shift is recorded in
//      the health snapshot.
//   4. Crash-safe result cache (svc/result_cache): deterministic
//      verify/synthesize results are memoized across tenants and — via
//      the checksummed snapshot — across restarts. A corrupt snapshot
//      starts the server cold instead of poisoning it.
//
// Every blocking wait in the service is bounded (wait_for, never
// wait), so no lost notification can deadlock the pipeline.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "rt/recovery.hpp"
#include "svc/admission.hpp"
#include "svc/chaos.hpp"
#include "svc/job.hpp"
#include "svc/result_cache.hpp"
#include "util/spsc_ring.hpp"
#include "util/thread_pool.hpp"

namespace rtg::svc {

struct ServiceOptions {
  /// Resident worker tasks (and util::ThreadPool threads).
  std::size_t workers = 2;
  /// Capacity of each worker's SpscRing feed.
  std::size_t ring_capacity = 16;
  /// Quotas and the global pending bound.
  AdmissionOptions admission;
  /// Backoff schedule for transient-failure retries (milliseconds in
  /// place of slots; same policy the recovery executive uses).
  rt::BackoffPolicy retry{10, 2.0, 2};
  /// Times a stuck worker's job may be handed to another worker.
  std::size_t max_redeliveries = 2;
  /// Heartbeat age after which a busy worker is presumed stuck.
  std::uint64_t stall_grace_ms = 400;
  std::uint64_t supervisor_period_ms = 10;
  /// Pending depth that enters degraded mode (0 = 3/4 of max_pending)
  /// and the depth that recovers from it (0 = 1/4 of max_pending).
  std::size_t degrade_pending = 0;
  std::size_t recover_pending = 0;
  /// State budget for exact synthesis jobs.
  std::size_t exact_state_budget = 200'000;
  /// Verifier threads per job (workers already run in parallel, so the
  /// default keeps each job serial).
  std::size_t verify_threads = 1;
  std::size_t cache_capacity = 4096;
  /// Snapshot file; empty = in-memory cache only. Loaded (warm start)
  /// at construction, saved at shutdown.
  std::string snapshot_path;
  CacheReadLimits snapshot_limits;
  ChaosPlan chaos;
};

/// A degradation-mode transition, timestamped on the service clock.
struct ModeShift {
  std::uint64_t at_ms = 0;
  int from = 0;
  int to = 0;
  std::size_t pending = 0;  ///< queue depth that motivated it
};

struct ServiceHealth {
  std::size_t pending = 0;
  int mode = 0;  ///< 0 = exact honored, 1 = degraded (heuristic only)
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t deferred = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;  ///< kOk responses
  std::uint64_t expired = 0;
  std::uint64_t invalid = 0;
  std::uint64_t failed = 0;
  std::uint64_t retries = 0;
  std::uint64_t redeliveries = 0;
  std::uint64_t stuck_worker_events = 0;
  std::uint64_t degraded_jobs = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::size_t cache_size = 0;
  bool snapshot_load_failed = false;  ///< corrupt snapshot; started cold
  bool snapshot_save_failed = false;
  std::vector<ModeShift> mode_shifts;
};

class VerifyService {
 public:
  explicit VerifyService(ServiceOptions options);
  ~VerifyService();
  VerifyService(const VerifyService&) = delete;
  VerifyService& operator=(const VerifyService&) = delete;

  /// Never blocks: a shed job resolves its future immediately with
  /// kRejected; everything else resolves when the job finishes.
  std::future<JobResponse> submit(JobRequest req);

  /// Blocks until no job is pending (queued or running).
  void drain();

  /// Stops accepting, drains, stops all threads, saves the snapshot.
  /// Idempotent; the destructor calls it.
  void shutdown();

  [[nodiscard]] ServiceHealth health() const;

  /// Milliseconds since construction (steady clock).
  [[nodiscard]] std::uint64_t now_ms() const;

  [[nodiscard]] ResultCache& cache() { return cache_; }

 private:
  struct Job {
    JobRequest req;
    std::promise<JobResponse> promise;
    std::atomic<bool> done{false};
    std::atomic<bool> cancel{false};
    std::uint64_t submit_ms = 0;
    std::uint64_t eligible_ms = 0;
    std::uint64_t deadline_at_ms = 0;  ///< 0 = none
    std::atomic<std::uint64_t> runs{0};       ///< deliveries started
    std::atomic<std::uint64_t> attempts{0};   ///< transient failures so far
    std::atomic<std::uint64_t> deliveries{0}; ///< stuck-worker re-queues
    /// kMonitor only: the trace has been folded into the tenant's
    /// stream. Claimed under the tenant mutex so a re-delivered or
    /// retried duplicate run never ingests a second time.
    std::atomic<bool> ingested{false};
    bool deferred = false;
  };
  using JobPtr = std::shared_ptr<Job>;

  struct WorkerState {
    explicit WorkerState(std::size_t cap) : ring(cap) {}
    util::SpscRing<JobPtr> ring;
    std::mutex mutex;
    std::condition_variable cv;
    std::atomic<std::uint64_t> heartbeat_ms{0};
    std::atomic<bool> busy{false};
    /// Engine-side liveness beacon, bumped at every cancellation poll
    /// of the job this worker is running. The supervisor samples it so
    /// a long-but-alive run is never declared stalled.
    std::atomic<std::uint64_t> progress{0};
    /// Supervisor-only beacon bookkeeping (single reader/writer).
    std::uint64_t seen_progress = 0;
    std::uint64_t progress_ms = 0;
    /// Set by the supervisor on a stale heartbeat; routes new work away
    /// and edge-triggers the re-delivery. Cleared by the worker itself.
    std::atomic<bool> suspect{false};
    /// Serializes ring consumption between the worker and the
    /// supervisor's reclaim of a suspect worker's queued jobs; the ring
    /// stays SPSC because at most one popper runs at a time.
    std::mutex pop_mutex;
    std::mutex current_mutex;
    JobPtr current;
  };

  struct TenantState;  // per-tenant StreamingMonitor (service.cpp)

  void dispatcher_loop();
  void supervisor_loop();
  void worker_loop(std::size_t id);
  void run_job(std::size_t id, const JobPtr& job);
  JobResponse execute(Job& job, bool degraded,
                      std::atomic<std::uint64_t>* progress);
  JobResponse execute_monitor(Job& job, std::atomic<std::uint64_t>* progress);
  void finish(const JobPtr& job, JobResponse rsp);
  void requeue(const JobPtr& job, std::uint64_t eligible_ms);

  ServiceOptions options_;
  AdmissionController admission_;
  ResultCache cache_;
  std::chrono::steady_clock::time_point epoch_;
  std::size_t degrade_threshold_ = 0;
  std::size_t recover_threshold_ = 0;

  mutable std::mutex staging_mutex_;
  std::condition_variable staging_cv_;
  std::deque<JobPtr> staging_;

  std::condition_variable drain_cv_;
  std::mutex drain_mutex_;

  std::atomic<std::size_t> pending_{0};
  std::atomic<bool> accepting_{true};
  std::atomic<bool> stopping_{false};
  std::atomic<int> mode_{0};

  std::vector<std::unique_ptr<WorkerState>> workers_;
  std::unique_ptr<util::ThreadPool> pool_;
  std::thread dispatcher_;
  std::thread supervisor_;

  std::mutex tenants_mutex_;
  std::unordered_map<std::string, std::unique_ptr<TenantState>> tenants_;

  mutable std::mutex health_mutex_;
  ServiceHealth health_;

  bool shut_down_ = false;
  std::mutex shutdown_mutex_;
};

}  // namespace rtg::svc
