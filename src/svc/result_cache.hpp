// result_cache.hpp — bounded memo of completed job results with a
// crash-safe on-disk snapshot.
//
// Verification and synthesis are deterministic functions of (kind,
// spec, schedule, engine), so their results are safe to memoize across
// jobs, tenants, and — via the snapshot — server restarts. The store is
// a util::StripedLruMap keyed by an FNV-1a digest of those inputs; the
// value is the serialized result payload.
//
// Snapshot format (version 1, all integers little-endian):
//
//   offset  size  field
//   0       4     magic "RTVC"
//   4       4     u32 format version (= 1)
//   8       8     u64 entry count N
//   16      ...   N entries: u64 key, u32 length, `length` value bytes.
//                 Entries are sorted by key, so the image is a pure
//                 function of the cache *contents* — two caches holding
//                 the same entries snapshot bit-identically regardless
//                 of insertion or eviction history.
//   ...     8     u64 FNV-1a checksum of every preceding byte
//
// The reader is strict in the .rtt style: bad magic, unsupported
// version, truncated entries, oversized declarations (checked against
// CacheReadLimits *before* allocating), trailing bytes, and checksum
// mismatches all throw CacheError with a machine-readable kind — a
// half-written or bit-flipped snapshot can only yield an error, never
// silently-wrong cache hits. Saving writes a temp file in the target
// directory and renames it over the destination, so a crash mid-save
// leaves the previous snapshot intact.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "util/striped_map.hpp"

namespace rtg::svc {

enum class CacheErrorKind : std::uint8_t {
  kIo,             ///< cannot open / write / rename
  kBadMagic,       ///< not a cache snapshot
  kBadVersion,     ///< unsupported format version
  kTruncated,      ///< header, entry, or checksum ends early
  kTooLarge,       ///< declared counts exceed CacheReadLimits
  kChecksum,       ///< trailer does not match the bytes read
  kTrailingBytes,  ///< bytes after the checksum trailer
};

[[nodiscard]] std::string_view cache_error_kind_name(CacheErrorKind kind);

class CacheError : public std::runtime_error {
 public:
  CacheError(CacheErrorKind kind, const std::string& what)
      : std::runtime_error("cache: " + what), kind_(kind) {}
  [[nodiscard]] CacheErrorKind kind() const { return kind_; }

 private:
  CacheErrorKind kind_;
};

struct CacheReadLimits {
  std::uint64_t max_entries = 1u << 20;
  std::uint64_t max_value_bytes = 1u << 20;
};

/// Incremental FNV-1a digest used both for cache keys and the snapshot
/// checksum.
struct Fnv1a {
  std::uint64_t state = 14695981039346656037ull;

  void bytes(std::string_view data) {
    for (const char c : data) {
      state ^= static_cast<unsigned char>(c);
      state *= 1099511628211ull;
    }
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      state ^= static_cast<unsigned char>(v >> (8 * i));
      state *= 1099511628211ull;
    }
  }
};

class ResultCache {
 public:
  explicit ResultCache(std::size_t capacity, std::size_t stripes = 16)
      : map_(capacity, stripes) {}

  [[nodiscard]] std::optional<std::string> get(std::uint64_t key);
  void put(std::uint64_t key, std::string value);

  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] std::uint64_t hits() const { return hits_.load(); }
  [[nodiscard]] std::uint64_t misses() const { return misses_.load(); }
  [[nodiscard]] std::uint64_t evictions() const { return map_.evictions(); }

  /// The snapshot image of the current contents (see format above).
  [[nodiscard]] std::string snapshot_bytes() const;

  /// Atomic save: writes `path` + ".tmp" then renames. Throws
  /// CacheError(kIo) on failure.
  void save_snapshot(const std::string& path) const;

  /// Strict load; entries are merged into the cache (existing keys are
  /// overwritten). Throws CacheError on any corruption; the cache is
  /// left unmodified in that case.
  void load_snapshot(const std::string& path, const CacheReadLimits& limits = {});

  /// Parses a snapshot image held in memory (the file loader and the
  /// corruption-corpus tests share this path).
  void load_snapshot_bytes(std::string_view bytes,
                           const CacheReadLimits& limits = {});

 private:
  util::StripedLruMap<std::uint64_t, std::string> map_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace rtg::svc
