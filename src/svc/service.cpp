#include "svc/service.hpp"

#include <algorithm>
#include <filesystem>
#include <span>
#include <utility>

#include "core/feasibility.hpp"
#include "core/heuristic.hpp"
#include "core/latency.hpp"
#include "core/pipeline.hpp"
#include "core/schedule_io.hpp"
#include "map/deploy.hpp"
#include "map/fault_tolerance.hpp"
#include "monitor/streaming_monitor.hpp"
#include "monitor/trace_io.hpp"
#include "spec/compile.hpp"

namespace rtg::svc {

namespace {

// Serialized cache value: one status digit, one verdict digit, one
// degraded digit, then the detail bytes.
std::string encode_cached(const JobResponse& rsp) {
  std::string out;
  out.push_back(static_cast<char>('0' + static_cast<int>(rsp.status)));
  out.push_back(rsp.verdict ? '1' : '0');
  out.push_back(rsp.degraded ? '1' : '0');
  out += rsp.detail;
  return out;
}

bool decode_cached(const std::string& bytes, JobResponse& rsp) {
  if (bytes.size() < 3) return false;
  const int status = bytes[0] - '0';
  if (status < 0 || status > static_cast<int>(JobStatus::kFailed)) return false;
  rsp.status = static_cast<JobStatus>(status);
  rsp.verdict = bytes[1] == '1';
  rsp.degraded = bytes[2] == '1';
  rsp.detail = bytes.substr(3);
  return true;
}

std::uint64_t cache_key(const JobRequest& req, bool effective_exact) {
  Fnv1a h;
  h.u64(static_cast<std::uint64_t>(req.kind));
  h.u64(effective_exact ? 1 : 0);
  h.bytes(req.spec);
  h.u64(0x1f);  // domain separator between sections
  h.bytes(req.schedule);
  if (req.kind == JobKind::kMap) {
    h.u64(req.processors);
    h.bytes(req.mapper);
    h.u64(req.tolerate);
  }
  return h.state;
}

}  // namespace

// Per-tenant monitor stream: one StreamingMonitor pinned to the model
// of the first trace the tenant sent; later traces must fingerprint-
// match or they are rejected as kInvalid (verdicts against the wrong
// constraint set would be meaningless). The per-tenant mutex serializes
// ingestion so interleaved monitor jobs cannot tear the stream.
struct VerifyService::TenantState {
  std::mutex mutex;
  std::uint64_t fingerprint = 0;
  std::unique_ptr<core::GraphModel> model;
  std::unique_ptr<monitor::StreamingMonitor> mon;
  std::uint64_t slots_ingested = 0;
};

VerifyService::VerifyService(ServiceOptions options)
    : options_(std::move(options)),
      admission_(options_.admission),
      cache_(options_.cache_capacity),
      epoch_(std::chrono::steady_clock::now()) {
  if (options_.workers == 0) options_.workers = 1;
  degrade_threshold_ = options_.degrade_pending != 0
                           ? options_.degrade_pending
                           : std::max<std::size_t>(1, options_.admission.max_pending * 3 / 4);
  recover_threshold_ = options_.recover_pending != 0
                           ? options_.recover_pending
                           : std::max<std::size_t>(1, options_.admission.max_pending / 4);

  if (!options_.snapshot_path.empty() &&
      std::filesystem::exists(options_.snapshot_path)) {
    try {
      cache_.load_snapshot(options_.snapshot_path, options_.snapshot_limits);
    } catch (const CacheError&) {
      // A corrupt snapshot must not kill the server: start cold.
      std::lock_guard<std::mutex> lock(health_mutex_);
      health_.snapshot_load_failed = true;
    }
  }

  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.push_back(std::make_unique<WorkerState>(options_.ring_capacity));
  }
  pool_ = std::make_unique<util::ThreadPool>(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    pool_->submit([this, i] { worker_loop(i); });
  }
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
  supervisor_ = std::thread([this] { supervisor_loop(); });
}

VerifyService::~VerifyService() { shutdown(); }

std::uint64_t VerifyService::now_ms() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

std::future<JobResponse> VerifyService::submit(JobRequest req) {
  const std::uint64_t now = now_ms();
  {
    std::lock_guard<std::mutex> lock(health_mutex_);
    ++health_.submitted;
  }

  auto job = std::make_shared<Job>();
  job->req = std::move(req);
  job->submit_ms = now;
  std::future<JobResponse> future = job->promise.get_future();

  const auto reject = [&](std::uint64_t retry_after_ms) {
    JobResponse rsp;
    rsp.id = job->req.id;
    rsp.status = JobStatus::kRejected;
    rsp.retry_after_ms = retry_after_ms;
    job->done.store(true);
    job->promise.set_value(std::move(rsp));
    std::lock_guard<std::mutex> lock(health_mutex_);
    ++health_.rejected;
  };

  if (!accepting_.load()) {
    reject(1000);
    return future;
  }

  const AdmissionVerdict verdict =
      admission_.decide(job->req.tenant, now, pending_.load());
  if (verdict.decision == core::AdmissionDecision::kRejected) {
    reject(verdict.retry_after_ms);
    return future;
  }

  job->eligible_ms =
      verdict.decision == core::AdmissionDecision::kDeferred ? verdict.eligible_ms : now;
  job->deferred = verdict.decision == core::AdmissionDecision::kDeferred;
  if (job->req.deadline_ms != 0) {
    job->deadline_at_ms = now + job->req.deadline_ms;
  }
  bool staged = false;
  {
    std::lock_guard<std::mutex> lock(staging_mutex_);
    // Re-checked under the staging lock: shutdown() flips accepting_
    // and then drains, and drain's idle probe takes this same mutex, so
    // a job staged here is guaranteed visible to the drain — the
    // submit/shutdown race can no longer strand a future.
    if (accepting_.load()) {
      pending_.fetch_add(1);
      staging_.push_back(job);
      staged = true;
    }
  }
  if (!staged) {
    reject(1000);
    return future;
  }
  {
    std::lock_guard<std::mutex> lock(health_mutex_);
    if (job->deferred) {
      ++health_.deferred;
    } else {
      ++health_.admitted;
    }
  }
  staging_cv_.notify_one();
  return future;
}

void VerifyService::requeue(const JobPtr& job, std::uint64_t eligible_ms) {
  {
    std::lock_guard<std::mutex> lock(staging_mutex_);
    // eligible_ms is only ever written or read under staging_mutex_
    // once a job can sit in staging_, so a chaos-retry requeue racing a
    // supervisor re-delivery of the same job cannot tear the field.
    job->eligible_ms = eligible_ms;
    staging_.push_back(job);
  }
  staging_cv_.notify_one();
}

void VerifyService::finish(const JobPtr& job, JobResponse rsp) {
  // First completion wins: a re-delivered job may finish on two workers.
  bool expected = false;
  if (!job->done.compare_exchange_strong(expected, true)) return;
  rsp.id = job->req.id;
  {
    std::lock_guard<std::mutex> lock(health_mutex_);
    switch (rsp.status) {
      case JobStatus::kOk: ++health_.completed; break;
      case JobStatus::kExpired: ++health_.expired; break;
      case JobStatus::kInvalid: ++health_.invalid; break;
      case JobStatus::kFailed: ++health_.failed; break;
      case JobStatus::kRejected: ++health_.rejected; break;
    }
    if (rsp.degraded) ++health_.degraded_jobs;
  }
  job->promise.set_value(std::move(rsp));
  pending_.fetch_sub(1);
  drain_cv_.notify_all();
}

void VerifyService::dispatcher_loop() {
  std::size_t next_worker = 0;
  while (!stopping_.load()) {
    JobPtr job;
    {
      std::unique_lock<std::mutex> lock(staging_mutex_);
      staging_cv_.wait_for(lock, std::chrono::milliseconds(2), [this] {
        return stopping_.load() || !staging_.empty();
      });
      if (stopping_.load()) return;
      const std::uint64_t now = now_ms();
      for (auto it = staging_.begin(); it != staging_.end(); ++it) {
        if ((*it)->done.load()) {
          job = *it;  // already answered (expired in queue); just drop
          staging_.erase(it);
          job.reset();
          break;
        }
        if ((*it)->eligible_ms <= now) {
          job = *it;
          staging_.erase(it);
          break;
        }
      }
    }
    if (!job) continue;

    // Hand to the first non-suspect worker with ring space, round
    // robin. With every ring full the job goes back to staging — the
    // global pending bound was already enforced at admission.
    bool placed = false;
    for (std::size_t k = 0; k < workers_.size(); ++k) {
      const std::size_t w = (next_worker + k) % workers_.size();
      WorkerState& ws = *workers_[w];
      if (ws.suspect.load() && workers_.size() > 1) continue;
      if (ws.ring.try_push(job)) {
        next_worker = w + 1;
        ws.cv.notify_one();
        placed = true;
        break;
      }
    }
    if (!placed) {
      {
        std::lock_guard<std::mutex> lock(staging_mutex_);
        staging_.push_front(std::move(job));
      }
      // All rings full: back off for a moment instead of spinning.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
}

void VerifyService::worker_loop(std::size_t id) {
  WorkerState& ws = *workers_[id];
  JobPtr slot[1];
  for (;;) {
    ws.heartbeat_ms.store(now_ms());
    std::size_t n;
    {
      // The supervisor may reclaim a suspect worker's queued jobs; the
      // pop mutex keeps the ring single-consumer at any instant.
      std::lock_guard<std::mutex> lock(ws.pop_mutex);
      n = ws.ring.pop_batch(std::span<JobPtr>(slot, 1));
    }
    if (n == 0) {
      if (stopping_.load()) return;
      std::unique_lock<std::mutex> lock(ws.mutex);
      ws.cv.wait_for(lock, std::chrono::milliseconds(1));
      continue;
    }
    JobPtr job = std::move(slot[0]);
    slot[0].reset();
    if (job->done.load()) continue;  // duplicate delivery, already answered

    ws.busy.store(true);
    {
      std::lock_guard<std::mutex> lock(ws.current_mutex);
      ws.current = job;
    }
    run_job(id, job);
    {
      std::lock_guard<std::mutex> lock(ws.current_mutex);
      ws.current.reset();
    }
    ws.busy.store(false);
    ws.suspect.store(false);  // a finished job proves the worker alive
    ws.heartbeat_ms.store(now_ms());
  }
}

void VerifyService::run_job(std::size_t id, const JobPtr& job) {
  WorkerState& ws = *workers_[id];
  const std::uint64_t run_index = job->runs.fetch_add(1);
  const std::uint64_t started = now_ms();
  ws.heartbeat_ms.store(started);

  // Injected stall: sleep without heartbeating, exactly what a worker
  // wedged in a long syscall looks like to the supervisor.
  if (chaos_should_stall(options_.chaos, job->req.id, run_index)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(options_.chaos.stall_ms));
    if (job->done.load()) return;  // re-delivered and answered while stalled
  }

  const std::uint64_t now = now_ms();
  if (job->deadline_at_ms != 0 && now >= job->deadline_at_ms) {
    JobResponse rsp;
    rsp.status = JobStatus::kExpired;
    rsp.detail = "deadline passed before execution";
    rsp.queue_ms = now - job->submit_ms;
    finish(job, rsp);
    return;
  }

  const bool degraded_mode = mode_.load() != 0;
  const bool effective_exact = job->req.exact && !degraded_mode;
  const bool cacheable = job->req.kind != JobKind::kMonitor;
  const std::uint64_t key = cacheable ? cache_key(job->req, effective_exact) : 0;

  if (cacheable) {
    if (const auto hit = cache_.get(key)) {
      JobResponse rsp;
      if (decode_cached(*hit, rsp)) {
        rsp.cached = true;
        rsp.queue_ms = now - job->submit_ms;
        rsp.run_ms = 0;
        finish(job, rsp);
        return;
      }
    }
  }

  JobResponse rsp =
      job->req.kind == JobKind::kMonitor
          ? execute_monitor(*job, &ws.progress)
          : execute(*job, degraded_mode && job->req.exact, &ws.progress);
  const std::uint64_t done_at = now_ms();
  rsp.queue_ms = started - job->submit_ms;
  rsp.run_ms = done_at - started;

  // Cancellation lands here as kExpired when the deadline motivated it.
  if (rsp.status == JobStatus::kExpired || job->cancel.load()) {
    rsp.status = JobStatus::kExpired;
    finish(job, rsp);
    return;
  }

  // Injected transient failure after a completed run: retry with
  // backoff until the policy is exhausted.
  if (chaos_should_fail(options_.chaos, job->req.id, run_index)) {
    const std::uint64_t attempts = job->attempts.fetch_add(1) + 1;
    if (!options_.retry.exhausted(attempts)) {
      {
        std::lock_guard<std::mutex> lock(health_mutex_);
        ++health_.retries;
      }
      requeue(job, done_at + static_cast<std::uint64_t>(
                                 options_.retry.delay_after(attempts)));
      return;
    }
    JobResponse failed;
    failed.status = JobStatus::kFailed;
    failed.detail = "transient failure; retries exhausted";
    failed.queue_ms = rsp.queue_ms;
    failed.run_ms = rsp.run_ms;
    finish(job, failed);
    return;
  }

  if (cacheable && (rsp.status == JobStatus::kOk || rsp.status == JobStatus::kInvalid)) {
    cache_.put(key, encode_cached(rsp));
  }
  finish(job, rsp);
}

JobResponse VerifyService::execute(Job& job, bool degraded,
                                   std::atomic<std::uint64_t>* progress) {
  JobResponse rsp;
  rsp.degraded = degraded;

  const spec::CompileResult compiled = spec::compile_text(job.req.spec);
  if (!compiled.ok()) {
    rsp.status = JobStatus::kInvalid;
    rsp.detail = compiled.errors.empty() ? "spec error"
                                         : "spec: " + compiled.errors.front().message;
    return rsp;
  }
  const core::GraphModel& model = *compiled.model;

  if (job.req.kind == JobKind::kVerify) {
    // Schedules are expressed against the software-pipelined model —
    // the same convention as spec_compiler --save/--verify, so a saved
    // schedule can be shipped to the service unmodified.
    const core::GraphModel pipelined = core::pipeline_model(model).model;
    const core::ScheduleParseResult parsed =
        core::schedule_from_text(job.req.schedule, pipelined.comm());
    if (!parsed.ok()) {
      rsp.status = JobStatus::kInvalid;
      rsp.detail = parsed.errors.empty() ? "schedule error"
                                         : "schedule: " + parsed.errors.front().message;
      return rsp;
    }
    const core::FeasibilityReport report = core::verify_schedule(
        *parsed.schedule, pipelined,
        core::VerifyOptions{.n_threads = options_.verify_threads,
                            .cancel = &job.cancel,
                            .progress = progress});
    if (report.cancelled) {
      rsp.status = JobStatus::kExpired;
      rsp.detail = "cancelled mid-verification";
      return rsp;
    }
    rsp.status = JobStatus::kOk;
    rsp.verdict = report.feasible;
    std::size_t violated = 0;
    for (const core::ConstraintVerdict& v : report.verdicts) {
      if (!v.satisfied) ++violated;
    }
    rsp.detail = report.feasible
                     ? "feasible"
                     : "infeasible: " + std::to_string(violated) + " of " +
                           std::to_string(report.verdicts.size()) +
                           " constraints violated";
    return rsp;
  }

  if (job.req.kind == JobKind::kMap) {
    // Mapped deployment: the spec's declared platform wins; otherwise
    // the request's processor count buys a shared bus.
    map::Platform platform;
    if (compiled.platform.has_value()) {
      platform = *compiled.platform;
    } else if (job.req.processors > 0) {
      platform = map::Platform::bus(static_cast<std::size_t>(job.req.processors));
    } else {
      rsp.status = JobStatus::kInvalid;
      rsp.detail = "map job needs processors > 0 or a spec-declared platform";
      return rsp;
    }
    map::DeployOptions opts;
    opts.mapper = job.req.mapper.empty() ? "greedy" : job.req.mapper;
    opts.local.n_threads = 1;
    opts.local.cancel = &job.cancel;
    opts.local.progress = progress;
    opts.seam_threads = options_.verify_threads;
    if (job.req.tolerate > 0) {
      // k-tolerant deployment (ISSUE 10): the verdict also demands an
      // admissible MigrationTable entry for every failure set |F| <= k.
      map::TolerantOptions topts;
      topts.k = static_cast<std::size_t>(job.req.tolerate);
      topts.deploy = opts;
      const map::TolerantDeployment td = map::deploy_tolerant(model, platform, topts);
      if (td.cancelled) {
        rsp.status = JobStatus::kExpired;
        rsp.detail = "cancelled mid-deployment";
        return rsp;
      }
      if (!td.success && td.failure_reason.rfind("unknown mapper", 0) == 0) {
        rsp.status = JobStatus::kInvalid;
        rsp.detail = td.failure_reason;
        return rsp;
      }
      rsp.status = JobStatus::kOk;
      rsp.verdict = td.success && td.tolerant;
      if (td.success) {
        rsp.detail = "deployed on " + std::to_string(platform.processors()) +
                     " processors via " + opts.mapper + ", k=" +
                     std::to_string(td.k) + ": " + std::to_string(td.table.size()) +
                     " of " + std::to_string(td.scenarios) +
                     " failure scenarios covered" +
                     (td.tolerant ? "" : " (" + std::to_string(td.uncovered.size()) +
                                             " uncovered)");
      } else {
        rsp.detail = td.failure_reason;
      }
      return rsp;
    }
    const map::Deployment deployment = map::deploy(model, platform, opts);
    if (deployment.cancelled) {
      rsp.status = JobStatus::kExpired;
      rsp.detail = "cancelled mid-deployment";
      return rsp;
    }
    if (!deployment.success && deployment.failure_reason.rfind("unknown mapper", 0) == 0) {
      rsp.status = JobStatus::kInvalid;
      rsp.detail = deployment.failure_reason;
      return rsp;
    }
    rsp.status = JobStatus::kOk;
    rsp.verdict = deployment.success;
    if (deployment.success) {
      const auto margin = deployment.min_margin(deployment.scheduled_model);
      rsp.detail = "deployed on " + std::to_string(platform.processors()) +
                   " processors via " + opts.mapper + ": " +
                   std::to_string(deployment.messages.size()) + " messages, " +
                   std::to_string(deployment.comm.total_slots()) +
                   " link slots, min margin " +
                   (margin ? std::to_string(*margin) : std::string("n/a"));
    } else {
      rsp.detail = deployment.failure_reason;
    }
    return rsp;
  }

  // kSynthesize.
  const bool run_exact = job.req.exact && !degraded;
  if (run_exact) {
    core::ExactOptions opts;
    opts.state_budget = options_.exact_state_budget;
    opts.n_threads = 1;
    opts.cancel = &job.cancel;
    opts.progress = progress;
    const core::ExactResult result = core::exact_feasible(model, opts);
    if (result.cancelled && result.status == core::FeasibilityStatus::kUnknown) {
      rsp.status = JobStatus::kExpired;
      rsp.detail = "cancelled mid-search";
      return rsp;
    }
    switch (result.status) {
      case core::FeasibilityStatus::kFeasible:
        rsp.status = JobStatus::kOk;
        rsp.verdict = true;
        rsp.detail = core::schedule_to_text(*result.schedule, model.comm());
        return rsp;
      case core::FeasibilityStatus::kInfeasible:
        rsp.status = JobStatus::kOk;
        rsp.verdict = false;
        rsp.detail = "infeasible";
        return rsp;
      case core::FeasibilityStatus::kUnknown:
        rsp.status = JobStatus::kFailed;
        rsp.detail = "state budget exhausted";
        return rsp;
    }
    rsp.status = JobStatus::kFailed;
    return rsp;
  }

  core::HeuristicOptions opts;
  opts.n_threads = options_.verify_threads;
  opts.cancel = &job.cancel;
  opts.progress = progress;
  const core::HeuristicResult result = core::latency_schedule(model, opts);
  if (!result.success && result.failure_reason == "cancelled") {
    rsp.status = JobStatus::kExpired;
    rsp.detail = "cancelled mid-synthesis";
    return rsp;
  }
  rsp.status = JobStatus::kOk;
  rsp.verdict = result.success;
  rsp.detail = result.success
                   ? core::schedule_to_text(*result.schedule,
                                            result.scheduled_model.comm())
                   : result.failure_reason;
  return rsp;
}

JobResponse VerifyService::execute_monitor(
    Job& job, std::atomic<std::uint64_t>* progress) {
  JobResponse rsp;

  const spec::CompileResult compiled = spec::compile_text(job.req.spec);
  if (!compiled.ok()) {
    rsp.status = JobStatus::kInvalid;
    rsp.detail = compiled.errors.empty() ? "spec error"
                                         : "spec: " + compiled.errors.front().message;
    return rsp;
  }

  monitor::RttFile file;
  try {
    file = monitor::read_trace_buffer(job.req.trace);
  } catch (const monitor::RttError& e) {
    rsp.status = JobStatus::kInvalid;
    rsp.detail = e.what();
    return rsp;
  }

  // Traces are captured from the synthesized (software-pipelined)
  // schedule, so the fingerprint binds to the pipelined model — same
  // convention as spec_compiler --emit-trace and trace_replay.
  const core::GraphModel pipelined = core::pipeline_model(*compiled.model).model;
  const std::uint64_t fp = monitor::model_fingerprint(pipelined);
  if (file.fingerprint != fp) {
    rsp.status = JobStatus::kInvalid;
    rsp.detail = "trace fingerprint does not match the spec's model";
    return rsp;
  }

  TenantState* tenant = nullptr;
  {
    std::lock_guard<std::mutex> lock(tenants_mutex_);
    auto& slot = tenants_[job.req.tenant];
    if (!slot) slot = std::make_unique<TenantState>();
    tenant = slot.get();
  }
  std::lock_guard<std::mutex> lock(tenant->mutex);
  if (tenant->mon == nullptr || tenant->fingerprint != fp) {
    // First stream for this tenant (or a model change): start fresh.
    tenant->fingerprint = fp;
    tenant->model = std::make_unique<core::GraphModel>(pipelined);
    tenant->mon = std::make_unique<monitor::StreamingMonitor>(*tenant->model);
    tenant->slots_ingested = 0;
  }
  // Ingest at most once per job: a re-delivered or chaos-retried run of
  // the same job must not fold the trace into the shared stream twice.
  // The claim happens under the tenant mutex, so a losing duplicate run
  // always reports the post-ingestion stream state.
  if (!job.ingested.exchange(true)) {
    std::uint64_t tick = 0;
    for (const sim::Slot s : file.trace.slots()) {
      tenant->mon->on_slot(s);
      if (progress != nullptr && (++tick & 1023) == 0) {
        progress->fetch_add(1, std::memory_order_relaxed);
      }
    }
    tenant->slots_ingested += file.trace.size();
  }

  const monitor::MonitorReport report = tenant->mon->report();
  rsp.status = JobStatus::kOk;
  rsp.verdict = report.ok();
  rsp.detail = "violations=" + std::to_string(report.violations.size()) +
               " slots=" + std::to_string(tenant->slots_ingested);
  return rsp;
}

void VerifyService::supervisor_loop() {
  while (!stopping_.load()) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.supervisor_period_ms));
    if (stopping_.load()) return;
    const std::uint64_t now = now_ms();

    // Expire queued jobs whose deadline has passed.
    std::vector<JobPtr> expired;
    {
      std::lock_guard<std::mutex> lock(staging_mutex_);
      for (auto it = staging_.begin(); it != staging_.end();) {
        if ((*it)->done.load()) {
          it = staging_.erase(it);
          continue;
        }
        if ((*it)->deadline_at_ms != 0 && now >= (*it)->deadline_at_ms) {
          expired.push_back(*it);
          it = staging_.erase(it);
          continue;
        }
        ++it;
      }
    }
    for (const JobPtr& job : expired) {
      JobResponse rsp;
      rsp.status = JobStatus::kExpired;
      rsp.detail = "deadline passed in queue";
      rsp.queue_ms = now - job->submit_ms;
      finish(job, rsp);
    }

    // Stuck-worker detection. A worker is stuck only when *neither* its
    // heartbeat nor its engine progress beacon has moved for
    // stall_grace_ms — a slow exact search that keeps polling its
    // cancel hook is alive, not wedged, so long jobs are never turned
    // into spurious failures. Edge-triggered on suspect: the job is
    // re-delivered once per incident, and the done flag keeps the
    // response unique if the stalled run eventually completes too.
    for (const auto& ws : workers_) {
      const std::uint64_t beacon = ws->progress.load();
      if (beacon != ws->seen_progress) {
        ws->seen_progress = beacon;
        ws->progress_ms = now;
      }
      if (!ws->busy.load()) continue;
      const std::uint64_t alive_ms =
          std::max(ws->heartbeat_ms.load(), ws->progress_ms);
      const std::uint64_t age = now > alive_ms ? now - alive_ms : 0;
      if (age < options_.stall_grace_ms) continue;
      bool expected = false;
      if (!ws->suspect.compare_exchange_strong(expected, true)) continue;
      {
        std::lock_guard<std::mutex> lock(health_mutex_);
        ++health_.stuck_worker_events;
      }
      // Reclaim the jobs queued in the wedged worker's ring: it is the
      // only consumer, so without this they would be invisible until it
      // recovers (or forever), stranding their futures. The pop mutex
      // makes the steal safe against a concurrently recovering worker.
      std::vector<JobPtr> reclaimed;
      {
        std::lock_guard<std::mutex> lock(ws->pop_mutex);
        JobPtr slot[1];
        while (ws->ring.pop_batch(std::span<JobPtr>(slot, 1)) == 1) {
          if (!slot[0]->done.load()) reclaimed.push_back(std::move(slot[0]));
          slot[0].reset();
        }
      }
      for (const JobPtr& queued : reclaimed) requeue(queued, now);
      JobPtr job;
      {
        std::lock_guard<std::mutex> lock(ws->current_mutex);
        job = ws->current;
      }
      if (!job || job->done.load()) continue;
      // Hand the job to a healthy worker (bounded). The wedged run is
      // deliberately NOT cancelled — job->cancel is shared with the
      // fresh delivery; verify/synthesize verdicts are deterministic
      // and monitor ingestion is idempotent per job (job->ingested), so
      // whichever run finishes first answers and the loser is discarded
      // by `done` without corrupting tenant state.
      if (job->deliveries.fetch_add(1) < options_.max_redeliveries) {
        {
          std::lock_guard<std::mutex> lock(health_mutex_);
          ++health_.redeliveries;
        }
        requeue(job, now);
      } else {
        JobResponse rsp;
        rsp.status = JobStatus::kFailed;
        rsp.detail = "re-delivery budget exhausted (worker stalled)";
        finish(job, rsp);
      }
    }

    // Cancel running jobs past their deadline.
    for (const auto& ws : workers_) {
      JobPtr job;
      {
        std::lock_guard<std::mutex> lock(ws->current_mutex);
        job = ws->current;
      }
      if (job && !job->done.load() && job->deadline_at_ms != 0 &&
          now >= job->deadline_at_ms) {
        job->cancel.store(true);
      }
    }

    // Overload degradation ladder, hysteretic: enter degraded mode at
    // degrade_threshold_ pending, leave at recover_threshold_.
    const std::size_t depth = pending_.load();
    const int mode = mode_.load();
    int next = mode;
    if (mode == 0 && depth >= degrade_threshold_) next = 1;
    if (mode == 1 && depth <= recover_threshold_) next = 0;
    if (next != mode) {
      mode_.store(next);
      std::lock_guard<std::mutex> lock(health_mutex_);
      health_.mode_shifts.push_back(ModeShift{now, mode, next, depth});
    }

    drain_cv_.notify_all();
  }
}

void VerifyService::drain() {
  // Bounded waits throughout: a missed notification costs at most one
  // poll period, never a deadlock.
  std::unique_lock<std::mutex> lock(drain_mutex_);
  for (;;) {
    const bool idle = [this] {
      if (pending_.load() != 0) return false;
      std::lock_guard<std::mutex> staging_lock(staging_mutex_);
      return staging_.empty();
    }();
    if (idle) return;
    drain_cv_.wait_for(lock, std::chrono::milliseconds(20));
  }
}

void VerifyService::shutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  accepting_.store(false);
  drain();
  stopping_.store(true);
  staging_cv_.notify_all();
  for (const auto& ws : workers_) ws->cv.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  if (supervisor_.joinable()) supervisor_.join();
  pool_.reset();  // waits for the resident worker tasks to return

  // Belt and braces: the accepting_ re-check under staging_mutex_ in
  // submit() means nothing should remain staged past drain(), but any
  // leftover must still be answered, never stranded.
  std::deque<JobPtr> leftovers;
  {
    std::lock_guard<std::mutex> lock(staging_mutex_);
    leftovers.swap(staging_);
  }
  for (const JobPtr& job : leftovers) {
    if (job->done.load()) continue;
    JobResponse rsp;
    rsp.status = JobStatus::kRejected;
    rsp.retry_after_ms = 1000;
    rsp.detail = "service shutting down";
    finish(job, rsp);
  }

  if (!options_.snapshot_path.empty()) {
    try {
      cache_.save_snapshot(options_.snapshot_path);
    } catch (const CacheError&) {
      std::lock_guard<std::mutex> lock(health_mutex_);
      health_.snapshot_save_failed = true;
    }
  }
}

ServiceHealth VerifyService::health() const {
  std::lock_guard<std::mutex> lock(health_mutex_);
  ServiceHealth snapshot = health_;
  snapshot.pending = pending_.load();
  snapshot.mode = mode_.load();
  snapshot.cache_hits = cache_.hits();
  snapshot.cache_misses = cache_.misses();
  snapshot.cache_evictions = cache_.evictions();
  snapshot.cache_size = cache_.size();
  return snapshot;
}

}  // namespace rtg::svc
