// job.hpp — the unit of work of the verification service.
//
// A job carries everything a worker needs, self-contained: the spec
// text (compiled per job), plus the kind-specific payload — a schedule
// to verify, nothing extra for synthesis, or raw .rtt bytes to ingest
// into the tenant's streaming monitor. Responses are explicit about
// *why* a job did not complete: a shed job is kRejected with a
// retry_after hint (never silently dropped), a deadline overrun is
// kExpired, a malformed request is kInvalid, and an engine failure
// (budget exhausted, synthesis impossible, transient fault retries
// exhausted) is kFailed.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace rtg::svc {

enum class JobKind : std::uint8_t {
  kVerify,      ///< verify_schedule(spec, schedule)
  kSynthesize,  ///< latency_schedule / exact_feasible over the spec
  kMonitor,     ///< ingest .rtt bytes into the tenant's StreamingMonitor
  kMap,         ///< map::deploy: mapped synthesis + sharded verification
};

enum class JobStatus : std::uint8_t {
  kOk,        ///< engine ran to completion; see verdict/body
  kRejected,  ///< shed by admission control; retry_after_ms is the hint
  kExpired,   ///< deadline passed before the job could finish
  kInvalid,   ///< malformed request (bad spec, schedule, or trace)
  kFailed,    ///< engine gave up (budget, synthesis failure, retries exhausted)
};

[[nodiscard]] std::string_view job_kind_name(JobKind kind);
[[nodiscard]] std::string_view job_status_name(JobStatus status);

struct JobRequest {
  std::uint64_t id = 0;
  std::string tenant = "default";
  JobKind kind = JobKind::kVerify;
  /// Wall-clock budget in milliseconds from submission; 0 = none.
  std::uint64_t deadline_ms = 0;
  /// Synthesis flavor: exact Theorem-1 game search vs. the Theorem-3
  /// constructive heuristic. Under overload degradation the service may
  /// serve an exact request heuristically (response carries degraded).
  bool exact = false;
  /// Specification text (.rts language).
  std::string spec;
  /// Schedule text (kVerify only).
  std::string schedule;
  /// Raw .rtt file bytes (kMonitor only).
  std::string trace;
  /// kMap only: processor count for the default shared-bus platform.
  /// Ignored when the spec itself declares processor/bus/link lines
  /// (the declared platform wins). 0 with no declared platform is
  /// kInvalid.
  std::uint64_t processors = 0;
  /// kMap only: portfolio member ("greedy", "sa", "spd", or a legacy
  /// partition alias); empty means "greedy".
  std::string mapper;
  /// kMap only: k-failure tolerance target (ISSUE 10). 0 = plain
  /// deployment; > 0 runs map::deploy_tolerant, so the verdict also
  /// requires an admissible MigrationTable entry for every failure set
  /// of at most `tolerate` processors.
  std::uint64_t tolerate = 0;
};

struct JobResponse {
  std::uint64_t id = 0;
  JobStatus status = JobStatus::kFailed;
  /// kVerify: schedule feasible. kSynthesize: a schedule was produced.
  /// kMonitor: no violations so far in the tenant's stream.
  bool verdict = false;
  /// Served from the result cache without running an engine.
  bool cached = false;
  /// An exact request served heuristically under overload.
  bool degraded = false;
  /// kRejected only: suggested client backoff.
  std::uint64_t retry_after_ms = 0;
  /// Milliseconds spent queued / running (0 for rejected jobs).
  std::uint64_t queue_ms = 0;
  std::uint64_t run_ms = 0;
  /// Kind-specific body: synthesized schedule text, failure reason, or
  /// monitor summary.
  std::string detail;
};

}  // namespace rtg::svc
