// protocol.hpp — line-delimited request/response framing.
//
// The server reads a stream of frames (from a pipe, a file, or a
// socket wrapper — anything std::istream) and writes response frames.
// Everything is text except trace payloads, which travel hex-encoded so
// a frame never contains a raw newline:
//
//   REQ <id> <tenant> <verify|synth|monitor|map> <deadline_ms> <exact 0|1>
//   MAP <processors> <mapper>  -- map jobs only: platform + portfolio pick
//   SPEC <n>          -- optional: n verbatim spec lines follow
//   ...
//   SCHED <n>         -- optional: n verbatim schedule lines follow
//   ...
//   TRACE <hexlen>    -- optional: one line of hexlen hex characters
//   <hex bytes>
//   END
//
//   RSP <id> <ok|rejected|expired|invalid|failed> verdict=<0|1>
//       cached=<0|1> degraded=<0|1> retry_after_ms=<n> queue_ms=<n>
//       run_ms=<n>                         (single line)
//   BODY <n>          -- optional: n verbatim detail lines follow
//   ...
//   END
//
// The reader is strict: an unknown keyword, a malformed count, an
// oversized section, or EOF inside a frame is a ProtocolError naming
// the offending line — a malformed frame can never be half-applied.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "svc/job.hpp"

namespace rtg::svc {

class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& what)
      : std::runtime_error("protocol: " + what) {}
};

struct ProtocolLimits {
  /// Maximum lines in a SPEC/SCHED/BODY section.
  std::size_t max_section_lines = 10'000;
  /// Maximum bytes in one line (section lines and the hex trace line).
  std::size_t max_line_bytes = 1u << 20;
};

/// Reads the next request frame. Returns nullopt on clean EOF (stream
/// exhausted before a REQ line); throws ProtocolError on a malformed
/// frame or EOF mid-frame.
[[nodiscard]] std::optional<JobRequest> read_request(
    std::istream& in, const ProtocolLimits& limits = {});

void write_request(std::ostream& out, const JobRequest& req);

[[nodiscard]] std::optional<JobResponse> read_response(
    std::istream& in, const ProtocolLimits& limits = {});

void write_response(std::ostream& out, const JobResponse& rsp);

/// Hex helpers for the trace payload (lowercase; throws ProtocolError
/// on odd length or non-hex digits).
[[nodiscard]] std::string hex_encode(std::string_view bytes);
[[nodiscard]] std::string hex_decode(std::string_view hex);

}  // namespace rtg::svc
