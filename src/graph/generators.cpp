#include "graph/generators.hpp"

#include <stdexcept>
#include <vector>

namespace rtg::graph {

namespace {

std::int64_t draw_weight(sim::Rng& rng, std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("generator: min_weight > max_weight");
  return rng.uniform(lo, hi);
}

}  // namespace

Digraph make_chain(std::size_t n, std::int64_t weight) {
  Digraph g;
  NodeId prev = kInvalidNode;
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId v = g.add_node(weight);
    if (prev != kInvalidNode) g.add_edge(prev, v);
    prev = v;
  }
  return g;
}

Digraph make_fork_join(std::size_t width, std::int64_t weight) {
  Digraph g;
  const NodeId src = g.add_node(weight);
  const NodeId snk_placeholder = kInvalidNode;
  (void)snk_placeholder;
  std::vector<NodeId> mid;
  mid.reserve(width);
  for (std::size_t i = 0; i < width; ++i) {
    mid.push_back(g.add_node(weight));
  }
  const NodeId snk = g.add_node(weight);
  for (NodeId m : mid) {
    g.add_edge(src, m);
    g.add_edge(m, snk);
  }
  if (width == 0) g.add_edge(src, snk);
  return g;
}

Digraph make_layered_dag(std::size_t layers, std::size_t width, double density,
                         sim::Rng& rng, std::int64_t min_weight,
                         std::int64_t max_weight) {
  if (layers == 0 || width == 0) return {};
  Digraph g;
  std::vector<std::vector<NodeId>> layer_ids(layers);
  for (std::size_t l = 0; l < layers; ++l) {
    for (std::size_t i = 0; i < width; ++i) {
      layer_ids[l].push_back(g.add_node(draw_weight(rng, min_weight, max_weight)));
    }
  }
  for (std::size_t l = 1; l < layers; ++l) {
    for (NodeId v : layer_ids[l]) {
      bool any = false;
      for (NodeId u : layer_ids[l - 1]) {
        if (rng.chance(density)) {
          g.add_edge(u, v);
          any = true;
        }
      }
      if (!any) {
        // Force connectivity: pick one random predecessor.
        const auto& prev = layer_ids[l - 1];
        g.add_edge(prev[static_cast<std::size_t>(
                       rng.uniform(0, static_cast<std::int64_t>(prev.size()) - 1))],
                   v);
      }
    }
  }
  return g;
}

Digraph make_random_dag(std::size_t n, double density, sim::Rng& rng,
                        std::int64_t min_weight, std::int64_t max_weight) {
  Digraph g;
  for (std::size_t i = 0; i < n; ++i) {
    g.add_node(draw_weight(rng, min_weight, max_weight));
  }
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) {
      if (rng.chance(density)) g.add_edge(i, j);
    }
  }
  return g;
}

namespace {

// Recursive series-parallel builder. Returns (source, sink) of the
// freshly added component consuming `budget` nodes.
std::pair<NodeId, NodeId> sp_build(Digraph& g, std::size_t budget, double parallel_bias,
                                   sim::Rng& rng, std::int64_t lo, std::int64_t hi) {
  if (budget <= 1) {
    const NodeId v = g.add_node(draw_weight(rng, lo, hi));
    return {v, v};
  }
  const std::size_t left_budget =
      static_cast<std::size_t>(rng.uniform(1, static_cast<std::int64_t>(budget) - 1));
  const std::size_t right_budget = budget - left_budget;
  auto [ls, lt] = sp_build(g, left_budget, parallel_bias, rng, lo, hi);
  auto [rs, rt] = sp_build(g, right_budget, parallel_bias, rng, lo, hi);
  if (rng.chance(parallel_bias)) {
    // Parallel composition: shared virtual endpoints realized by a fresh
    // source and sink node so the result stays a two-terminal DAG.
    const NodeId s = g.add_node(draw_weight(rng, lo, hi));
    const NodeId t = g.add_node(draw_weight(rng, lo, hi));
    g.add_edge(s, ls);
    g.add_edge(s, rs);
    g.add_edge(lt, t);
    g.add_edge(rt, t);
    return {s, t};
  }
  // Series composition.
  g.add_edge(lt, rs);
  return {ls, rt};
}

}  // namespace

Digraph make_series_parallel(std::size_t n, double parallel_bias, sim::Rng& rng,
                             std::int64_t min_weight, std::int64_t max_weight) {
  Digraph g;
  if (n == 0) return g;
  sp_build(g, n, parallel_bias, rng, min_weight, max_weight);
  return g;
}

Digraph make_reduction_tree(std::size_t leaves, std::int64_t weight) {
  Digraph g;
  if (leaves == 0) return g;
  std::vector<NodeId> frontier;
  frontier.reserve(leaves);
  for (std::size_t i = 0; i < leaves; ++i) {
    frontier.push_back(g.add_node(weight));
  }
  while (frontier.size() > 1) {
    std::vector<NodeId> next;
    next.reserve((frontier.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < frontier.size(); i += 2) {
      const NodeId join = g.add_node(weight);
      g.add_edge(frontier[i], join);
      g.add_edge(frontier[i + 1], join);
      next.push_back(join);
    }
    if (frontier.size() % 2 == 1) next.push_back(frontier.back());
    frontier = std::move(next);
  }
  return g;
}

}  // namespace rtg::graph
