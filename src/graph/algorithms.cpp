#include "graph/algorithms.hpp"

#include <algorithm>
#include <functional>
#include <queue>
#include <stdexcept>

namespace rtg::graph {

std::optional<std::vector<NodeId>> topological_sort(const Digraph& g) {
  const std::size_t n = g.node_count();
  std::vector<std::size_t> indeg(n);
  for (NodeId v = 0; v < n; ++v) indeg[v] = g.in_degree(v);

  // Min-heap on node id for deterministic output.
  std::priority_queue<NodeId, std::vector<NodeId>, std::greater<>> ready;
  for (NodeId v = 0; v < n; ++v) {
    if (indeg[v] == 0) ready.push(v);
  }

  std::vector<NodeId> order;
  order.reserve(n);
  while (!ready.empty()) {
    const NodeId v = ready.top();
    ready.pop();
    order.push_back(v);
    for (NodeId w : g.successors(v)) {
      if (--indeg[w] == 0) ready.push(w);
    }
  }
  if (order.size() != n) return std::nullopt;
  return order;
}

bool is_acyclic(const Digraph& g) { return topological_sort(g).has_value(); }

namespace {

void all_topo_rec(const Digraph& g, std::vector<std::size_t>& indeg,
                  std::vector<bool>& used, std::vector<NodeId>& partial,
                  std::vector<std::vector<NodeId>>& out, std::size_t limit) {
  if (out.size() >= limit) return;
  if (partial.size() == g.node_count()) {
    out.push_back(partial);
    return;
  }
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (used[v] || indeg[v] != 0) continue;
    used[v] = true;
    partial.push_back(v);
    for (NodeId w : g.successors(v)) --indeg[w];
    all_topo_rec(g, indeg, used, partial, out, limit);
    for (NodeId w : g.successors(v)) ++indeg[w];
    partial.pop_back();
    used[v] = false;
    if (out.size() >= limit) return;
  }
}

}  // namespace

std::vector<std::vector<NodeId>> all_topological_sorts(const Digraph& g, std::size_t limit) {
  if (!is_acyclic(g)) {
    throw std::invalid_argument("all_topological_sorts: graph is cyclic");
  }
  std::vector<std::size_t> indeg(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) indeg[v] = g.in_degree(v);
  std::vector<bool> used(g.node_count(), false);
  std::vector<NodeId> partial;
  std::vector<std::vector<NodeId>> out;
  all_topo_rec(g, indeg, used, partial, out, limit);
  return out;
}

std::vector<NodeId> reachable_from(const Digraph& g, NodeId source) {
  if (!g.has_node(source)) {
    throw std::out_of_range("reachable_from: unknown source");
  }
  std::vector<bool> seen(g.node_count(), false);
  std::vector<NodeId> stack{source};
  seen[source] = true;
  std::vector<NodeId> result;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    result.push_back(v);
    for (NodeId w : g.successors(v)) {
      if (!seen[w]) {
        seen[w] = true;
        stack.push_back(w);
      }
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

bool reaches(const Digraph& g, NodeId source, NodeId target) {
  if (!g.has_node(source) || !g.has_node(target)) return false;
  if (source == target) return true;
  std::vector<bool> seen(g.node_count(), false);
  std::vector<NodeId> stack{source};
  seen[source] = true;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    for (NodeId w : g.successors(v)) {
      if (w == target) return true;
      if (!seen[w]) {
        seen[w] = true;
        stack.push_back(w);
      }
    }
  }
  return false;
}

std::vector<bool> transitive_closure(const Digraph& g) {
  const std::size_t n = g.node_count();
  std::vector<bool> closure(n * n, false);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : reachable_from(g, u)) {
      closure[u * n + v] = true;
    }
  }
  return closure;
}

std::vector<Edge> transitive_reduction(const Digraph& g) {
  if (!is_acyclic(g)) {
    throw std::invalid_argument("transitive_reduction: graph is cyclic");
  }
  const std::size_t n = g.node_count();
  const std::vector<bool> closure = transitive_closure(g);
  std::vector<Edge> kept;
  // Edge (u,v) is redundant iff some other successor w of u reaches v.
  for (const Edge& e : g.edges()) {
    bool redundant = false;
    for (NodeId w : g.successors(e.from)) {
      if (w != e.to && closure[static_cast<std::size_t>(w) * n + e.to]) {
        redundant = true;
        break;
      }
    }
    if (!redundant) kept.push_back(e);
  }
  std::sort(kept.begin(), kept.end(), [](const Edge& a, const Edge& b) {
    return a.from != b.from ? a.from < b.from : a.to < b.to;
  });
  return kept;
}

namespace {

// Computes, for each node of a DAG, the heaviest-path weight ending at
// that node (inclusive), plus the predecessor on that path.
void longest_paths(const Digraph& g, std::vector<std::int64_t>& dist,
                   std::vector<NodeId>& parent) {
  auto order = topological_sort(g);
  if (!order) {
    throw std::invalid_argument("critical_path: graph is cyclic");
  }
  const std::size_t n = g.node_count();
  dist.assign(n, 0);
  parent.assign(n, kInvalidNode);
  for (NodeId v : *order) {
    dist[v] += g.weight(v);
    for (NodeId w : g.successors(v)) {
      if (dist[v] > dist[w]) {
        dist[w] = dist[v];
        parent[w] = v;
      }
    }
  }
}

}  // namespace

std::int64_t critical_path_weight(const Digraph& g) {
  if (g.empty()) return 0;
  std::vector<std::int64_t> dist;
  std::vector<NodeId> parent;
  longest_paths(g, dist, parent);
  return *std::max_element(dist.begin(), dist.end());
}

std::vector<NodeId> critical_path(const Digraph& g) {
  if (g.empty()) return {};
  std::vector<std::int64_t> dist;
  std::vector<NodeId> parent;
  longest_paths(g, dist, parent);
  NodeId tail = static_cast<NodeId>(
      std::max_element(dist.begin(), dist.end()) - dist.begin());
  std::vector<NodeId> path;
  for (NodeId v = tail; v != kInvalidNode; v = parent[v]) {
    path.push_back(v);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

namespace {

struct TarjanState {
  const Digraph& g;
  std::vector<std::uint32_t> index;
  std::vector<std::uint32_t> lowlink;
  std::vector<bool> on_stack;
  std::vector<NodeId> stack;
  std::uint32_t next_index = 0;
  std::vector<std::vector<NodeId>> components;

  static constexpr std::uint32_t kUnvisited = static_cast<std::uint32_t>(-1);

  explicit TarjanState(const Digraph& graph)
      : g(graph),
        index(graph.node_count(), kUnvisited),
        lowlink(graph.node_count(), 0),
        on_stack(graph.node_count(), false) {}

  // Iterative Tarjan to avoid stack overflow on long chains.
  void run(NodeId root) {
    struct Frame {
      NodeId v;
      std::size_t next_succ;
    };
    std::vector<Frame> frames{{root, 0}};
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!frames.empty()) {
      Frame& f = frames.back();
      const auto& succ = g.successors(f.v);
      if (f.next_succ < succ.size()) {
        const NodeId w = succ[f.next_succ++];
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[f.v] = std::min(lowlink[f.v], index[w]);
        }
      } else {
        const NodeId v = f.v;
        frames.pop_back();
        if (!frames.empty()) {
          lowlink[frames.back().v] = std::min(lowlink[frames.back().v], lowlink[v]);
        }
        if (lowlink[v] == index[v]) {
          std::vector<NodeId> comp;
          NodeId w;
          do {
            w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            comp.push_back(w);
          } while (w != v);
          std::sort(comp.begin(), comp.end());
          components.push_back(std::move(comp));
        }
      }
    }
  }
};

}  // namespace

std::vector<std::vector<NodeId>> strongly_connected_components(const Digraph& g) {
  TarjanState state(g);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (state.index[v] == TarjanState::kUnvisited) {
      state.run(v);
    }
  }
  return std::move(state.components);
}

std::vector<NodeId> sources(const Digraph& g) {
  std::vector<NodeId> result;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (g.in_degree(v) == 0) result.push_back(v);
  }
  return result;
}

std::vector<NodeId> sinks(const Digraph& g) {
  std::vector<NodeId> result;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (g.out_degree(v) == 0) result.push_back(v);
  }
  return result;
}

namespace {

// Kuhn's augmenting-path matching over the strict transitive closure
// (left copy u -> right copy v iff u strictly reaches v). Returns
// match_right: per right vertex, its matched left vertex or -1.
struct ClosureMatching {
  std::size_t n = 0;
  std::vector<bool> closure;  // strict reachability, row-major
  std::vector<int> match_right;
  std::vector<int> match_left;
  std::size_t size = 0;
};

ClosureMatching closure_matching(const Digraph& g) {
  if (!is_acyclic(g)) {
    throw std::invalid_argument("path cover / width: graph is cyclic");
  }
  ClosureMatching m;
  m.n = g.node_count();
  m.closure = transitive_closure(g);
  for (NodeId v = 0; v < m.n; ++v) {
    m.closure[v * m.n + v] = false;  // strict order
  }
  m.match_right.assign(m.n, -1);
  m.match_left.assign(m.n, -1);

  std::vector<bool> visited;
  std::function<bool(NodeId)> augment = [&](NodeId u) -> bool {
    for (NodeId v = 0; v < m.n; ++v) {
      if (!m.closure[u * m.n + v] || visited[v]) continue;
      visited[v] = true;
      if (m.match_right[v] < 0 || augment(static_cast<NodeId>(m.match_right[v]))) {
        m.match_right[v] = static_cast<int>(u);
        m.match_left[u] = static_cast<int>(v);
        return true;
      }
    }
    return false;
  };
  for (NodeId u = 0; u < m.n; ++u) {
    visited.assign(m.n, false);
    if (augment(u)) ++m.size;
  }
  return m;
}

}  // namespace

std::size_t minimum_path_cover(const Digraph& g) {
  if (g.empty()) return 0;
  const ClosureMatching m = closure_matching(g);
  return m.n - m.size;
}

std::size_t dag_width(const Digraph& g) { return minimum_path_cover(g); }

std::vector<NodeId> maximum_antichain(const Digraph& g) {
  if (g.empty()) return {};
  const ClosureMatching m = closure_matching(g);

  // Koenig: alternate from unmatched left vertices; the antichain is
  // the set of nodes whose left copy is reached and right copy is not.
  std::vector<bool> left_reached(m.n, false);
  std::vector<bool> right_reached(m.n, false);
  std::vector<NodeId> stack;
  for (NodeId u = 0; u < m.n; ++u) {
    if (m.match_left[u] < 0) {
      left_reached[u] = true;
      stack.push_back(u);
    }
  }
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    for (NodeId v = 0; v < m.n; ++v) {
      if (!m.closure[u * m.n + v] || right_reached[v]) continue;
      if (m.match_left[u] >= 0 && static_cast<NodeId>(m.match_left[u]) == v) {
        continue;  // only non-matching edges left -> right
      }
      right_reached[v] = true;
      if (m.match_right[v] >= 0) {
        const NodeId w = static_cast<NodeId>(m.match_right[v]);
        if (!left_reached[w]) {
          left_reached[w] = true;
          stack.push_back(w);
        }
      }
    }
  }

  std::vector<NodeId> antichain;
  for (NodeId v = 0; v < m.n; ++v) {
    if (left_reached[v] && !right_reached[v]) antichain.push_back(v);
  }
  return antichain;
}

std::vector<std::size_t> node_depths(const Digraph& g) {
  auto order = topological_sort(g);
  if (!order) {
    throw std::invalid_argument("node_depths: graph is cyclic");
  }
  std::vector<std::size_t> depth(g.node_count(), 0);
  for (NodeId v : *order) {
    for (NodeId w : g.successors(v)) {
      depth[w] = std::max(depth[w], depth[v] + 1);
    }
  }
  return depth;
}

}  // namespace rtg::graph
