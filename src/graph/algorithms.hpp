// algorithms.hpp — classic digraph algorithms used by the scheduling
// core: topological orders, cycle detection, reachability, transitive
// closure/reduction, longest weighted paths (critical paths of task
// graphs), and strongly connected components.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/digraph.hpp"

namespace rtg::graph {

/// Kahn topological sort. Returns nullopt iff the graph has a cycle.
/// Ties are broken by smallest node id, making the order deterministic.
[[nodiscard]] std::optional<std::vector<NodeId>> topological_sort(const Digraph& g);

/// True iff g is acyclic.
[[nodiscard]] bool is_acyclic(const Digraph& g);

/// All topological orders of a DAG, in lexicographic order. Guarded by
/// `limit`: enumeration stops (and the result is truncated) once `limit`
/// orders were produced. Throws std::invalid_argument on cyclic input.
[[nodiscard]] std::vector<std::vector<NodeId>> all_topological_sorts(const Digraph& g,
                                                                     std::size_t limit = 10000);

/// Set of nodes reachable from `source` (including `source`).
[[nodiscard]] std::vector<NodeId> reachable_from(const Digraph& g, NodeId source);

/// True iff `target` is reachable from `source` (reflexively).
[[nodiscard]] bool reaches(const Digraph& g, NodeId source, NodeId target);

/// Transitive closure as an n*n boolean matrix, row-major:
/// closure[u * n + v] == true iff v reachable from u (reflexive).
[[nodiscard]] std::vector<bool> transitive_closure(const Digraph& g);

/// Edges of the transitive reduction of a DAG (the minimal edge set with
/// the same reachability). Throws std::invalid_argument on cyclic input.
[[nodiscard]] std::vector<Edge> transitive_reduction(const Digraph& g);

/// Length (sum of node weights) of the heaviest path in a DAG. The path
/// weight includes both endpoints. Returns 0 for an empty graph.
/// Throws std::invalid_argument on cyclic input.
[[nodiscard]] std::int64_t critical_path_weight(const Digraph& g);

/// Nodes of one heaviest path in a DAG, in path order.
[[nodiscard]] std::vector<NodeId> critical_path(const Digraph& g);

/// Tarjan strongly connected components. Returns components in reverse
/// topological order of the condensation; each component's nodes are in
/// ascending id order.
[[nodiscard]] std::vector<std::vector<NodeId>> strongly_connected_components(const Digraph& g);

/// Nodes with in-degree zero, ascending.
[[nodiscard]] std::vector<NodeId> sources(const Digraph& g);

/// Nodes with out-degree zero, ascending.
[[nodiscard]] std::vector<NodeId> sinks(const Digraph& g);

/// Depth of each node in a DAG: 0 for sources, 1 + max(pred depth)
/// otherwise. Throws std::invalid_argument on cyclic input.
[[nodiscard]] std::vector<std::size_t> node_depths(const Digraph& g);

/// Minimum number of vertex-disjoint paths covering every node of a
/// DAG, computed as n - (maximum bipartite matching on the transitive
/// closure); paths may jump over intermediate nodes (path cover in the
/// reachability order). Throws std::invalid_argument on cyclic input.
[[nodiscard]] std::size_t minimum_path_cover(const Digraph& g);

/// Width of the DAG's reachability partial order: the size of the
/// largest antichain (= minimum_path_cover, by Dilworth's theorem).
/// For a task graph this is the maximum number of operations that
/// could ever run concurrently — a natural cap on useful processors.
[[nodiscard]] std::size_t dag_width(const Digraph& g);

/// One largest antichain of the DAG's reachability order (pairwise
/// unreachable nodes), ascending ids.
[[nodiscard]] std::vector<NodeId> maximum_antichain(const Digraph& g);

}  // namespace rtg::graph
