// dot.hpp — Graphviz DOT export for communication and task graphs.
//
// CONSORT (the paper's predecessor system) had a graphics interface for
// inspecting controller structures; DOT export is this library's
// equivalent inspection surface.
#pragma once

#include <string>

#include "graph/digraph.hpp"

namespace rtg::graph {

/// Rendering options for to_dot.
struct DotOptions {
  /// Graph name emitted in the `digraph <name> { ... }` header.
  std::string graph_name = "G";
  /// Include `(w=<weight>)` in node labels.
  bool show_weights = true;
  /// Left-to-right layout (rankdir=LR) instead of top-down.
  bool left_to_right = true;
};

/// Serializes the graph in Graphviz DOT format. Unnamed nodes render as
/// `n<id>`.
[[nodiscard]] std::string to_dot(const Digraph& g, const DotOptions& opts = {});

}  // namespace rtg::graph
