// generators.hpp — synthetic graph workload generators.
//
// The paper's evaluation substrate is simulated (no proprietary control
// traces exist), so experiments draw their communication graphs and task
// graphs from these parameterized families.  Shapes follow the structures
// the paper motivates: chains (sample → filter → actuate paths),
// fork-join (parallel sensor fusion), layered DAGs (multi-stage control
// laws), and series-parallel compositions.
#pragma once

#include <cstdint>

#include "graph/digraph.hpp"
#include "sim/rng.hpp"

namespace rtg::graph {

/// A chain v0 -> v1 -> ... -> v_{n-1}; every node has weight `weight`.
[[nodiscard]] Digraph make_chain(std::size_t n, std::int64_t weight = 1);

/// Fork-join: one source, `width` parallel middle nodes, one sink.
[[nodiscard]] Digraph make_fork_join(std::size_t width, std::int64_t weight = 1);

/// Layered DAG: `layers` layers of `width` nodes; each node in layer i
/// gets edges from a random non-empty subset of layer i-1 (edge kept
/// with probability `density`, with at least one predecessor forced).
[[nodiscard]] Digraph make_layered_dag(std::size_t layers, std::size_t width,
                                       double density, sim::Rng& rng,
                                       std::int64_t min_weight = 1,
                                       std::int64_t max_weight = 1);

/// Random DAG on n nodes: edge (i, j) for i < j kept with probability
/// `density`; weights uniform in [min_weight, max_weight].
[[nodiscard]] Digraph make_random_dag(std::size_t n, double density, sim::Rng& rng,
                                      std::int64_t min_weight = 1,
                                      std::int64_t max_weight = 1);

/// Random series-parallel DAG with ~n nodes built by recursive series /
/// parallel composition (probability `parallel_bias` of splitting in
/// parallel). Always has a single source and a single sink.
[[nodiscard]] Digraph make_series_parallel(std::size_t n, double parallel_bias,
                                           sim::Rng& rng, std::int64_t min_weight = 1,
                                           std::int64_t max_weight = 1);

/// In-tree (reduction tree): `leaves` leaves converging through binary
/// joins to a single sink; edges point towards the root.
[[nodiscard]] Digraph make_reduction_tree(std::size_t leaves, std::int64_t weight = 1);

}  // namespace rtg::graph
