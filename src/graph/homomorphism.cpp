#include "graph/homomorphism.hpp"

#include <functional>

namespace rtg::graph {

bool is_homomorphism(const Digraph& c, const Digraph& g,
                     const std::vector<NodeId>& labels) {
  if (labels.size() != c.node_count()) return false;
  for (NodeId v = 0; v < c.node_count(); ++v) {
    if (!g.has_node(labels[v])) return false;
  }
  for (const Edge& e : c.edges()) {
    if (!g.has_edge(labels[e.from], labels[e.to])) return false;
  }
  return true;
}

namespace {

// Backtracking assignment in node-id order; `count_only` enumerates
// until `limit` instead of stopping at the first solution.
struct HomSearch {
  const Digraph& c;
  const Digraph& g;
  std::vector<NodeId> labels;
  std::size_t found = 0;
  std::size_t limit = 1;

  bool consistent(NodeId v, NodeId image) const {
    // Check edges between v and already-assigned nodes (ids < v have
    // assignments; edges may go either way).
    for (NodeId u : c.predecessors(v)) {
      if (u < v && !g.has_edge(labels[u], image)) return false;
    }
    for (NodeId u : c.successors(v)) {
      if (u < v && !g.has_edge(image, labels[u])) return false;
    }
    return true;
  }

  void search(NodeId v) {
    if (found >= limit) return;
    if (v == c.node_count()) {
      ++found;
      return;
    }
    for (NodeId image = 0; image < g.node_count(); ++image) {
      if (!consistent(v, image)) continue;
      labels[v] = image;
      search(v + 1);
      if (found >= limit) return;
    }
  }
};

}  // namespace

std::optional<std::vector<NodeId>> find_homomorphism(const Digraph& c, const Digraph& g) {
  if (c.node_count() > 0 && g.node_count() == 0) return std::nullopt;
  HomSearch s{c, g, std::vector<NodeId>(c.node_count(), kInvalidNode), 0, 1};
  // To recover the witness we re-run stopping at the first success with
  // the label vector intact.
  std::optional<std::vector<NodeId>> result;
  std::function<bool(NodeId)> rec = [&](NodeId v) -> bool {
    if (v == c.node_count()) {
      result = s.labels;
      return true;
    }
    for (NodeId image = 0; image < g.node_count(); ++image) {
      if (!s.consistent(v, image)) continue;
      s.labels[v] = image;
      if (rec(v + 1)) return true;
    }
    return false;
  };
  rec(0);
  return result;
}

std::size_t count_homomorphisms(const Digraph& c, const Digraph& g, std::size_t limit) {
  if (c.node_count() == 0) return 1;
  HomSearch s{c, g, std::vector<NodeId>(c.node_count(), kInvalidNode), 0, limit};
  s.search(0);
  return s.found;
}

}  // namespace rtg::graph
