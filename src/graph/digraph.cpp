#include "graph/digraph.hpp"

#include <stdexcept>

namespace rtg::graph {

NodeId Digraph::add_node(std::int64_t weight, std::string name) {
  if (weight < 0) {
    throw std::invalid_argument("Digraph::add_node: negative weight");
  }
  if (!name.empty() && by_name_.contains(name)) {
    throw std::invalid_argument("Digraph::add_node: duplicate name '" + name + "'");
  }
  const NodeId id = static_cast<NodeId>(weights_.size());
  weights_.push_back(weight);
  names_.push_back(name);
  out_.emplace_back();
  in_.emplace_back();
  if (!name.empty()) {
    by_name_.emplace(std::move(name), id);
  }
  return id;
}

bool Digraph::add_edge(NodeId u, NodeId v) {
  check_node(u);
  check_node(v);
  if (u == v) {
    throw std::invalid_argument("Digraph::add_edge: self loop");
  }
  if (!edge_set_.insert(pack(u, v)).second) {
    return false;
  }
  out_[u].push_back(v);
  in_[v].push_back(u);
  return true;
}

bool Digraph::has_edge(NodeId u, NodeId v) const {
  if (!has_node(u) || !has_node(v)) return false;
  return edge_set_.contains(pack(u, v));
}

std::int64_t Digraph::weight(NodeId v) const {
  check_node(v);
  return weights_[v];
}

void Digraph::set_weight(NodeId v, std::int64_t w) {
  check_node(v);
  if (w < 0) {
    throw std::invalid_argument("Digraph::set_weight: negative weight");
  }
  weights_[v] = w;
}

const std::string& Digraph::name(NodeId v) const {
  check_node(v);
  return names_[v];
}

std::optional<NodeId> Digraph::find(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

const std::vector<NodeId>& Digraph::successors(NodeId v) const {
  check_node(v);
  return out_[v];
}

const std::vector<NodeId>& Digraph::predecessors(NodeId v) const {
  check_node(v);
  return in_[v];
}

std::vector<Edge> Digraph::edges() const {
  std::vector<Edge> result;
  result.reserve(edge_set_.size());
  for (NodeId u = 0; u < out_.size(); ++u) {
    for (NodeId v : out_[u]) {
      result.push_back(Edge{u, v});
    }
  }
  return result;
}

std::int64_t Digraph::total_weight() const {
  std::int64_t sum = 0;
  for (std::int64_t w : weights_) sum += w;
  return sum;
}

void Digraph::check_node(NodeId v) const {
  if (!has_node(v)) {
    throw std::out_of_range("Digraph: unknown node id " + std::to_string(v));
  }
}

}  // namespace rtg::graph
