#include "graph/dot.hpp"

#include <sstream>

namespace rtg::graph {

namespace {

std::string node_label(const Digraph& g, NodeId v, const DotOptions& opts) {
  std::string label = g.name(v).empty() ? "n" + std::to_string(v) : g.name(v);
  if (opts.show_weights) {
    label += " (w=" + std::to_string(g.weight(v)) + ")";
  }
  return label;
}

// Escapes double quotes in labels.
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string to_dot(const Digraph& g, const DotOptions& opts) {
  std::ostringstream os;
  os << "digraph " << opts.graph_name << " {\n";
  if (opts.left_to_right) os << "  rankdir=LR;\n";
  os << "  node [shape=box];\n";
  for (NodeId v = 0; v < g.node_count(); ++v) {
    os << "  n" << v << " [label=\"" << escape(node_label(g, v, opts)) << "\"];\n";
  }
  for (const Edge& e : g.edges()) {
    os << "  n" << e.from << " -> n" << e.to << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace rtg::graph
