// digraph.hpp — directed graph container used throughout the library.
//
// The communication graphs and task graphs of Mok's graph-based model
// (ICPP 1985) are digraphs whose nodes carry a non-negative integer
// weight (the worst-case computation time of a functional element) and
// an optional human-readable name.  This container is deliberately
// simple: dense 32-bit node ids, append-only node set, and adjacency
// kept both as out-lists and in-lists so that precedence traversals in
// either direction are O(degree).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace rtg::graph {

/// Dense node identifier. Nodes are numbered 0..node_count()-1 in
/// insertion order and are never removed.
using NodeId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// A directed edge (u -> v).
struct Edge {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// Directed graph with weighted, named nodes.
///
/// Invariants:
///  * node ids are dense: 0..node_count()-1;
///  * no self loops, no parallel edges (add_edge rejects both);
///  * names, when supplied, are unique.
class Digraph {
 public:
  Digraph() = default;

  /// Adds a node with the given weight and optional name.
  /// Throws std::invalid_argument if the name is already in use.
  NodeId add_node(std::int64_t weight = 1, std::string name = {});

  /// Adds an edge u -> v. Returns false (and does nothing) if the edge
  /// already exists. Throws std::out_of_range for unknown ids and
  /// std::invalid_argument for self loops.
  bool add_edge(NodeId u, NodeId v);

  [[nodiscard]] std::size_t node_count() const { return weights_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edge_set_.size(); }
  [[nodiscard]] bool empty() const { return weights_.empty(); }

  [[nodiscard]] bool has_node(NodeId v) const { return v < weights_.size(); }
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;

  /// Node weight accessors. Weight is the worst-case computation time
  /// of the functional element, in integral time slots.
  [[nodiscard]] std::int64_t weight(NodeId v) const;
  void set_weight(NodeId v, std::int64_t w);

  /// Name accessors. Unnamed nodes report an empty string.
  [[nodiscard]] const std::string& name(NodeId v) const;
  /// Looks a node up by name; nullopt if no such node.
  [[nodiscard]] std::optional<NodeId> find(std::string_view name) const;

  [[nodiscard]] const std::vector<NodeId>& successors(NodeId v) const;
  [[nodiscard]] const std::vector<NodeId>& predecessors(NodeId v) const;
  [[nodiscard]] std::size_t out_degree(NodeId v) const { return successors(v).size(); }
  [[nodiscard]] std::size_t in_degree(NodeId v) const { return predecessors(v).size(); }

  /// All edges in unspecified but deterministic order.
  [[nodiscard]] std::vector<Edge> edges() const;

  /// Sum of all node weights.
  [[nodiscard]] std::int64_t total_weight() const;

 private:
  void check_node(NodeId v) const;
  static std::uint64_t pack(NodeId u, NodeId v) {
    return (static_cast<std::uint64_t>(u) << 32) | v;
  }

  std::vector<std::int64_t> weights_;
  std::vector<std::string> names_;
  std::vector<std::vector<NodeId>> out_;
  std::vector<std::vector<NodeId>> in_;
  std::unordered_set<std::uint64_t> edge_set_;
  std::unordered_map<std::string, NodeId> by_name_;
};

}  // namespace rtg::graph
