// homomorphism.hpp — graph-compatibility checking.
//
// Mok's model requires every task graph C to be *compatible* with the
// communication graph G: there must be a mapping h with h(v) ∈ V(G) for
// every node v of C and h(e) ∈ E(G) for every edge e of C — i.e. h is a
// graph homomorphism from C into G.  In this library task-graph nodes
// carry their image under h explicitly, so the common operation is
// *validating* a given labelling; we additionally provide a search for
// an arbitrary homomorphism, used by tests and by the spec compiler to
// diagnose unmapped task graphs.
#pragma once

#include <optional>
#include <vector>

#include "graph/digraph.hpp"

namespace rtg::graph {

/// Validates that `labels` (one entry per node of `c`, the image in `g`)
/// is a homomorphism from `c` into `g`: every image node exists and
/// every edge of `c` maps to an edge of `g`.
[[nodiscard]] bool is_homomorphism(const Digraph& c, const Digraph& g,
                                   const std::vector<NodeId>& labels);

/// Searches for any homomorphism from `c` into `g` by backtracking.
/// Returns the label vector, or nullopt if none exists. Exponential in
/// the worst case; intended for small task graphs.
[[nodiscard]] std::optional<std::vector<NodeId>> find_homomorphism(const Digraph& c,
                                                                   const Digraph& g);

/// Counts homomorphisms from `c` into `g`, stopping at `limit`.
[[nodiscard]] std::size_t count_homomorphisms(const Digraph& c, const Digraph& g,
                                              std::size_t limit = 1000000);

}  // namespace rtg::graph
