#include "spec/parser.hpp"

namespace rtg::spec {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  ParseResult run() {
    while (!at(TokenKind::kEnd)) {
      if (at_keyword("element")) {
        parse_element();
      } else if (at_keyword("channel")) {
        parse_channel();
      } else if (at_keyword("constraint")) {
        parse_constraint();
      } else if (at_keyword("processor")) {
        parse_processor();
      } else if (at_keyword("bus")) {
        parse_bus();
      } else if (at_keyword("link")) {
        parse_link();
      } else {
        error(
            "expected 'element', 'channel', 'constraint', 'processor', 'bus' "
            "or 'link'");
        synchronize();
      }
    }
    return std::move(result_);
  }

  void add_error(ParseError e) { result_.errors.push_back(std::move(e)); }

 private:
  const Token& peek() const { return tokens_[pos_]; }
  const Token& advance() { return tokens_[pos_ == tokens_.size() - 1 ? pos_ : pos_++]; }
  bool at(TokenKind kind) const { return peek().kind == kind; }
  bool at_keyword(std::string_view kw) const {
    return peek().kind == TokenKind::kIdent && peek().text == kw;
  }
  bool eat_keyword(std::string_view kw) {
    if (!at_keyword(kw)) return false;
    advance();
    return true;
  }

  void error(std::string message) {
    result_.errors.push_back(ParseError{std::move(message), peek().line, peek().column});
  }

  // Skips tokens until the next statement keyword or end of input.
  void synchronize() {
    while (!at(TokenKind::kEnd) && !at_keyword("element") && !at_keyword("channel") &&
           !at_keyword("constraint") && !at_keyword("processor") &&
           !at_keyword("bus") && !at_keyword("link")) {
      advance();
    }
  }

  bool expect_ident(std::string& out, std::string_view what) {
    if (!at(TokenKind::kIdent)) {
      error(std::string("expected ") + std::string(what) + ", found " +
            std::string(token_kind_name(peek().kind)));
      return false;
    }
    out = advance().text;
    return true;
  }

  bool expect_int(std::int64_t& out, std::string_view what) {
    if (!at(TokenKind::kInt)) {
      error(std::string("expected ") + std::string(what) + ", found " +
            std::string(token_kind_name(peek().kind)));
      return false;
    }
    out = advance().value;
    return true;
  }

  void parse_processor() {
    ProcessorDecl decl;
    decl.line = peek().line;
    advance();  // 'processor'
    if (!expect_ident(decl.name, "processor name")) {
      synchronize();
      return;
    }
    result_.file.processors.push_back(std::move(decl));
  }

  void parse_bus() {
    LinkDecl decl;
    decl.bus = true;
    decl.line = peek().line;
    advance();  // 'bus'
    if (!expect_ident(decl.name, "bus name")) {
      synchronize();
      return;
    }
    if (eat_keyword("bandwidth")) {
      if (!expect_int(decl.bandwidth, "bandwidth value")) {
        synchronize();
        return;
      }
    }
    result_.file.links.push_back(std::move(decl));
  }

  void parse_link() {
    LinkDecl decl;
    decl.line = peek().line;
    advance();  // 'link'
    if (!expect_ident(decl.name, "link name")) {
      synchronize();
      return;
    }
    if (!expect_ident(decl.from, "link source processor")) {
      synchronize();
      return;
    }
    if (!at(TokenKind::kArrow)) {
      error("expected '->' between link endpoints");
      synchronize();
      return;
    }
    advance();
    if (!expect_ident(decl.to, "link destination processor")) {
      synchronize();
      return;
    }
    if (eat_keyword("bandwidth")) {
      if (!expect_int(decl.bandwidth, "bandwidth value")) {
        synchronize();
        return;
      }
    }
    result_.file.links.push_back(std::move(decl));
  }

  void parse_element() {
    ElementDecl decl;
    decl.line = peek().line;
    advance();  // 'element'
    if (!expect_ident(decl.name, "element name")) {
      synchronize();
      return;
    }
    while (true) {
      if (eat_keyword("weight")) {
        if (!expect_int(decl.weight, "weight value")) {
          synchronize();
          return;
        }
      } else if (eat_keyword("nopipeline")) {
        decl.pipelinable = false;
      } else {
        break;
      }
    }
    result_.file.elements.push_back(std::move(decl));
  }

  void parse_channel() {
    ChannelDecl decl;
    decl.line = peek().line;
    advance();  // 'channel'
    std::string name;
    if (!expect_ident(name, "channel endpoint")) {
      synchronize();
      return;
    }
    decl.path.push_back(std::move(name));
    while (at(TokenKind::kArrow)) {
      advance();
      if (!expect_ident(name, "channel endpoint")) {
        synchronize();
        return;
      }
      decl.path.push_back(std::move(name));
    }
    if (decl.path.size() < 2) {
      error("channel needs at least two endpoints (a -> b)");
      return;
    }
    result_.file.channels.push_back(std::move(decl));
  }

  bool parse_opref(OpRef& ref) {
    ref.line = peek().line;
    if (!expect_ident(ref.element, "operation reference")) return false;
    if (at(TokenKind::kHash)) {
      advance();
      if (!expect_int(ref.instance, "instance index after '#'")) return false;
    }
    return true;
  }

  void parse_constraint() {
    ConstraintDecl decl;
    decl.line = peek().line;
    advance();  // 'constraint'
    if (!expect_ident(decl.name, "constraint name")) {
      synchronize();
      return;
    }
    if (eat_keyword("periodic")) {
      decl.periodic = true;
    } else if (eat_keyword("sporadic")) {
      decl.periodic = false;
    } else {
      error("expected 'periodic' or 'sporadic'");
      synchronize();
      return;
    }
    const std::string_view rate_kw = decl.periodic ? "period" : "separation";
    if (!eat_keyword(rate_kw)) {
      // Accept the other keyword with a diagnostic nudge.
      if (eat_keyword(decl.periodic ? "separation" : "period")) {
        error(decl.periodic ? "periodic constraints use 'period', not 'separation'"
                            : "sporadic constraints use 'separation', not 'period'");
      } else {
        error(std::string("expected '") + std::string(rate_kw) + "'");
        synchronize();
        return;
      }
    }
    if (!expect_int(decl.period, "period/separation value")) {
      synchronize();
      return;
    }
    if (!eat_keyword("deadline")) {
      error("expected 'deadline'");
      synchronize();
      return;
    }
    if (!expect_int(decl.deadline, "deadline value")) {
      synchronize();
      return;
    }
    if (!at(TokenKind::kLBrace)) {
      error("expected '{' to open constraint body");
      synchronize();
      return;
    }
    advance();
    while (!at(TokenKind::kRBrace) && !at(TokenKind::kEnd)) {
      ChainStmt chain;
      chain.line = peek().line;
      OpRef ref;
      if (!parse_opref(ref)) {
        synchronize();
        return;
      }
      chain.nodes.push_back(std::move(ref));
      while (at(TokenKind::kArrow)) {
        advance();
        OpRef next;
        if (!parse_opref(next)) {
          synchronize();
          return;
        }
        chain.nodes.push_back(std::move(next));
      }
      if (at(TokenKind::kSemi)) advance();
      decl.chains.push_back(std::move(chain));
    }
    if (!at(TokenKind::kRBrace)) {
      error("expected '}' to close constraint body");
      return;
    }
    advance();
    result_.file.constraints.push_back(std::move(decl));
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  ParseResult result_;
};

}  // namespace

ParseResult parse(std::string_view input) {
  LexResult lexed = lex(input);
  if (!lexed.ok()) {
    ParseResult result;
    for (const LexError& e : lexed.errors) {
      result.errors.push_back(ParseError{e.message, e.line, e.column});
    }
    return result;
  }
  Parser parser(std::move(lexed.tokens));
  return parser.run();
}

}  // namespace rtg::spec
