#include "spec/lexer.hpp"

#include <cctype>

namespace rtg::spec {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '/' ||
         c == '.';
}

}  // namespace

LexResult lex(std::string_view input) {
  LexResult result;
  std::size_t line = 1;
  std::size_t column = 1;
  std::size_t i = 0;
  bool prev_was_ident = false;

  auto push = [&](TokenKind kind, std::string text, std::int64_t value = 0) {
    result.tokens.push_back(Token{kind, std::move(text), value, line, column});
  };

  while (i < input.size()) {
    const char c = input[i];
    if (c == '\n') {
      ++line;
      column = 1;
      ++i;
      prev_was_ident = false;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      ++column;
      prev_was_ident = false;
      continue;
    }
    if (c == '#') {
      if (prev_was_ident) {
        // op-instance suffix: ident#3
        push(TokenKind::kHash, "#");
        ++i;
        ++column;
        prev_was_ident = false;
        continue;
      }
      // comment to end of line
      while (i < input.size() && input[i] != '\n') {
        ++i;
        ++column;
      }
      continue;
    }
    if (c == '-' && i + 1 < input.size() && input[i + 1] == '>') {
      push(TokenKind::kArrow, "->");
      i += 2;
      column += 2;
      prev_was_ident = false;
      continue;
    }
    if (c == '{') {
      push(TokenKind::kLBrace, "{");
      ++i;
      ++column;
      prev_was_ident = false;
      continue;
    }
    if (c == '}') {
      push(TokenKind::kRBrace, "}");
      ++i;
      ++column;
      prev_was_ident = false;
      continue;
    }
    if (c == ';') {
      push(TokenKind::kSemi, ";");
      ++i;
      ++column;
      prev_was_ident = false;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string digits;
      const std::size_t start_col = column;
      while (i < input.size() && std::isdigit(static_cast<unsigned char>(input[i]))) {
        digits.push_back(input[i]);
        ++i;
        ++column;
      }
      std::int64_t value = 0;
      bool overflow = false;
      for (char d : digits) {
        if (value > (INT64_MAX - (d - '0')) / 10) {
          overflow = true;
          break;
        }
        value = value * 10 + (d - '0');
      }
      if (overflow) {
        result.errors.push_back(LexError{"integer literal too large", line, start_col});
      } else {
        result.tokens.push_back(Token{TokenKind::kInt, digits, value, line, start_col});
      }
      prev_was_ident = false;
      continue;
    }
    if (ident_start(c)) {
      std::string text;
      const std::size_t start_col = column;
      while (i < input.size() && ident_char(input[i])) {
        text.push_back(input[i]);
        ++i;
        ++column;
      }
      result.tokens.push_back(Token{TokenKind::kIdent, text, 0, line, start_col});
      prev_was_ident = true;
      continue;
    }
    result.errors.push_back(
        LexError{std::string("unexpected character '") + c + "'", line, column});
    ++i;
    ++column;
    prev_was_ident = false;
  }
  push(TokenKind::kEnd, "");
  return result;
}

std::string_view token_kind_name(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kInt: return "integer";
    case TokenKind::kArrow: return "'->'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kSemi: return "';'";
    case TokenKind::kHash: return "'#'";
    case TokenKind::kEnd: return "end of input";
  }
  return "?";
}

}  // namespace rtg::spec
