// emit.hpp — serialization of a graph-based model back into the
// specification language (the inverse of spec/compile). Round-tripping
// lets tools normalize, diff, and persist models: for every valid model
// `m`, compile_text(emit(m)) succeeds and produces an equivalent model
// (same elements, channels, constraint parameters, and task-graph
// structure up to op renumbering).
#pragma once

#include <string>

#include "core/model.hpp"
#include "map/platform.hpp"

namespace rtg::spec {

/// Renders the model as specification text. Task graphs are emitted as
/// one chain statement per skeleton edge (isolated ops as single-node
/// chains); repeated elements within a task graph get #k instance
/// suffixes.
[[nodiscard]] std::string emit(const core::GraphModel& model);

/// Renders the model with a platform preamble: `processor` lines in id
/// order, then one `bus` line per link whose routes cover every ordered
/// pair, else sorted `link` lines (one per route); bandwidth printed
/// only when != 1. With an empty platform this is byte-identical to
/// emit(model), and emit∘compile∘emit is a byte fixpoint either way.
[[nodiscard]] std::string emit(const core::GraphModel& model,
                               const map::Platform& platform);

}  // namespace rtg::spec
