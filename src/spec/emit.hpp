// emit.hpp — serialization of a graph-based model back into the
// specification language (the inverse of spec/compile). Round-tripping
// lets tools normalize, diff, and persist models: for every valid model
// `m`, compile_text(emit(m)) succeeds and produces an equivalent model
// (same elements, channels, constraint parameters, and task-graph
// structure up to op renumbering).
#pragma once

#include <string>

#include "core/model.hpp"

namespace rtg::spec {

/// Renders the model as specification text. Task graphs are emitted as
/// one chain statement per skeleton edge (isolated ops as single-node
/// chains); repeated elements within a task graph get #k instance
/// suffixes.
[[nodiscard]] std::string emit(const core::GraphModel& model);

}  // namespace rtg::spec
