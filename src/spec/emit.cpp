#include "spec/emit.hpp"

#include <algorithm>
#include <sstream>
#include <utility>
#include <vector>

namespace rtg::spec {

namespace {

// Name of op `op` inside its task graph: the element name, plus a #k
// suffix whenever the element labels more than one op.
std::string op_ref(const core::TaskGraph& tg, const core::CommGraph& comm,
                   core::OpId op) {
  const core::ElementId e = tg.label(op);
  std::size_t count = 0;
  std::size_t index = 0;
  for (core::OpId other = 0; other < tg.size(); ++other) {
    if (tg.label(other) == e) {
      ++count;
      if (other < op) ++index;
    }
  }
  std::string ref = comm.name(e);
  if (count > 1) {
    ref += "#" + std::to_string(index + 1);
  }
  return ref;
}

}  // namespace

std::string emit(const core::GraphModel& model) {
  const core::CommGraph& comm = model.comm();
  std::ostringstream os;

  for (core::ElementId e = 0; e < comm.size(); ++e) {
    os << "element " << comm.name(e);
    if (comm.weight(e) != 1) os << " weight " << comm.weight(e);
    if (!comm.pipelinable(e)) os << " nopipeline";
    os << "\n";
  }
  if (comm.digraph().edge_count() > 0) os << "\n";
  for (const graph::Edge& ch : comm.digraph().edges()) {
    os << "channel " << comm.name(ch.from) << " -> " << comm.name(ch.to) << "\n";
  }

  for (const core::TimingConstraint& c : model.constraints()) {
    os << "\nconstraint " << c.name << " "
       << (c.periodic() ? "periodic period " : "sporadic separation ") << c.period
       << " deadline " << c.deadline << " {\n";
    // Edges and singletons are printed in ref-name order rather than
    // op-id order: re-compiling renumbers ops by first appearance, so
    // only a name-canonical order makes emit(compile(emit(m))) a byte
    // fixpoint (the generator corpus round-trip pins rely on this).
    std::vector<bool> covered(c.task_graph.size(), false);
    std::vector<std::pair<std::string, std::string>> edges;
    for (const graph::Edge& dep : c.task_graph.skeleton().edges()) {
      edges.emplace_back(op_ref(c.task_graph, comm, dep.from),
                         op_ref(c.task_graph, comm, dep.to));
      covered[dep.from] = covered[dep.to] = true;
    }
    std::sort(edges.begin(), edges.end());
    for (const auto& [from, to] : edges) {
      os << "  " << from << " -> " << to << ";\n";
    }
    std::vector<std::string> singletons;
    for (core::OpId op = 0; op < c.task_graph.size(); ++op) {
      if (!covered[op]) {
        singletons.push_back(op_ref(c.task_graph, comm, op));
      }
    }
    std::sort(singletons.begin(), singletons.end());
    for (const std::string& ref : singletons) {
      os << "  " << ref << ";\n";
    }
    os << "}\n";
  }
  return os.str();
}

std::string emit(const core::GraphModel& model, const map::Platform& platform) {
  std::ostringstream os;
  for (const std::string& name : platform.processor_names) {
    os << "processor " << name << "\n";
  }
  const std::size_t procs = platform.processor_names.size();
  for (const map::Link& link : platform.links) {
    if (link.is_bus(procs)) {
      os << "bus " << link.name;
      if (link.bandwidth != 1) os << " bandwidth " << link.bandwidth;
      os << "\n";
      continue;
    }
    // Routes are stored sorted, so per-route lines come out canonical;
    // compile merges same-name lines back into one link.
    for (const map::Route& route : link.routes) {
      os << "link " << link.name << " " << platform.processor_names[route.first]
         << " -> " << platform.processor_names[route.second];
      if (link.bandwidth != 1) os << " bandwidth " << link.bandwidth;
      os << "\n";
    }
  }
  if (procs > 0) os << "\n";
  os << emit(model);
  return os.str();
}

}  // namespace rtg::spec
