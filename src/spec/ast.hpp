// ast.hpp — abstract syntax tree for the specification language.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rtg::spec {

/// processor <name>
struct ProcessorDecl {
  std::string name;
  std::size_t line = 0;
};

/// bus <name> [bandwidth <int>]           (serves every ordered pair)
/// link <name> <from> -> <to> [bandwidth <int>]
/// Repeated `link` lines with the same name merge their routes into one
/// link; their bandwidths must agree.
struct LinkDecl {
  std::string name;
  bool bus = false;
  std::string from;  // empty for bus declarations
  std::string to;    // empty for bus declarations
  std::int64_t bandwidth = 1;
  std::size_t line = 0;
};

/// element <name> [weight <int>] [nopipeline]
struct ElementDecl {
  std::string name;
  std::int64_t weight = 1;
  bool pipelinable = true;
  std::size_t line = 0;
};

/// channel a -> b -> c   (declares edges a->b and b->c)
struct ChannelDecl {
  std::vector<std::string> path;  // at least two names
  std::size_t line = 0;
};

/// A task-graph node reference inside a constraint body: an element
/// name with an optional instance index (fs, fs#2, ...). Distinct
/// indices denote distinct operations of the same element.
struct OpRef {
  std::string element;
  std::int64_t instance = 0;
  std::size_t line = 0;

  friend bool operator==(const OpRef&, const OpRef&) = default;
};

/// One chain inside a constraint body: a -> b -> c (or a single node).
struct ChainStmt {
  std::vector<OpRef> nodes;
  std::size_t line = 0;
};

/// constraint <name> (periodic|sporadic) (period|separation) <int>
///   deadline <int> { chain* }
struct ConstraintDecl {
  std::string name;
  bool periodic = true;
  std::int64_t period = 1;
  std::int64_t deadline = 1;
  std::vector<ChainStmt> chains;
  std::size_t line = 0;
};

struct SpecFile {
  std::vector<ProcessorDecl> processors;
  std::vector<LinkDecl> links;
  std::vector<ElementDecl> elements;
  std::vector<ChannelDecl> channels;
  std::vector<ConstraintDecl> constraints;
};

}  // namespace rtg::spec
