// compile.hpp — translation from a parsed specification into an
// instance of the graph-based model (the paper's step 2: "translate the
// design specifications into an instance of the formal model for
// resource allocation and other analysis").
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/model.hpp"
#include "map/platform.hpp"
#include "spec/ast.hpp"

namespace rtg::spec {

struct CompileError {
  std::string message;
  std::size_t line = 0;
};

struct CompileResult {
  std::optional<core::GraphModel> model;
  /// Present when the spec declared processors; used by mapped
  /// deployment (map::deploy). Specs without processor/bus/link
  /// declarations compile to a platform-less model exactly as before.
  std::optional<map::Platform> platform;
  std::vector<CompileError> errors;

  [[nodiscard]] bool ok() const { return errors.empty() && model.has_value(); }
};

/// Semantic checks performed:
///  * duplicate element declarations;
///  * channels between undeclared elements;
///  * duplicate constraint names;
///  * constraint bodies referencing undeclared elements;
///  * task-graph edges with no corresponding channel;
///  * cyclic task graphs;
///  * non-positive weights, periods or deadlines;
///  * duplicate processor names, links between undeclared processors,
///    self links, non-positive bandwidths, links without processors,
///    repeated link names with disagreeing bandwidths, buses over
///    fewer than two processors.
[[nodiscard]] CompileResult compile(const SpecFile& file);

/// Convenience: parse + compile in one step; parse errors are reported
/// as compile errors.
[[nodiscard]] CompileResult compile_text(std::string_view text);

}  // namespace rtg::spec
