// lexer.hpp — tokenizer for the requirements specification language.
//
// The paper emphasizes that the end-user specification language is "of
// only secondary importance in so far as it permits a precise
// translation of user requirements into an instance of our graph-based
// model". This DSL is that translation surface — a CONSORT-flavoured
// textual notation:
//
//   # control system
//   element fs weight 2
//   element fx
//   channel fx -> fs
//   constraint X periodic period 20 deadline 20 {
//     fx -> fs
//   }
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rtg::spec {

enum class TokenKind : std::uint8_t {
  kIdent,   // element / keyword / name (keywords resolved by parser)
  kInt,     // non-negative integer literal
  kArrow,   // ->
  kLBrace,  // {
  kRBrace,  // }
  kSemi,    // ;
  kHash,    // #k op-instance suffix is lexed as kHash + kInt
  kEnd,     // end of input
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;     // identifier text or literal digits
  std::int64_t value = 0;  // for kInt
  std::size_t line = 1;
  std::size_t column = 1;
};

/// Lexical error with position information.
struct LexError {
  std::string message;
  std::size_t line = 1;
  std::size_t column = 1;
};

struct LexResult {
  std::vector<Token> tokens;  // always terminated by kEnd on success
  std::vector<LexError> errors;

  [[nodiscard]] bool ok() const { return errors.empty(); }
};

/// Tokenizes the input. Comments run from '#' preceded by whitespace or
/// line start to end of line; '#' directly after an identifier
/// introduces an instance suffix instead.
[[nodiscard]] LexResult lex(std::string_view input);

/// Human-readable token-kind name for diagnostics.
[[nodiscard]] std::string_view token_kind_name(TokenKind kind);

}  // namespace rtg::spec
