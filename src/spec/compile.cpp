#include "spec/compile.hpp"

#include <map>
#include <set>

#include "graph/algorithms.hpp"
#include "spec/parser.hpp"

namespace rtg::spec {

CompileResult compile(const SpecFile& file) {
  CompileResult result;
  auto fail = [&result](std::string message, std::size_t line) {
    result.errors.push_back(CompileError{std::move(message), line});
  };

  core::CommGraph comm;
  for (const ElementDecl& decl : file.elements) {
    if (comm.find(decl.name)) {
      fail("duplicate element '" + decl.name + "'", decl.line);
      continue;
    }
    if (decl.weight < 1) {
      fail("element '" + decl.name + "' has non-positive weight", decl.line);
      continue;
    }
    comm.add_element(decl.name, decl.weight, decl.pipelinable);
  }

  for (const ChannelDecl& decl : file.channels) {
    for (std::size_t i = 0; i + 1 < decl.path.size(); ++i) {
      const auto from = comm.find(decl.path[i]);
      const auto to = comm.find(decl.path[i + 1]);
      if (!from) {
        fail("channel references undeclared element '" + decl.path[i] + "'", decl.line);
        continue;
      }
      if (!to) {
        fail("channel references undeclared element '" + decl.path[i + 1] + "'",
             decl.line);
        continue;
      }
      if (*from == *to) {
        fail("self channel on '" + decl.path[i] + "'", decl.line);
        continue;
      }
      comm.add_channel(*from, *to);
    }
  }

  if (!result.errors.empty()) return result;

  core::GraphModel model(std::move(comm));
  std::set<std::string> constraint_names;

  for (const ConstraintDecl& decl : file.constraints) {
    if (!constraint_names.insert(decl.name).second) {
      fail("duplicate constraint '" + decl.name + "'", decl.line);
      continue;
    }
    if (decl.period < 1) {
      fail("constraint '" + decl.name + "': non-positive period/separation", decl.line);
      continue;
    }
    if (decl.deadline < 1) {
      fail("constraint '" + decl.name + "': non-positive deadline", decl.line);
      continue;
    }

    core::TaskGraph tg;
    std::map<std::pair<std::string, std::int64_t>, core::OpId> ops;
    bool body_ok = true;
    auto intern = [&](const OpRef& ref) -> std::optional<core::OpId> {
      const auto key = std::make_pair(ref.element, ref.instance);
      auto it = ops.find(key);
      if (it != ops.end()) return it->second;
      const auto elem = model.comm().find(ref.element);
      if (!elem) {
        fail("constraint '" + decl.name + "' references undeclared element '" +
             ref.element + "'", ref.line);
        return std::nullopt;
      }
      const core::OpId op = tg.add_op(*elem);
      ops.emplace(key, op);
      return op;
    };

    for (const ChainStmt& chain : decl.chains) {
      core::OpId prev = graph::kInvalidNode;
      for (const OpRef& ref : chain.nodes) {
        const auto op = intern(ref);
        if (!op) {
          body_ok = false;
          break;
        }
        if (prev != graph::kInvalidNode) {
          const core::ElementId from = tg.label(prev);
          const core::ElementId to = tg.label(*op);
          if (!model.comm().has_channel(from, to)) {
            fail("constraint '" + decl.name + "': no channel " +
                 model.comm().name(from) + " -> " + model.comm().name(to),
                 ref.line);
            body_ok = false;
            break;
          }
          tg.add_dep(prev, *op);
        }
        prev = *op;
      }
      if (!body_ok) break;
    }
    if (!body_ok) continue;
    if (tg.empty()) {
      fail("constraint '" + decl.name + "' has an empty body", decl.line);
      continue;
    }
    if (!graph::is_acyclic(tg.skeleton())) {
      fail("constraint '" + decl.name + "' has a cyclic task graph", decl.line);
      continue;
    }

    core::TimingConstraint constraint;
    constraint.name = decl.name;
    constraint.task_graph = std::move(tg);
    constraint.period = decl.period;
    constraint.deadline = decl.deadline;
    constraint.kind = decl.periodic ? core::ConstraintKind::kPeriodic
                                    : core::ConstraintKind::kAsynchronous;
    model.add_constraint(std::move(constraint));
  }

  if (!result.errors.empty()) return result;
  result.model = std::move(model);
  return result;
}

CompileResult compile_text(std::string_view text) {
  const ParseResult parsed = parse(text);
  if (!parsed.ok()) {
    CompileResult result;
    for (const ParseError& e : parsed.errors) {
      result.errors.push_back(CompileError{e.message, e.line});
    }
    return result;
  }
  return compile(parsed.file);
}

}  // namespace rtg::spec
