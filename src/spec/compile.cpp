#include "spec/compile.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

#include "graph/algorithms.hpp"
#include "spec/parser.hpp"

namespace rtg::spec {

namespace {

// Builds the platform from processor/bus/link declarations. Repeated
// `link` lines with one name merge routes into a single link (bandwidth
// must agree); `bus` expands to every ordered processor pair. Link
// order follows first appearance so emit/compile round-trips preserve
// route() tie-breaking.
std::optional<map::Platform> compile_platform(
    const SpecFile& file,
    const std::function<void(std::string, std::size_t)>& fail) {
  if (file.processors.empty()) {
    if (!file.links.empty()) {
      fail("'" + file.links.front().name + "' declared without processors",
           file.links.front().line);
    }
    return std::nullopt;
  }

  map::Platform plat;
  std::map<std::string, map::ProcId> proc_ids;
  for (const ProcessorDecl& decl : file.processors) {
    if (!proc_ids.emplace(decl.name, plat.processor_names.size()).second) {
      fail("duplicate processor '" + decl.name + "'", decl.line);
      continue;
    }
    plat.processor_names.push_back(decl.name);
  }

  std::map<std::string, std::size_t> link_ids;
  for (const LinkDecl& decl : file.links) {
    if (decl.bandwidth < 1) {
      fail((decl.bus ? "bus '" : "link '") + decl.name +
               "' has non-positive bandwidth",
           decl.line);
      continue;
    }
    const auto [it, fresh] = link_ids.emplace(decl.name, plat.links.size());
    if (fresh) {
      map::Link link;
      link.name = decl.name;
      link.bandwidth = decl.bandwidth;
      plat.links.push_back(std::move(link));
    }
    map::Link& link = plat.links[it->second];
    if (!fresh && link.bandwidth != decl.bandwidth) {
      fail("link '" + decl.name + "' redeclared with bandwidth " +
               std::to_string(decl.bandwidth) + " (was " +
               std::to_string(link.bandwidth) + ")",
           decl.line);
      continue;
    }
    if (decl.bus) {
      if (!fresh) {
        fail("bus '" + decl.name + "' redeclared", decl.line);
        continue;
      }
      if (plat.processor_names.size() < 2) {
        fail("bus '" + decl.name + "' needs at least two processors", decl.line);
        continue;
      }
      for (map::ProcId a = 0; a < plat.processor_names.size(); ++a) {
        for (map::ProcId b = 0; b < plat.processor_names.size(); ++b) {
          if (a != b) link.routes.emplace_back(a, b);
        }
      }
      continue;
    }
    const auto from = proc_ids.find(decl.from);
    const auto to = proc_ids.find(decl.to);
    if (from == proc_ids.end()) {
      fail("link '" + decl.name + "' references undeclared processor '" +
               decl.from + "'",
           decl.line);
      continue;
    }
    if (to == proc_ids.end()) {
      fail("link '" + decl.name + "' references undeclared processor '" +
               decl.to + "'",
           decl.line);
      continue;
    }
    if (from->second == to->second) {
      fail("link '" + decl.name + "' connects '" + decl.from + "' to itself",
           decl.line);
      continue;
    }
    link.routes.emplace_back(from->second, to->second);
  }

  for (map::Link& link : plat.links) {
    std::sort(link.routes.begin(), link.routes.end());
    link.routes.erase(std::unique(link.routes.begin(), link.routes.end()),
                      link.routes.end());
  }
  return plat;
}

}  // namespace

CompileResult compile(const SpecFile& file) {
  CompileResult result;
  auto fail = [&result](std::string message, std::size_t line) {
    result.errors.push_back(CompileError{std::move(message), line});
  };

  result.platform = compile_platform(file, fail);

  core::CommGraph comm;
  for (const ElementDecl& decl : file.elements) {
    if (comm.find(decl.name)) {
      fail("duplicate element '" + decl.name + "'", decl.line);
      continue;
    }
    if (decl.weight < 1) {
      fail("element '" + decl.name + "' has non-positive weight", decl.line);
      continue;
    }
    comm.add_element(decl.name, decl.weight, decl.pipelinable);
  }

  for (const ChannelDecl& decl : file.channels) {
    for (std::size_t i = 0; i + 1 < decl.path.size(); ++i) {
      const auto from = comm.find(decl.path[i]);
      const auto to = comm.find(decl.path[i + 1]);
      if (!from) {
        fail("channel references undeclared element '" + decl.path[i] + "'", decl.line);
        continue;
      }
      if (!to) {
        fail("channel references undeclared element '" + decl.path[i + 1] + "'",
             decl.line);
        continue;
      }
      if (*from == *to) {
        fail("self channel on '" + decl.path[i] + "'", decl.line);
        continue;
      }
      comm.add_channel(*from, *to);
    }
  }

  if (!result.errors.empty()) return result;

  core::GraphModel model(std::move(comm));
  std::set<std::string> constraint_names;

  for (const ConstraintDecl& decl : file.constraints) {
    if (!constraint_names.insert(decl.name).second) {
      fail("duplicate constraint '" + decl.name + "'", decl.line);
      continue;
    }
    if (decl.period < 1) {
      fail("constraint '" + decl.name + "': non-positive period/separation", decl.line);
      continue;
    }
    if (decl.deadline < 1) {
      fail("constraint '" + decl.name + "': non-positive deadline", decl.line);
      continue;
    }

    core::TaskGraph tg;
    std::map<std::pair<std::string, std::int64_t>, core::OpId> ops;
    bool body_ok = true;
    auto intern = [&](const OpRef& ref) -> std::optional<core::OpId> {
      const auto key = std::make_pair(ref.element, ref.instance);
      auto it = ops.find(key);
      if (it != ops.end()) return it->second;
      const auto elem = model.comm().find(ref.element);
      if (!elem) {
        fail("constraint '" + decl.name + "' references undeclared element '" +
             ref.element + "'", ref.line);
        return std::nullopt;
      }
      const core::OpId op = tg.add_op(*elem);
      ops.emplace(key, op);
      return op;
    };

    for (const ChainStmt& chain : decl.chains) {
      core::OpId prev = graph::kInvalidNode;
      for (const OpRef& ref : chain.nodes) {
        const auto op = intern(ref);
        if (!op) {
          body_ok = false;
          break;
        }
        if (prev != graph::kInvalidNode) {
          const core::ElementId from = tg.label(prev);
          const core::ElementId to = tg.label(*op);
          if (!model.comm().has_channel(from, to)) {
            fail("constraint '" + decl.name + "': no channel " +
                 model.comm().name(from) + " -> " + model.comm().name(to),
                 ref.line);
            body_ok = false;
            break;
          }
          tg.add_dep(prev, *op);
        }
        prev = *op;
      }
      if (!body_ok) break;
    }
    if (!body_ok) continue;
    if (tg.empty()) {
      fail("constraint '" + decl.name + "' has an empty body", decl.line);
      continue;
    }
    if (!graph::is_acyclic(tg.skeleton())) {
      fail("constraint '" + decl.name + "' has a cyclic task graph", decl.line);
      continue;
    }

    core::TimingConstraint constraint;
    constraint.name = decl.name;
    constraint.task_graph = std::move(tg);
    constraint.period = decl.period;
    constraint.deadline = decl.deadline;
    constraint.kind = decl.periodic ? core::ConstraintKind::kPeriodic
                                    : core::ConstraintKind::kAsynchronous;
    model.add_constraint(std::move(constraint));
  }

  if (!result.errors.empty()) return result;
  result.model = std::move(model);
  return result;
}

CompileResult compile_text(std::string_view text) {
  const ParseResult parsed = parse(text);
  if (!parsed.ok()) {
    CompileResult result;
    for (const ParseError& e : parsed.errors) {
      result.errors.push_back(CompileError{e.message, e.line});
    }
    return result;
  }
  return compile(parsed.file);
}

}  // namespace rtg::spec
