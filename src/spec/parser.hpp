// parser.hpp — recursive-descent parser for the specification language.
//
// Grammar (keywords are ordinary identifiers resolved positionally):
//   spec        := stmt*
//   stmt        := element_decl | channel_decl | constraint_decl
//   element_decl:= "element" IDENT ("weight" INT)? ("nopipeline")?
//   channel_decl:= "channel" IDENT ("->" IDENT)+
//   constraint  := "constraint" IDENT ("periodic"|"sporadic")
//                  ("period"|"separation") INT "deadline" INT
//                  "{" chain* "}"
//   chain       := opref ("->" opref)* ";"?
//   opref       := IDENT ("#" INT)?
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "spec/ast.hpp"
#include "spec/lexer.hpp"

namespace rtg::spec {

struct ParseError {
  std::string message;
  std::size_t line = 1;
  std::size_t column = 1;
};

struct ParseResult {
  SpecFile file;
  std::vector<ParseError> errors;

  [[nodiscard]] bool ok() const { return errors.empty(); }
};

/// Parses a full specification. Lexical errors are folded into the
/// parse errors. Recovery: on error, skip to the next statement keyword
/// so multiple diagnostics can be reported in one pass.
[[nodiscard]] ParseResult parse(std::string_view input);

}  // namespace rtg::spec
