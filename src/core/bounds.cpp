#include "core/bounds.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "graph/algorithms.hpp"

namespace rtg::core {

Time task_graph_critical_path(const TaskGraph& tg, const CommGraph& comm) {
  // Rebuild the skeleton with element weights to reuse the DAG longest
  // path.
  graph::Digraph weighted;
  for (OpId op = 0; op < tg.size(); ++op) {
    weighted.add_node(comm.weight(tg.label(op)));
  }
  for (const graph::Edge& e : tg.skeleton().edges()) {
    weighted.add_edge(e.from, e.to);
  }
  return graph::critical_path_weight(weighted);
}

namespace {

// The longest span one execution can "cover", i.e. the sound
// per-execution window for the rate bound:
//  * asynchronous: disjoint windows of length d each need their own
//    execution -> rate >= 1/d;
//  * periodic with d <= p: invocation windows are disjoint -> 1/p;
//  * periodic with d > p: one execution can serve up to floor(d/p)+1
//    overlapping invocation windows -> rate >= 1/(p+d).
Time demand_window(const TimingConstraint& c) {
  if (!c.periodic()) return c.deadline;
  return c.deadline <= c.period ? c.period : c.period + c.deadline;
}

}  // namespace

double demand_density(const GraphModel& model) {
  // rate(e) = max over constraints of (ops of e in C_i) / window_i.
  std::vector<double> rate(model.comm().size(), 0.0);
  for (const TimingConstraint& c : model.constraints()) {
    std::unordered_map<ElementId, std::size_t> count;
    for (ElementId e : c.task_graph.labels()) ++count[e];
    const double window = static_cast<double>(demand_window(c));
    for (const auto& [e, cnt] : count) {
      rate[e] = std::max(rate[e], static_cast<double>(cnt) / window);
    }
  }
  double density = 0.0;
  for (ElementId e = 0; e < model.comm().size(); ++e) {
    density += static_cast<double>(model.comm().weight(e)) * rate[e];
  }
  return density;
}

std::vector<InfeasibilityWitness> refute_feasibility(const GraphModel& model) {
  std::vector<InfeasibilityWitness> witnesses;
  for (std::size_t i = 0; i < model.constraint_count(); ++i) {
    const TimingConstraint& c = model.constraint(i);
    const Time cp = task_graph_critical_path(c.task_graph, model.comm());
    if (cp > c.deadline) {
      InfeasibilityWitness w;
      w.kind = InfeasibilityWitness::Kind::kCriticalPath;
      w.constraint = i;
      w.detail = "critical path " + std::to_string(cp) + " > deadline " +
                 std::to_string(c.deadline);
      witnesses.push_back(std::move(w));
    }
    const Time total = c.task_graph.computation_time(model.comm());
    if (total > c.deadline) {
      InfeasibilityWitness w;
      w.kind = InfeasibilityWitness::Kind::kWindowCapacity;
      w.constraint = i;
      w.detail = "computation time " + std::to_string(total) + " > deadline " +
                 std::to_string(c.deadline);
      witnesses.push_back(std::move(w));
    }
  }
  const double density = demand_density(model);
  if (density > 1.0 + 1e-9) {
    InfeasibilityWitness w;
    w.kind = InfeasibilityWitness::Kind::kDemandDensity;
    std::ostringstream os;
    os << "element demand density " << density << " > 1";
    w.detail = os.str();
    witnesses.push_back(std::move(w));
  }
  return witnesses;
}

std::string to_string(const InfeasibilityWitness& witness, const GraphModel& model) {
  std::string out;
  switch (witness.kind) {
    case InfeasibilityWitness::Kind::kCriticalPath:
      out = "critical-path violation";
      break;
    case InfeasibilityWitness::Kind::kWindowCapacity:
      out = "window-capacity violation";
      break;
    case InfeasibilityWitness::Kind::kDemandDensity:
      out = "demand-density violation";
      break;
  }
  if (witness.constraint != static_cast<std::size_t>(-1)) {
    out += " in constraint '" + model.constraint(witness.constraint).name + "'";
  }
  out += ": " + witness.detail;
  return out;
}

}  // namespace rtg::core
