// optimize.hpp — post-synthesis schedule optimization.
//
// The constructive scheduler (core/heuristic) over-provisions by
// design: asynchronous servers poll at twice the necessary rate and
// every server instance executes its whole task graph even when a
// neighbouring instance's work would have served the same windows.
// These passes shrink a verified schedule while preserving
// feasibility — every candidate transformation is accepted only if the
// exact verifier still passes (generate-and-test, so the passes are
// trivially sound):
//
//   * compact_schedule: greedily delete whole executions whose removal
//     keeps the schedule feasible (removes duplicated shared work and
//     over-polling);
//   * trim_idle: shorten idle runs (and thereby the cycle) while
//     feasibility holds;
//   * find_feasible_rotation: latency is rotation-invariant but
//     periodic invocation windows are phase-sensitive; searches the
//     rotations of a schedule for one that verifies.
#pragma once

#include <cstddef>
#include <optional>

#include "core/latency.hpp"
#include "core/model.hpp"
#include "core/static_schedule.hpp"

namespace rtg::core {

struct OptimizeStats {
  std::size_t executions_removed = 0;
  Time idle_removed = 0;
  Time length_before = 0;
  Time length_after = 0;
  double utilization_before = 0.0;
  double utilization_after = 0.0;
  /// Verification-engine counters accumulated across the pass. The
  /// compact loop runs on the IncrementalVerifier, so incremental_hits
  /// counts windows served from cached witnesses instead of re-verified.
  VerifyStats verify;
};

/// Greedy execution removal: repeatedly tries to drop one execution
/// (replacing it with idle time) and keeps the drop if verify_schedule
/// still passes. Deterministic scan order; O(ops^2) verifications.
/// Requires a schedule that verifies to begin with (throws otherwise).
[[nodiscard]] StaticSchedule compact_schedule(const StaticSchedule& sched,
                                              const GraphModel& model,
                                              OptimizeStats* stats = nullptr);

/// Shrinks idle runs one slot at a time while the schedule stays
/// feasible. Shortening the cycle can only reduce asynchronous
/// latencies but can break periodic phase alignment, hence the
/// verification per step.
[[nodiscard]] StaticSchedule trim_idle(const StaticSchedule& sched,
                                       const GraphModel& model,
                                       OptimizeStats* stats = nullptr);

/// Runs compact_schedule then trim_idle to a fixed point (at most
/// `max_rounds` rounds).
[[nodiscard]] StaticSchedule optimize_schedule(const StaticSchedule& sched,
                                               const GraphModel& model,
                                               OptimizeStats* stats = nullptr,
                                               std::size_t max_rounds = 4);

/// Tries every rotation of the schedule (entry-boundary cuts) and
/// returns the first that verifies against the model, or nullopt.
[[nodiscard]] std::optional<StaticSchedule> find_feasible_rotation(
    const StaticSchedule& sched, const GraphModel& model);

}  // namespace rtg::core
