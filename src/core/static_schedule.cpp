#include "core/static_schedule.hpp"

#include <stdexcept>

namespace rtg::core {

void StaticSchedule::push_execution(ElementId e, Time duration) {
  if (e == kIdleEntry) {
    throw std::invalid_argument("StaticSchedule::push_execution: idle sentinel");
  }
  if (duration < 1) {
    throw std::invalid_argument("StaticSchedule::push_execution: duration < 1");
  }
  entries_.push_back(ScheduleEntry{e, duration});
  length_ += duration;
  busy_ += duration;
}

void StaticSchedule::push_idle(Time count) {
  if (count < 1) {
    throw std::invalid_argument("StaticSchedule::push_idle: count < 1");
  }
  if (!entries_.empty() && entries_.back().elem == kIdleEntry) {
    entries_.back().duration += count;
  } else {
    entries_.push_back(ScheduleEntry{kIdleEntry, count});
  }
  length_ += count;
}

double StaticSchedule::utilization() const {
  if (length_ == 0) return 0.0;
  return static_cast<double>(busy_) / static_cast<double>(length_);
}

std::vector<ScheduledOp> StaticSchedule::ops() const {
  std::vector<ScheduledOp> result;
  Time t = 0;
  for (const ScheduleEntry& entry : entries_) {
    if (entry.elem != kIdleEntry) {
      result.push_back(ScheduledOp{entry.elem, t, entry.duration});
    }
    t += entry.duration;
  }
  return result;
}

std::vector<ScheduledOp> StaticSchedule::ops_of(ElementId e) const {
  std::vector<ScheduledOp> result;
  for (const ScheduledOp& op : ops()) {
    if (op.elem == e) result.push_back(op);
  }
  return result;
}

sim::ExecutionTrace StaticSchedule::to_trace(std::size_t repetitions) const {
  sim::ExecutionTrace trace;
  for (std::size_t r = 0; r < repetitions; ++r) {
    for (const ScheduleEntry& entry : entries_) {
      if (entry.elem == kIdleEntry) {
        trace.append_idle(static_cast<std::size_t>(entry.duration));
      } else {
        trace.append_run(static_cast<sim::Slot>(entry.elem),
                         static_cast<std::size_t>(entry.duration));
      }
    }
  }
  return trace;
}

std::vector<std::string> StaticSchedule::validate(const CommGraph& g) const {
  std::vector<std::string> diags;
  for (const ScheduleEntry& entry : entries_) {
    if (entry.elem == kIdleEntry) continue;
    if (!g.has_element(entry.elem)) {
      diags.push_back("unknown element id " + std::to_string(entry.elem));
      continue;
    }
    if (entry.duration != g.weight(entry.elem)) {
      diags.push_back("execution of '" + g.name(entry.elem) + "' takes " +
                      std::to_string(entry.duration) + " slots but weight is " +
                      std::to_string(g.weight(entry.elem)));
    }
  }
  return diags;
}

std::string StaticSchedule::to_string(const CommGraph& g) const {
  std::string out;
  for (const ScheduleEntry& entry : entries_) {
    if (!out.empty()) out.push_back(' ');
    if (entry.elem == kIdleEntry) {
      for (Time i = 0; i < entry.duration; ++i) {
        if (i > 0) out.push_back(' ');
        out.push_back('.');
      }
    } else {
      out += g.has_element(entry.elem) ? g.name(entry.elem)
                                       : "e" + std::to_string(entry.elem);
      if (entry.duration > 1) {
        out += "[" + std::to_string(entry.duration) + "]";
      }
    }
  }
  return out;
}

}  // namespace rtg::core
