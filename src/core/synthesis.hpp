// synthesis.hpp — process-based synthesis (the paper's baseline).
//
// "A straightforward way to implement an instance of our graph-based
// model is to map each periodic/asynchronous timing constraint (C,p,d)
// into a periodic/asynchronous process T' where the body of T' consists
// of a straight-line program which is any topological sort of the
// operations in the task graph C. [...] In order to enforce pipeline
// ordering, we create a monitor for each functional element that occurs
// in two or more timing constraints."
//
// This module performs exactly that translation, producing an rt::
// TaskSet (with monitor critical-section blocking terms) that the
// process-model substrate can analyze and simulate. The paper's point —
// which experiment E5 quantifies — is that this duplicates work shared
// between constraints (two constraints containing f_S each execute
// their own copy), whereas latency scheduling shares it.
#pragma once

#include <string>
#include <vector>

#include "core/model.hpp"
#include "rt/task.hpp"

namespace rtg::core {

/// A synthesized straight-line process.
struct SynthesizedProcess {
  std::string name;
  /// Operation body: functional elements in topological-sort order.
  std::vector<ElementId> body;
  Time computation = 0;
  Time period = 1;
  Time deadline = 1;
  ConstraintKind kind = ConstraintKind::kPeriodic;
  /// Elements of the body that are monitor-protected (shared).
  std::vector<ElementId> monitored;
};

struct ProcessSynthesis {
  /// The model the processes were synthesized from (the pipelined
  /// rewrite when software_pipelining was requested); all ElementIds in
  /// the process bodies refer to this model's communication graph.
  GraphModel model;
  std::vector<SynthesizedProcess> processes;
  /// Shared elements for which monitors were created.
  std::vector<ElementId> monitors;
  /// Process task set for rt-layer analysis; critical_section of each
  /// task is the weight of its longest monitor-protected element.
  rt::TaskSet task_set;
  /// Total busy slots per hyperperiod under the process model, counting
  /// every constraint's private copy of shared work (asynchronous
  /// constraints charged at their maximum rate).
  Time work_per_hyperperiod = 0;
  Time hyperperiod = 1;
};

/// Translates every timing constraint into a straight-line process.
/// When `software_pipelining` is set, the model is pipelined first, so
/// monitor critical sections shrink to unit length.
[[nodiscard]] ProcessSynthesis synthesize_processes(const GraphModel& model,
                                                    bool software_pipelining = false);

}  // namespace rtg::core
