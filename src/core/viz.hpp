// viz.hpp — inspection renderings: the CONSORT lineage of the paper
// had a graphics interface; these are this library's equivalents for
// terminals and Graphviz.
#pragma once

#include <string>

#include "core/model.hpp"
#include "core/static_schedule.hpp"

namespace rtg::core {

/// DOT rendering of a task graph: nodes labelled with their functional
/// elements (and #k disambiguators for repeated labels), edges the
/// precedence/transmission arcs.
[[nodiscard]] std::string task_graph_dot(const TaskGraph& tg, const CommGraph& comm,
                                         const std::string& name = "C");

/// DOT rendering of a whole model: the communication graph plus one
/// dashed record per timing constraint summarizing (kind, p, d).
[[nodiscard]] std::string model_dot(const GraphModel& model,
                                    const std::string& name = "M");

/// ASCII Gantt chart of one schedule period: one row per element, '#'
/// for its busy slots, '.' elsewhere, with a slot ruler. Rows appear in
/// element-id order; elements that never run are omitted.
///
///   fx   |#...#...|
///   fs/0 |.#...#..|
[[nodiscard]] std::string schedule_gantt(const StaticSchedule& sched,
                                         const CommGraph& comm);

}  // namespace rtg::core
