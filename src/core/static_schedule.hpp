// static_schedule.hpp — static schedules (finite strings over V ∪ {φ}).
//
// The paper defines a static schedule as a finite string of symbols in
// V ∪ {φ}; a round-robin scheduler repeats it ad infinitum to produce
// an execution trace. Because an element of weight w needs w consecutive
// slots to constitute one *execution*, this representation stores the
// string with explicit execution boundaries: a sequence of entries, each
// either one complete execution of an element (occupying weight(e)
// slots) or a run of idle slots. The raw slot string is derived.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "sim/trace.hpp"

namespace rtg::core {

/// One entry of a static schedule.
struct ScheduleEntry {
  /// Element executed, or kIdleEntry for an idle run.
  ElementId elem = graph::kInvalidNode;
  /// Slots occupied. For executions this must equal weight(elem); for
  /// idle runs any positive count.
  Time duration = 1;

  friend bool operator==(const ScheduleEntry&, const ScheduleEntry&) = default;
};

inline constexpr ElementId kIdleEntry = graph::kInvalidNode;

/// A complete execution instance within the flattened schedule, with its
/// absolute start slot (relative to the start of one schedule period).
struct ScheduledOp {
  ElementId elem = 0;
  Time start = 0;
  Time duration = 1;

  [[nodiscard]] Time finish() const { return start + duration; }
  friend bool operator==(const ScheduledOp&, const ScheduledOp&) = default;
};

class StaticSchedule {
 public:
  StaticSchedule() = default;

  /// Appends one complete execution of `e` taking `duration` slots.
  void push_execution(ElementId e, Time duration);
  /// Appends `count` idle slots (merged with a trailing idle run).
  void push_idle(Time count = 1);

  [[nodiscard]] const std::vector<ScheduleEntry>& entries() const { return entries_; }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// Total length in slots (the schedule period).
  [[nodiscard]] Time length() const { return length_; }

  /// Busy (non-idle) slots.
  [[nodiscard]] Time busy() const { return busy_; }

  /// Fraction of busy slots; 0 for an empty schedule.
  [[nodiscard]] double utilization() const;

  /// All executions with their start slots within one period, in order.
  [[nodiscard]] std::vector<ScheduledOp> ops() const;

  /// Executions of a specific element within one period.
  [[nodiscard]] std::vector<ScheduledOp> ops_of(ElementId e) const;

  /// Flattens `repetitions` periods into a raw slot trace.
  [[nodiscard]] sim::ExecutionTrace to_trace(std::size_t repetitions = 1) const;

  /// Validates against a communication graph: every execution's element
  /// exists and its duration equals the element weight. Returns
  /// diagnostics; empty means valid.
  [[nodiscard]] std::vector<std::string> validate(const CommGraph& g) const;

  /// Human-readable rendering, e.g. "fx fs[2] . . fk".
  [[nodiscard]] std::string to_string(const CommGraph& g) const;

  friend bool operator==(const StaticSchedule&, const StaticSchedule&) = default;

 private:
  std::vector<ScheduleEntry> entries_;
  Time length_ = 0;
  Time busy_ = 0;
};

}  // namespace rtg::core
