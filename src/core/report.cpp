#include "core/report.hpp"

#include <sstream>

namespace rtg::core {

ModelAnalysis analyze_model(const GraphModel& model) {
  ModelAnalysis out;
  out.deadline_utilization = model.deadline_utilization();
  out.demand_density = demand_density(model);
  out.theorem3 = model.satisfies_theorem3();
  out.refutations = refute_feasibility(model);

  for (std::size_t i = 0; i < model.constraint_count(); ++i) {
    const TimingConstraint& c = model.constraint(i);
    ConstraintAnalysis ca;
    ca.index = i;
    ca.name = c.name;
    ca.computation = c.task_graph.computation_time(model.comm());
    ca.critical_path = task_graph_critical_path(c.task_graph, model.comm());
    ca.deadline = c.deadline;
    ca.density = static_cast<double>(ca.computation) / static_cast<double>(c.deadline);
    ca.half_deadline_ok = c.deadline / 2 >= ca.computation;
    ca.pipelinable = true;
    for (ElementId e : c.task_graph.labels()) {
      if (model.comm().weight(e) > 1 && !model.comm().pipelinable(e)) {
        ca.pipelinable = false;
      }
    }
    out.constraints.push_back(std::move(ca));
  }

  if (!out.refutations.empty()) {
    out.advice = EngineAdvice::kInfeasible;
  } else if (out.theorem3) {
    out.advice = EngineAdvice::kHeuristic;
  } else if (out.deadline_utilization <= 0.5 + 1e-9) {
    // Under the utilization bound but some other hypothesis missing
    // (tight half-deadline or non-pipelinable weights).
    out.advice = EngineAdvice::kHeuristicLikely;
  } else {
    // Dense: the heuristic's doubled server rate will overflow; the
    // exact game is the only complete tool (and only practical when
    // deadlines are small).
    out.advice = EngineAdvice::kExactGame;
  }
  return out;
}

std::string render_analysis(const ModelAnalysis& analysis, const GraphModel& model) {
  std::ostringstream os;
  os << "model analysis: " << model.comm().size() << " elements, "
     << analysis.constraints.size() << " constraints\n";
  os << "  sum w/d = " << analysis.deadline_utilization
     << ", demand density >= " << analysis.demand_density << "\n";
  os << "  theorem 3 hypotheses: " << (analysis.theorem3 ? "satisfied" : "NOT satisfied")
     << "\n";
  for (const ConstraintAnalysis& ca : analysis.constraints) {
    os << "  " << ca.name << ": w=" << ca.computation << " cp=" << ca.critical_path
       << " d=" << ca.deadline << " w/d=" << ca.density
       << (ca.half_deadline_ok ? "" : " [floor(d/2) < w]")
       << (ca.pipelinable ? "" : " [non-pipelinable weight]") << "\n";
  }
  for (const InfeasibilityWitness& w : analysis.refutations) {
    os << "  REFUTED: " << to_string(w, model) << "\n";
  }
  os << "  advice: ";
  switch (analysis.advice) {
    case EngineAdvice::kHeuristic:
      os << "constructive heuristic (guaranteed by Theorem 3)";
      break;
    case EngineAdvice::kHeuristicLikely:
      os << "constructive heuristic (outside Theorem 3; verify the result)";
      break;
    case EngineAdvice::kExactGame:
      os << "exact simulation game (dense set; expect exponential search)";
      break;
    case EngineAdvice::kInfeasible:
      os << "infeasible — revise the requirements";
      break;
  }
  os << "\n";
  return os.str();
}

}  // namespace rtg::core
