// network.hpp — point-to-point communication-network scheduling.
//
// core/multiproc models the network as a single shared TDMA bus. This
// module generalizes it to arbitrary link topologies — mesh, ring,
// star — which is the full version of the paper's "similar-looking
// problem for scheduling the communication network":
//
//   * a NetworkTopology is a digraph over processors; messages route
//     along shortest paths (BFS, deterministic tie-break);
//   * every link runs its own TDMA cycle: one slot per (element
//     channel, hop) that traverses it, so hops on different links
//     proceed in parallel and a hop waits at most one cycle of its own
//     link;
//   * a cross-processor task-graph edge u -> v becomes a multi-hop
//     message: hop i may start only after hop i-1 arrives, in its
//     link's slot for that channel;
//   * end-to-end verification extends the distributed embedding search
//     of multiproc_latency with per-hop message timing.
//
// Pipeline ordering of transmissions holds per construction: each
// (channel, hop) owns one slot per cycle of its link, so successive
// messages on a channel traverse every hop in FIFO order.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/heuristic.hpp"
#include "core/model.hpp"
#include "core/multiproc.hpp"  // PartitionStrategy
#include "core/static_schedule.hpp"

namespace rtg::core {

/// A directed communication link between two processors.
struct NetworkLink {
  std::size_t from = 0;
  std::size_t to = 0;

  friend bool operator==(const NetworkLink&, const NetworkLink&) = default;
};

/// Processor interconnect topology.
class NetworkTopology {
 public:
  explicit NetworkTopology(std::size_t processors);

  [[nodiscard]] std::size_t processors() const { return n_; }

  /// Adds a directed link a -> b; returns false if already present.
  bool add_link(std::size_t a, std::size_t b);
  /// Adds links in both directions.
  void add_duplex(std::size_t a, std::size_t b);

  [[nodiscard]] bool has_link(std::size_t a, std::size_t b) const;
  [[nodiscard]] std::vector<NetworkLink> links() const;

  /// Shortest processor path from a to b (inclusive endpoints), BFS
  /// with smallest-id tie-break; nullopt if unreachable. route(a, a)
  /// is {a}.
  [[nodiscard]] std::optional<std::vector<std::size_t>> route(std::size_t a,
                                                              std::size_t b) const;

  /// Prefabricated shapes.
  [[nodiscard]] static NetworkTopology full_mesh(std::size_t processors);
  [[nodiscard]] static NetworkTopology ring(std::size_t processors);  ///< duplex ring
  [[nodiscard]] static NetworkTopology star(std::size_t processors);  ///< hub = 0

 private:
  std::size_t n_;
  std::vector<std::vector<std::size_t>> adj_;
};

/// One reserved slot in a link's TDMA cycle: hop `hop` of the message
/// channel carrying element `from_elem` -> `to_elem` data.
struct LinkSlot {
  ElementId from_elem = 0;
  ElementId to_elem = 0;
  std::size_t hop = 0;

  friend bool operator==(const LinkSlot&, const LinkSlot&) = default;
};

/// TDMA table of one link: slot k of every cycle carries slots[k].
struct LinkSchedule {
  NetworkLink link;
  std::vector<LinkSlot> slots;

  [[nodiscard]] Time cycle() const {
    return static_cast<Time>(slots.empty() ? 1 : slots.size());
  }
};

struct NetworkScheduleResult {
  bool success = false;
  std::string failure_reason;

  GraphModel scheduled_model;            ///< pipelined model
  std::vector<std::size_t> assignment;   ///< element -> processor
  std::vector<StaticSchedule> processor_schedules;
  std::vector<LinkSchedule> link_schedules;
  std::vector<std::optional<Time>> end_to_end_latency;  ///< per constraint
};

struct NetworkOptions {
  PartitionStrategy strategy = PartitionStrategy::kCommunication;
  HeuristicOptions local;
};

/// Decomposed synthesis over an explicit topology: partition,
/// per-processor latency scheduling, per-link TDMA, exact end-to-end
/// verification. Fails when some needed channel has no route.
[[nodiscard]] NetworkScheduleResult network_schedule(const GraphModel& model,
                                                     const NetworkTopology& topology,
                                                     const NetworkOptions& options = {});

/// Exact end-to-end latency of `tg` over per-processor schedules and
/// link TDMA tables (greedy embedding; exact without repeated labels).
/// nullopt = infinite (missing element, route, or link slot).
[[nodiscard]] std::optional<Time> network_latency(
    const TaskGraph& tg, const std::vector<StaticSchedule>& processor_schedules,
    const std::vector<std::size_t>& assignment, const NetworkTopology& topology,
    const std::vector<LinkSchedule>& link_schedules);

}  // namespace rtg::core
