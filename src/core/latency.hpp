// latency.hpp — latency analysis of traces and static schedules.
//
// Central definitions from the paper:
//   * An execution trace F has latency k w.r.t. a timing constraint
//     (C, p, d) iff F contains an execution of C in every time interval
//     of length >= k.
//   * A static schedule L has latency k iff the trace obtained by
//     repeating L round-robin ad infinitum has latency k.
//   * L is feasible w.r.t. the asynchronous constraints T_a iff its
//     latency w.r.t. every (C, p, d) in T_a is at most d.
//
// An *execution of C* inside an interval is an embedding: an injective
// map from C's operations to complete executions in the trace, all
// inside the interval, such that for every edge u -> v of C the image
// of u finishes no later than the image of v starts (the output of u is
// transmitted before v runs).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/model.hpp"
#include "core/static_schedule.hpp"
#include "util/arena.hpp"

namespace rtg::core {

/// Process-wide hot-path layer toggles (E22 ablation). Defaults are the
/// fully optimized configuration; bench_hotpath and the ablation tests
/// flip layers off one at a time to attribute the speedup. The flags
/// are captured when an UnrollIndex / EmbeddingKernel / verify plan is
/// *built*, so flip them only between verifications, never mid-query,
/// and only from one thread (bench/test usage — production code leaves
/// the defaults alone).
struct HotPathConfig {
  /// Structure-of-arrays index columns + pooled plan / query tables.
  bool soa = true;
  /// Per-element occurrence bitset rows + row gates before binary search.
  bool bitset = true;
  /// Bump-arena kernel scratch instead of per-kernel std::vectors.
  bool arena = true;
  /// Measured serial/parallel cutoff instead of the fixed constant.
  bool calibrate = true;
};

[[nodiscard]] HotPathConfig& hotpath_config();

/// Work-unit count below which auto-mode (n_threads == 0) verification
/// stays serial. Resolution order, cached per process on first use:
/// the RTG_SERIAL_CUTOFF environment variable if set; otherwise a
/// one-shot calibration that measures the per-unit cost of a canned
/// serial verify against the cost of spawning a thread pool and picks
/// the crossover; a fixed fallback (256) when HotPathConfig::calibrate
/// is off. See docs/PERF.md.
[[nodiscard]] std::size_t serial_parallel_cutoff();

/// The calibration probe behind serial_parallel_cutoff(), uncached:
/// measures and returns the crossover directly (bench/E22 reporting).
[[nodiscard]] std::size_t calibrate_serial_cutoff();

/// Earliest finish time over all embeddings of `tg` into `ops` whose
/// executions all start at or after `window_begin`. `ops` must be
/// sorted by start time and non-overlapping. Returns nullopt when no
/// embedding exists within the given ops.
///
/// Exact for all task graphs: greedy (provably optimal) when no element
/// labels two ops of `tg`, branch-and-bound otherwise.
[[nodiscard]] std::optional<Time> earliest_embedding_finish(
    const TaskGraph& tg, std::span<const ScheduledOp> ops, Time window_begin);

/// True iff the interval [begin, end) of the given op sequence contains
/// a complete execution of `tg` (every execution inside the interval).
[[nodiscard]] bool window_contains_execution(const TaskGraph& tg,
                                             std::span<const ScheduledOp> ops,
                                             Time begin, Time end);

/// An embedding witness: the finish time plus, per task-graph op (in op
/// id order), the index into `ops` of the execution it mapped to.
struct EmbeddingWitness {
  Time finish = 0;
  std::vector<std::size_t> assignment;
};

/// Like earliest_embedding_finish, but returns the witness and supports
/// an exclusion mask: ops with used[i] == true are unavailable (pass an
/// empty span for no exclusions).
[[nodiscard]] std::optional<EmbeddingWitness> find_earliest_embedding(
    const TaskGraph& tg, std::span<const ScheduledOp> ops, Time window_begin,
    const std::vector<bool>& used = {});

/// Flattens `periods` consecutive repetitions of the schedule into an
/// absolute-time op sequence (period r's ops shifted by r * length).
[[nodiscard]] std::vector<ScheduledOp> unroll_ops(const StaticSchedule& sched,
                                                  std::size_t periods);

/// An indexed *virtual* unroll of a static schedule: one period of ops
/// is materialized, cycle k's copies are derived arithmetically
/// (start + k * period), and a per-element index maps (element, time)
/// to the next execution of that element in O(log occurrences) instead
/// of a linear scan over every op. Global op index i corresponds
/// exactly to unroll_ops(sched, periods)[i], so witness assignments
/// against this view are valid positions into the public unrolled-op
/// sequence.
///
/// Layout (ISSUE 8): the base period is stored as parallel columns
/// (start / duration / element) so the binary searches walk one
/// contiguous Time column; per-element occurrence rows carry their own
/// contiguous start column plus a bitset row (one uint64_t word per 64
/// base ops) whose gates and masks resolve the common probes — window
/// at or before the row's first start, wrap past its last, next
/// occurrence within the same word — before any binary search is paid.
class UnrollIndex {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  UnrollIndex() = default;
  UnrollIndex(const StaticSchedule& sched, std::size_t periods);

  [[nodiscard]] std::size_t periods() const { return periods_; }
  [[nodiscard]] std::size_t ops_per_period() const { return elems_.size(); }
  [[nodiscard]] std::size_t size() const { return elems_.size() * periods_; }
  [[nodiscard]] Time period() const { return period_; }

  /// The op at global index `idx`; equals unroll_ops(sched, periods)[idx].
  [[nodiscard]] ScheduledOp op(std::size_t idx) const {
    const std::size_t b = idx % elems_.size();
    const Time shift = static_cast<Time>(idx / elems_.size()) * period_;
    return ScheduledOp{base_elem(b), base_start(b) + shift, base_duration(b)};
  }

  /// Executions of `e` within one period.
  [[nodiscard]] std::size_t occurrence_count(ElementId e) const;

  /// Base-op indices of `e`'s executions within one period, start order.
  [[nodiscard]] std::span<const std::size_t> occurrences(ElementId e) const;

  /// Column accessors for the base-period op at base index `idx`
  /// (idx < ops_per_period()).
  [[nodiscard]] Time base_start(std::size_t idx) const {
    return aos_.empty() ? starts_[idx] : aos_[idx].start;
  }
  [[nodiscard]] Time base_duration(std::size_t idx) const {
    return aos_.empty() ? durations_[idx] : aos_[idx].duration;
  }
  [[nodiscard]] ElementId base_elem(std::size_t idx) const {
    return aos_.empty() ? elems_[idx] : aos_[idx].elem;
  }
  /// The base-period op at base index `idx`, assembled from the columns.
  [[nodiscard]] ScheduledOp base_op(std::size_t idx) const {
    return ScheduledOp{base_elem(idx), base_start(idx), base_duration(idx)};
  }

  /// Rank of base op `idx` within its element's occurrence row.
  [[nodiscard]] std::size_t occurrence_rank(std::size_t idx) const {
    return occ_rank_[idx];
  }

  /// Global index of the first execution of `e` with start >= t and
  /// index < limit, or npos. `limit` caps the searchable op prefix so a
  /// query over k periods of a longer index behaves exactly like a
  /// query over unroll_ops(sched, k). When `row_skips` is non-null it
  /// is bumped for every call the occurrence-row gates resolved without
  /// a binary search (KernelCounters::bitset_skips).
  [[nodiscard]] std::size_t first_at_or_after(ElementId e, Time t, std::size_t limit,
                                              std::size_t* row_skips = nullptr) const;

  /// Global index of the next execution (start order) of the same
  /// element as op `idx`, below `limit`; npos when exhausted.
  [[nodiscard]] std::size_t next_occurrence(std::size_t idx, std::size_t limit) const;

  /// True iff some execution of `e` in the cyclic extension starts in
  /// [a, b). Resolved from the occurrence bitset row: the window maps
  /// to a base-position range via the shared contiguous start column,
  /// then the element's row words are mask-tested — no per-element
  /// binary search. (Periods-horizon agnostic: answers over the
  /// infinite cyclic trace.)
  [[nodiscard]] bool occupied_in(ElementId e, Time a, Time b) const;

 private:
  [[nodiscard]] std::size_t search_row(std::size_t row_begin, std::size_t row_end,
                                       Time rel) const;
  [[nodiscard]] bool row_has_start_in(std::size_t bucket, Time x, Time y) const;

  // SoA columns of one period, sorted by start (idle entries dropped).
  std::vector<Time> starts_;
  std::vector<Time> durations_;
  std::vector<ElementId> elems_;
  // Ablation only (HotPathConfig::soa == false): the legacy AoS copy;
  // when non-empty, searches and accessors take the indirect path.
  std::vector<ScheduledOp> aos_;

  Time period_ = 0;
  std::size_t periods_ = 0;
  std::size_t elem_count_ = 0;

  // Per-element occurrence rows (CSR over base positions, start order)
  // with a parallel contiguous start column for the binary searches.
  std::vector<std::size_t> occ_offsets_;  // elem -> [begin, end) row bounds
  std::vector<std::size_t> occ_idx_;      // base indices
  std::vector<Time> occ_starts_;          // starts_[occ_idx_[i]]
  std::vector<std::size_t> occ_rank_;     // per base op: rank within its row

  // Occurrence bitset rows: bit p of element e's row is set iff base op
  // p executes e. Empty when HotPathConfig::bitset is off.
  std::size_t words_per_row_ = 0;
  std::vector<std::uint64_t> bits_;
  bool bitset_ = true;  // captured from hotpath_config() at build time
};

/// Counters of one EmbeddingKernel; merged into VerifyStats.
struct KernelCounters {
  /// Embedding queries answered.
  std::size_t queries = 0;
  /// Index probes (first_at_or_after + next_occurrence calls).
  std::size_t index_seeks = 0;
  /// Queries that reused the kernel's scratch arena (no allocation).
  std::size_t arena_reuses = 0;
  /// Index seeks the occurrence-row bitset/metadata resolved without
  /// paying a binary search (first-/last-start gates).
  std::size_t bitset_skips = 0;

  KernelCounters& operator+=(const KernelCounters& o) {
    queries += o.queries;
    index_seeks += o.index_seeks;
    arena_reuses += o.arena_reuses;
    bitset_skips += o.bitset_skips;
    return *this;
  }
};

/// The indexed embedding kernel: binds one task graph to an UnrollIndex
/// and answers earliest-finish embedding queries for arbitrary window
/// begins. Per query each task-graph op costs O(log occurrences) index
/// seeks over *its element's* executions only, instead of a linear scan
/// over every unrolled op. The topological order and all per-query
/// buffers (finish/chosen/used/witness) live in a bump arena — a shared
/// one handed in by the verify engines (kernels of one worker reuse the
/// same warm blocks) or a kernel-private one — so repeated window
/// queries allocate nothing.
///
/// Results are bit-identical to the flat-scan reference
/// (find_earliest_embedding over unroll_ops(sched, k)): both kernels
/// enumerate candidate executions of an element in start order, so the
/// greedy picks and the branch-and-bound improvement sequence — and
/// therefore finishes *and* witness assignments — coincide.
class EmbeddingKernel {
 public:
  /// Binds `tg` to `index`. Queries see only the first `periods_limit`
  /// periods of the index (0 = all of it). Scratch comes from `arena`
  /// when given (it must outlive the kernel and not be reset while the
  /// kernel is alive), else from a kernel-private arena. Both referents
  /// must outlive the kernel.
  EmbeddingKernel(const TaskGraph& tg, const UnrollIndex& index,
                  std::size_t periods_limit = 0, util::Arena* arena = nullptr);

  EmbeddingKernel(const EmbeddingKernel&) = delete;
  EmbeddingKernel& operator=(const EmbeddingKernel&) = delete;

  /// Earliest finish over embeddings whose executions start at or after
  /// `window_begin`; nullopt when none exists within the op prefix.
  [[nodiscard]] std::optional<Time> finish_at(Time window_begin);

  /// Like finish_at but returns the witness; `excluded` (indexed by
  /// global op index, empty = none) marks unavailable executions.
  [[nodiscard]] std::optional<EmbeddingWitness> witness_at(
      Time window_begin, const std::vector<bool>& excluded = {});

  [[nodiscard]] const KernelCounters& counters() const { return counters_; }

 private:
  [[nodiscard]] bool solve(Time window_begin, const std::vector<bool>& excluded);
  void bnb_rec(std::size_t k, Time makespan, Time window_begin,
               const std::vector<bool>& excluded);

  // BnB availability bitset over the visible op prefix, one bit per
  // global index. Backtracking restores every set bit, so the words
  // stay all-zero between queries — the reset the old vector<bool>
  // scratch paid per kernel is now a single zero-fill at first use,
  // 64x smaller and usually on warm arena memory.
  [[nodiscard]] bool used_test(std::size_t idx) const {
    return (used_words_[idx >> 6] >> (idx & 63)) & 1u;
  }
  void used_flip(std::size_t idx) { used_words_[idx >> 6] ^= 1ull << (idx & 63); }

  const TaskGraph* tg_ = nullptr;
  const UnrollIndex* index_ = nullptr;
  std::size_t limit_ = 0;  // op-count prefix visible to queries
  bool repeated_ = false;
  std::vector<OpId> topo_;  // cached once per kernel

  // Monotone seek hints (greedy, no-exclusion queries only): per op,
  // the execution chosen by the previous query — a sound resume point
  // while window begins ascend, making a sweep's seeks amortized O(1).
  // The cursor is kept decomposed as (cycle, rank within the element's
  // occurrence row) with cached start/finish times, so the steady-state
  // advance is pure add/compare arithmetic — no division. A walk that
  // exceeds a fixed step bound (degenerate sweep order) bails out to a
  // fresh binary-search probe, which lands on the identical pick.
  struct SeekHint {
    std::size_t idx = UnrollIndex::npos;  // flat unrolled index
    std::size_t cycle = 0;
    std::size_t rank = 0;
    Time start = 0;
    Time finish = 0;
  };
  void seed_hint(SeekHint& h, ElementId e, Time ready);

  // Scratch, arena-backed (raw pointers into arena_) in the default
  // configuration; the *_vec_ members back the pointers instead when
  // HotPathConfig::arena is off (ablation).
  util::Arena own_arena_;
  util::Arena* arena_ = nullptr;  // null = legacy vector scratch
  Time* finish_ = nullptr;                  // per task-graph op
  std::size_t* chosen_ = nullptr;           // per task-graph op, current path
  std::size_t* best_assignment_ = nullptr;  // per task-graph op, best path
  SeekHint* hint_ = nullptr;                // per task-graph op
  std::uint64_t* used_words_ = nullptr;     // BnB only, lazily sized
  std::size_t used_words_len_ = 0;
  std::vector<Time> finish_vec_;
  std::vector<std::size_t> chosen_vec_;
  std::vector<std::size_t> best_vec_;
  std::vector<SeekHint> hint_vec_;
  std::vector<std::uint64_t> used_vec_;

  Time last_begin_ = 0;
  bool hints_primed_ = false;
  Time best_ = 0;
  Time result_finish_ = 0;
  bool warm_ = false;

  KernelCounters counters_;
};

/// Decodes a raw slot trace into complete executions: each maximal run
/// of element e splits into floor(run / weight(e)) back-to-back
/// executions; a trailing partial run is dropped. Slots with unknown
/// element ids throw std::invalid_argument.
[[nodiscard]] std::vector<ScheduledOp> ops_from_trace(const sim::ExecutionTrace& trace,
                                                      const CommGraph& comm);

/// Latency of a *finite* trace prefix w.r.t. `tg`: the smallest k such
/// that every window [t, t+k] fully inside [0, horizon] contains an
/// execution of `tg`. Unlike schedule_latency there is no cyclic
/// extension — this measures what an observed trace (e.g. from the
/// process-model simulator) actually guaranteed over its span.
/// Returns nullopt when no k <= horizon works (some execution-free
/// window of every length exists, e.g. an element never ran).
[[nodiscard]] std::optional<Time> finite_trace_latency(std::span<const ScheduledOp> ops,
                                                       Time horizon,
                                                       const TaskGraph& tg);

/// Latency of the cyclic schedule w.r.t. task graph `tg`: the smallest
/// k such that every window of length >= k of the round-robin trace
/// contains an execution of `tg`. Returns nullopt when the latency is
/// infinite (no such k), e.g. when an element of `tg` never appears.
[[nodiscard]] std::optional<Time> schedule_latency(const StaticSchedule& sched,
                                                   const TaskGraph& tg);

/// True iff the periodic constraint (tg, p, d) is satisfied by the
/// cyclic schedule: for every invocation instant t = 0, p, 2p, ... the
/// window [t, t+d] contains an execution of `tg`. Checked exactly over
/// one combined cycle lcm(schedule length, p).
[[nodiscard]] bool periodic_satisfied(const StaticSchedule& sched, const TaskGraph& tg,
                                      Time p, Time d);

/// Per-constraint verification result.
struct ConstraintVerdict {
  std::size_t constraint = 0;
  /// For asynchronous constraints: the measured latency (nullopt =
  /// infinite). For periodic constraints: unset.
  std::optional<Time> latency;
  bool satisfied = false;

  friend bool operator==(const ConstraintVerdict&, const ConstraintVerdict&) = default;
};

/// Full feasibility report for a schedule against a model: latency <= d
/// for every asynchronous constraint and invocation-window containment
/// for every periodic constraint.
struct FeasibilityReport {
  std::vector<ConstraintVerdict> verdicts;
  bool feasible = false;
  /// True when verification was abandoned early through
  /// VerifyOptions::cancel. A cancelled report carries no verdicts and
  /// must never be treated as an INFEASIBLE answer.
  bool cancelled = false;

  friend bool operator==(const FeasibilityReport&, const FeasibilityReport&) = default;
};

/// Counters filled by the verification engine. Serial and parallel
/// paths both deduplicate identical (task graph, span, window-begin)
/// queries, so memo_hits can be non-zero at every thread count; the
/// flat-scan reference path leaves everything but threads_used zero.
struct VerifyStats {
  /// Embedding queries actually computed (memo misses).
  std::size_t embedding_queries = 0;
  /// Embedding queries answered from the shared memo table.
  std::size_t memo_hits = 0;
  /// Work units (constraint x window-offset pairs).
  std::size_t work_units = 0;
  /// UnrollIndex occurrence probes issued by the embedding kernels.
  std::size_t index_seeks = 0;
  /// Windows answered from an IncrementalVerifier witness cache.
  std::size_t incremental_hits = 0;
  /// Kernel queries that reused a warm scratch arena (no allocation).
  std::size_t arena_reuses = 0;
  /// Index seeks resolved by an occurrence-row bitset/metadata gate
  /// without a binary search (summed across kernels and threads).
  std::size_t bitset_skips = 0;
  /// High-water mark of live scratch-arena bytes, maxed across workers.
  std::size_t arena_bytes_peak = 0;
  /// Worker threads the engine actually ran with (1 = serial path,
  /// including the auto mode's small-work / single-core fallback).
  std::size_t threads_used = 0;

  VerifyStats& operator+=(const VerifyStats& other) {
    embedding_queries += other.embedding_queries;
    memo_hits += other.memo_hits;
    work_units += other.work_units;
    index_seeks += other.index_seeks;
    incremental_hits += other.incremental_hits;
    arena_reuses += other.arena_reuses;
    bitset_skips += other.bitset_skips;
    arena_bytes_peak = std::max(arena_bytes_peak, other.arena_bytes_peak);
    threads_used = std::max(threads_used, other.threads_used);
    return *this;
  }
};

struct VerifyOptions {
  /// Worker threads for the per-constraint x per-window fan-out.
  /// 0 = auto: hardware concurrency, except that single-core hosts and
  /// plans below serial_parallel_cutoff() fall back to the serial path
  /// (spawning workers would only add overhead — see E16/E17/E22).
  /// 1 = serial; >= 2 = always the parallel engine.
  std::size_t n_threads = 0;
  /// Optional engine counters.
  VerifyStats* stats = nullptr;
  /// Testing-only: run the pre-index flat-scan serial verifier (linear
  /// scans over materialized unroll_ops). Pins the legacy behavior for
  /// the differential suite; n_threads is ignored.
  bool flat_reference = false;
  /// Cooperative cancellation: when non-null and set, the engine stops
  /// at the next query boundary and returns a report with
  /// cancelled = true (and no verdicts). The service layer points this
  /// at a per-job flag to enforce deadlines on long verifications.
  const std::atomic<bool>* cancel = nullptr;
  /// Liveness beacon: when non-null the engine bumps it (relaxed) at
  /// every cancellation poll, so a watchdog can tell a slow-but-alive
  /// verification (counter advancing) from a wedged one (frozen).
  std::atomic<std::uint64_t>* progress = nullptr;
};

/// Verifies with the default options (auto thread count). The result is
/// bit-identical at every thread count: each (constraint, window
/// offset) unit is an independent pure query, results are reduced with
/// commutative operations (max / conjunction), and the memo table only
/// caches deterministic query results.
[[nodiscard]] FeasibilityReport verify_schedule(const StaticSchedule& sched,
                                                const GraphModel& model);

[[nodiscard]] FeasibilityReport verify_schedule(const StaticSchedule& sched,
                                                const GraphModel& model,
                                                const VerifyOptions& options);

/// Incremental re-verification session for schedule edit loops
/// (optimize's drop/shave passes, the heuristic's refinement).
///
/// The session holds a *committed* baseline schedule plus, per
/// (constraint, window-offset) embedding query, the cached finish and
/// witness assignment. verify_drop() checks a candidate obtained from
/// the baseline by replacing one execution entry with idle time of the
/// same length — the edit optimize's compaction performs, which keeps
/// every other execution's slot times. Because dropping an execution
/// only *shrinks* availability, a cached witness that never mapped onto
/// the dropped execution (in any unrolled cycle) stays optimal, and a
/// window with no embedding stays embedding-free; only windows whose
/// witness actually used the dropped execution are re-queried. The
/// produced report is bit-identical to verify_schedule(candidate).
///
/// Reports for rejected candidates leave the baseline untouched;
/// commit_drop() promotes the last candidate, remapping cached witness
/// indices into the shortened unrolled-op view.
class IncrementalVerifier {
 public:
  explicit IncrementalVerifier(const GraphModel& model);

  /// Full verification of `sched`; commits it as the baseline and
  /// primes the witness cache. Invalidates any pending candidate.
  const FeasibilityReport& verify(const StaticSchedule& sched);

  /// Verifies `candidate`, which must equal the baseline with execution
  /// entry `entry` (an index into the baseline's entries()) replaced by
  /// idle time of equal duration. Throws std::invalid_argument when
  /// `entry` is not an execution or the lengths disagree.
  const FeasibilityReport& verify_drop(const StaticSchedule& candidate,
                                       std::size_t entry);

  /// Commits the last verify_drop candidate as the new baseline.
  /// Throws std::logic_error when no candidate is pending.
  void commit_drop();

  /// Report for the committed baseline.
  [[nodiscard]] const FeasibilityReport& report() const { return report_; }

  /// Cumulative engine counters across the session (incremental_hits
  /// counts windows served from the witness cache).
  [[nodiscard]] const VerifyStats& stats() const { return stats_; }

 private:
  struct CachedQuery {
    Time finish = 0;  // kInfTime = no embedding
    std::vector<std::size_t> assignment;
  };
  struct Impl;

  void rebuild_baseline(const StaticSchedule& sched);

  const GraphModel* model_ = nullptr;
  std::shared_ptr<Impl> impl_;  // plan + query table + index + memo
  StaticSchedule committed_;
  FeasibilityReport report_;
  VerifyStats stats_;
};

}  // namespace rtg::core
