// latency.hpp — latency analysis of traces and static schedules.
//
// Central definitions from the paper:
//   * An execution trace F has latency k w.r.t. a timing constraint
//     (C, p, d) iff F contains an execution of C in every time interval
//     of length >= k.
//   * A static schedule L has latency k iff the trace obtained by
//     repeating L round-robin ad infinitum has latency k.
//   * L is feasible w.r.t. the asynchronous constraints T_a iff its
//     latency w.r.t. every (C, p, d) in T_a is at most d.
//
// An *execution of C* inside an interval is an embedding: an injective
// map from C's operations to complete executions in the trace, all
// inside the interval, such that for every edge u -> v of C the image
// of u finishes no later than the image of v starts (the output of u is
// transmitted before v runs).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "core/model.hpp"
#include "core/static_schedule.hpp"

namespace rtg::core {

/// Earliest finish time over all embeddings of `tg` into `ops` whose
/// executions all start at or after `window_begin`. `ops` must be
/// sorted by start time and non-overlapping. Returns nullopt when no
/// embedding exists within the given ops.
///
/// Exact for all task graphs: greedy (provably optimal) when no element
/// labels two ops of `tg`, branch-and-bound otherwise.
[[nodiscard]] std::optional<Time> earliest_embedding_finish(
    const TaskGraph& tg, std::span<const ScheduledOp> ops, Time window_begin);

/// True iff the interval [begin, end) of the given op sequence contains
/// a complete execution of `tg` (every execution inside the interval).
[[nodiscard]] bool window_contains_execution(const TaskGraph& tg,
                                             std::span<const ScheduledOp> ops,
                                             Time begin, Time end);

/// An embedding witness: the finish time plus, per task-graph op (in op
/// id order), the index into `ops` of the execution it mapped to.
struct EmbeddingWitness {
  Time finish = 0;
  std::vector<std::size_t> assignment;
};

/// Like earliest_embedding_finish, but returns the witness and supports
/// an exclusion mask: ops with used[i] == true are unavailable (pass an
/// empty span for no exclusions).
[[nodiscard]] std::optional<EmbeddingWitness> find_earliest_embedding(
    const TaskGraph& tg, std::span<const ScheduledOp> ops, Time window_begin,
    const std::vector<bool>& used = {});

/// Flattens `periods` consecutive repetitions of the schedule into an
/// absolute-time op sequence (period r's ops shifted by r * length).
[[nodiscard]] std::vector<ScheduledOp> unroll_ops(const StaticSchedule& sched,
                                                  std::size_t periods);

/// Decodes a raw slot trace into complete executions: each maximal run
/// of element e splits into floor(run / weight(e)) back-to-back
/// executions; a trailing partial run is dropped. Slots with unknown
/// element ids throw std::invalid_argument.
[[nodiscard]] std::vector<ScheduledOp> ops_from_trace(const sim::ExecutionTrace& trace,
                                                      const CommGraph& comm);

/// Latency of a *finite* trace prefix w.r.t. `tg`: the smallest k such
/// that every window [t, t+k] fully inside [0, horizon] contains an
/// execution of `tg`. Unlike schedule_latency there is no cyclic
/// extension — this measures what an observed trace (e.g. from the
/// process-model simulator) actually guaranteed over its span.
/// Returns nullopt when no k <= horizon works (some execution-free
/// window of every length exists, e.g. an element never ran).
[[nodiscard]] std::optional<Time> finite_trace_latency(std::span<const ScheduledOp> ops,
                                                       Time horizon,
                                                       const TaskGraph& tg);

/// Latency of the cyclic schedule w.r.t. task graph `tg`: the smallest
/// k such that every window of length >= k of the round-robin trace
/// contains an execution of `tg`. Returns nullopt when the latency is
/// infinite (no such k), e.g. when an element of `tg` never appears.
[[nodiscard]] std::optional<Time> schedule_latency(const StaticSchedule& sched,
                                                   const TaskGraph& tg);

/// True iff the periodic constraint (tg, p, d) is satisfied by the
/// cyclic schedule: for every invocation instant t = 0, p, 2p, ... the
/// window [t, t+d] contains an execution of `tg`. Checked exactly over
/// one combined cycle lcm(schedule length, p).
[[nodiscard]] bool periodic_satisfied(const StaticSchedule& sched, const TaskGraph& tg,
                                      Time p, Time d);

/// Per-constraint verification result.
struct ConstraintVerdict {
  std::size_t constraint = 0;
  /// For asynchronous constraints: the measured latency (nullopt =
  /// infinite). For periodic constraints: unset.
  std::optional<Time> latency;
  bool satisfied = false;

  friend bool operator==(const ConstraintVerdict&, const ConstraintVerdict&) = default;
};

/// Full feasibility report for a schedule against a model: latency <= d
/// for every asynchronous constraint and invocation-window containment
/// for every periodic constraint.
struct FeasibilityReport {
  std::vector<ConstraintVerdict> verdicts;
  bool feasible = false;

  friend bool operator==(const FeasibilityReport&, const FeasibilityReport&) = default;
};

/// Counters filled by the parallel verification engine (all zero on the
/// serial path, which neither partitions work nor memoizes).
struct VerifyStats {
  /// Embedding queries actually computed (memo misses).
  std::size_t embedding_queries = 0;
  /// Embedding queries answered from the shared memo table.
  std::size_t memo_hits = 0;
  /// Parallel work units (constraint x window-offset pairs).
  std::size_t work_units = 0;
};

struct VerifyOptions {
  /// Worker threads for the per-constraint x per-window fan-out.
  /// 0 = hardware concurrency; 1 = the exact serial legacy path.
  std::size_t n_threads = 0;
  /// Optional engine counters (only written by the parallel path).
  VerifyStats* stats = nullptr;
};

/// Verifies with the default options (auto thread count). The result is
/// bit-identical at every thread count: each (constraint, window
/// offset) unit is an independent pure query, results are reduced with
/// commutative operations (max / conjunction), and the memo table only
/// caches deterministic query results.
[[nodiscard]] FeasibilityReport verify_schedule(const StaticSchedule& sched,
                                                const GraphModel& model);

[[nodiscard]] FeasibilityReport verify_schedule(const StaticSchedule& sched,
                                                const GraphModel& model,
                                                const VerifyOptions& options);

}  // namespace rtg::core
