// maintenance.hpp — incremental model maintenance.
//
// The paper's abstract promises to "substantially automate the design
// *and maintenance* of real-time systems". This module supports the
// maintenance half: when requirements change — a constraint is added,
// removed, or retimed — the tooling first checks whether the deployed
// static schedule already satisfies the revised model (re-verification
// is cheap), and only re-synthesizes when it does not, reporting which
// constraints forced the change.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/heuristic.hpp"
#include "core/latency.hpp"
#include "core/model.hpp"
#include "core/static_schedule.hpp"

namespace rtg::core {

enum class MaintenanceOutcome : std::uint8_t {
  kScheduleUnchanged,   ///< the deployed schedule satisfies the new model
  kRescheduled,         ///< a new schedule was synthesized
  kFailed,              ///< the new model could not be scheduled
};

struct MaintenanceResult {
  MaintenanceOutcome outcome = MaintenanceOutcome::kFailed;
  std::string detail;

  /// The schedule in force after maintenance (the old one when
  /// kScheduleUnchanged, the new one when kRescheduled; unset when
  /// kFailed). Expressed against `scheduled_model`.
  std::optional<StaticSchedule> schedule;
  GraphModel scheduled_model;

  /// Constraints of the new model the OLD schedule violated (indices
  /// into the new model). Empty when the old schedule survived.
  std::vector<std::size_t> violated;
};

/// Revalidates `deployed` (expressed against `deployed_model`, usually
/// the pipelined model from the original synthesis) against
/// `new_model`, and re-synthesizes with `options` when needed.
///
/// The check requires the new model's pipelined element set to be a
/// superset-compatible rewrite of the deployed one: elements are
/// matched by NAME, so renaming an element forces a reschedule. New
/// elements absent from the deployed schedule simply make any
/// constraint touching them fail the check (triggering reschedule).
[[nodiscard]] MaintenanceResult maintain_schedule(const StaticSchedule& deployed,
                                                  const GraphModel& deployed_model,
                                                  const GraphModel& new_model,
                                                  const HeuristicOptions& options = {});

}  // namespace rtg::core
