// report.hpp — pre-synthesis model analysis.
//
// One call that answers the designer's first questions: how heavy is
// each constraint, which necessary conditions bind, does Theorem 3
// apply, and which synthesis engine should be tried first. Rendered as
// a table by `render_analysis`; used by spec_compiler --analyze and
// suitable for CI gates.
#pragma once

#include <string>
#include <vector>

#include "core/bounds.hpp"
#include "core/model.hpp"

namespace rtg::core {

/// Which engine the analysis recommends trying first.
enum class EngineAdvice : std::uint8_t {
  kHeuristic,      ///< Theorem 3 applies: construction guaranteed
  kHeuristicLikely,///< hypotheses miss narrowly; heuristic usually works
  kExactGame,      ///< small and dense: the simulation game is the tool
  kInfeasible,     ///< refuted by necessary conditions
};

struct ConstraintAnalysis {
  std::size_t index = 0;
  std::string name;
  Time computation = 0;      ///< w(C)
  Time critical_path = 0;    ///< cp(C)
  Time deadline = 0;
  double density = 0.0;      ///< w / d
  bool pipelinable = true;   ///< all multi-slot elements pipelinable
  bool half_deadline_ok = false;  ///< floor(d/2) >= w
};

struct ModelAnalysis {
  std::vector<ConstraintAnalysis> constraints;
  double deadline_utilization = 0.0;  ///< Σ w/d
  double demand_density = 0.0;        ///< sharing-aware lower bound
  bool theorem3 = false;
  std::vector<InfeasibilityWitness> refutations;
  EngineAdvice advice = EngineAdvice::kHeuristic;
};

/// Runs all static analyses on the model.
[[nodiscard]] ModelAnalysis analyze_model(const GraphModel& model);

/// Human-readable multi-line rendering.
[[nodiscard]] std::string render_analysis(const ModelAnalysis& analysis,
                                          const GraphModel& model);

}  // namespace rtg::core
