#include "core/model.hpp"

#include <stdexcept>
#include <unordered_set>

#include "graph/algorithms.hpp"

namespace rtg::core {

ElementId CommGraph::add_element(std::string name, Time weight, bool pipelinable) {
  if (name.empty()) {
    throw std::invalid_argument("CommGraph::add_element: empty name");
  }
  if (weight < 1) {
    throw std::invalid_argument("CommGraph::add_element: weight must be >= 1");
  }
  const ElementId id = g_.add_node(weight, std::move(name));
  pipelinable_.push_back(pipelinable);
  return id;
}

bool CommGraph::add_channel(ElementId u, ElementId v) { return g_.add_edge(u, v); }

std::vector<std::string> CommGraph::element_names() const {
  std::vector<std::string> names;
  names.reserve(g_.node_count());
  for (ElementId e = 0; e < g_.node_count(); ++e) {
    names.push_back(g_.name(e));
  }
  return names;
}

OpId TaskGraph::add_op(ElementId e) {
  const OpId id = skel_.add_node(/*weight=*/1);
  labels_.push_back(e);
  return id;
}

bool TaskGraph::add_dep(OpId u, OpId v) { return skel_.add_edge(u, v); }

Time TaskGraph::computation_time(const CommGraph& g) const {
  Time total = 0;
  for (ElementId e : labels_) total += g.weight(e);
  return total;
}

std::vector<std::string> TaskGraph::validate(const CommGraph& g) const {
  std::vector<std::string> diags;
  if (!graph::is_acyclic(skel_)) {
    diags.push_back("task graph is cyclic");
  }
  for (OpId op = 0; op < size(); ++op) {
    if (!g.has_element(labels_[op])) {
      diags.push_back("op " + std::to_string(op) + " references unknown element " +
                      std::to_string(labels_[op]));
    }
  }
  if (!diags.empty()) return diags;  // labels unsafe to dereference below
  for (const graph::Edge& e : skel_.edges()) {
    if (!g.has_channel(labels_[e.from], labels_[e.to])) {
      diags.push_back("edge " + g.name(labels_[e.from]) + " -> " +
                      g.name(labels_[e.to]) +
                      " has no corresponding communication channel");
    }
  }
  return diags;
}

std::optional<std::vector<OpId>> TaskGraph::as_chain() const {
  if (empty()) return std::vector<OpId>{};
  OpId head = graph::kInvalidNode;
  for (OpId op = 0; op < size(); ++op) {
    if (skel_.in_degree(op) > 1 || skel_.out_degree(op) > 1) return std::nullopt;
    if (skel_.in_degree(op) == 0) {
      if (head != graph::kInvalidNode) return std::nullopt;  // two heads
      head = op;
    }
  }
  if (head == graph::kInvalidNode) return std::nullopt;  // cyclic
  std::vector<OpId> order{head};
  while (skel_.out_degree(order.back()) == 1) {
    order.push_back(skel_.successors(order.back())[0]);
  }
  if (order.size() != size()) return std::nullopt;  // disconnected
  return order;
}

std::vector<OpId> TaskGraph::topological_ops() const {
  auto order = graph::topological_sort(skel_);
  if (!order) {
    throw std::invalid_argument("TaskGraph::topological_ops: cyclic skeleton");
  }
  return *order;
}

bool TaskGraph::has_repeated_labels() const {
  std::unordered_set<ElementId> seen;
  for (ElementId e : labels_) {
    if (!seen.insert(e).second) return true;
  }
  return false;
}

std::size_t GraphModel::add_constraint(TimingConstraint c) {
  if (c.period < 1 || c.deadline < 1) {
    throw std::invalid_argument("GraphModel::add_constraint: period and deadline must be >= 1");
  }
  if (c.task_graph.empty()) {
    throw std::invalid_argument("GraphModel::add_constraint: empty task graph");
  }
  const auto diags = c.task_graph.validate(comm_);
  if (!diags.empty()) {
    std::string message = "GraphModel::add_constraint('" + c.name + "'):";
    for (const auto& d : diags) message += " " + d + ";";
    throw std::invalid_argument(message);
  }
  constraints_.push_back(std::move(c));
  return constraints_.size() - 1;
}

std::optional<std::size_t> GraphModel::find_constraint(std::string_view name) const {
  for (std::size_t i = 0; i < constraints_.size(); ++i) {
    if (constraints_[i].name == name) return i;
  }
  return std::nullopt;
}

double GraphModel::deadline_utilization() const {
  double u = 0.0;
  for (const TimingConstraint& c : constraints_) {
    u += static_cast<double>(c.task_graph.computation_time(comm_)) /
         static_cast<double>(c.deadline);
  }
  return u;
}

bool GraphModel::satisfies_theorem3() const {
  if (deadline_utilization() > 0.5 + 1e-12) return false;
  for (const TimingConstraint& c : constraints_) {
    const Time w = c.task_graph.computation_time(comm_);
    if (c.deadline / 2 < w) return false;
    for (ElementId e : c.task_graph.labels()) {
      if (comm_.weight(e) > 1 && !comm_.pipelinable(e)) return false;
    }
  }
  return true;
}

std::vector<ElementId> GraphModel::shared_elements() const {
  std::vector<std::size_t> users(comm_.size(), 0);
  for (const TimingConstraint& c : constraints_) {
    std::unordered_set<ElementId> distinct(c.task_graph.labels().begin(),
                                           c.task_graph.labels().end());
    for (ElementId e : distinct) ++users[e];
  }
  std::vector<ElementId> shared;
  for (ElementId e = 0; e < users.size(); ++e) {
    if (users[e] >= 2) shared.push_back(e);
  }
  return shared;
}

GraphModel make_control_system(const ControlSystemParams& params) {
  CommGraph g;
  const ElementId fx = g.add_element("fx", params.cx);
  const ElementId fy = g.add_element("fy", params.cy);
  const ElementId fz = g.add_element("fz", params.cz);
  const ElementId fs = g.add_element("fs", params.cs);
  const ElementId fk = g.add_element("fk", params.ck);
  g.add_channel(fx, fs);
  g.add_channel(fy, fs);
  g.add_channel(fz, fs);
  g.add_channel(fs, fk);
  g.add_channel(fk, fs);  // feedback of internal state v

  GraphModel model(std::move(g));

  {
    TaskGraph cx_graph;
    const OpId ox = cx_graph.add_op(fx);
    const OpId os = cx_graph.add_op(fs);
    const OpId ok = cx_graph.add_op(fk);
    cx_graph.add_dep(ox, os);
    cx_graph.add_dep(os, ok);
    model.add_constraint(TimingConstraint{"X", std::move(cx_graph), params.px,
                                          params.dx, ConstraintKind::kPeriodic});
  }
  {
    TaskGraph cy_graph;
    const OpId oy = cy_graph.add_op(fy);
    const OpId os = cy_graph.add_op(fs);
    const OpId ok = cy_graph.add_op(fk);
    cy_graph.add_dep(oy, os);
    cy_graph.add_dep(os, ok);
    model.add_constraint(TimingConstraint{"Y", std::move(cy_graph), params.py,
                                          params.dy, ConstraintKind::kPeriodic});
  }
  {
    TaskGraph cz_graph;
    const OpId oz = cz_graph.add_op(fz);
    const OpId os = cz_graph.add_op(fs);
    cz_graph.add_dep(oz, os);
    model.add_constraint(TimingConstraint{"Z", std::move(cz_graph), params.pz,
                                          params.dz, ConstraintKind::kAsynchronous});
  }
  return model;
}

}  // namespace rtg::core
