// runtime.hpp — the run-time executive.
//
// "Even though optimal static schedules are hard to compute in general,
// it should be emphasized that the run-time scheduler is very efficient
// once a feasible static schedule has been found off-line."
//
// The executive dispatches a static schedule round-robin — a table
// lookup per operation, independent of which invocations are pending —
// and this module additionally *verifies* that the resulting trace
// serves every invocation: each periodic invocation at t = 0, p, 2p, ...
// and each asynchronous arrival t (given as an explicit stream) must
// see a complete execution of its task graph inside [t, t+d].
#pragma once

#include <optional>
#include <vector>

#include "core/latency.hpp"
#include "core/model.hpp"
#include "core/static_schedule.hpp"

namespace rtg::core {

/// One invocation of a timing constraint and its outcome.
struct InvocationRecord {
  std::size_t constraint = 0;
  Time invoked = 0;
  Time abs_deadline = 0;
  /// Earliest completion of an execution inside the window, if any.
  std::optional<Time> completed;
  bool satisfied = false;

  [[nodiscard]] Time response_time() const {
    return completed ? *completed - invoked : -1;
  }
};

struct ExecutiveResult {
  std::vector<InvocationRecord> invocations;
  bool all_met = true;
  Time horizon = 0;
  /// Dispatcher decisions taken (one per schedule entry executed) —
  /// the run-time cost driver the paper's efficiency claim is about.
  std::size_t dispatches = 0;
};

/// Arrival streams for asynchronous constraints, indexed by constraint
/// position in the model. Entries for periodic constraints are ignored.
/// Each stream must be sorted and respect the constraint's minimum
/// separation; violations throw std::invalid_argument.
using ConstraintArrivals = std::vector<std::vector<Time>>;

/// Runs the executive for `horizon` slots and verifies every invocation
/// whose deadline falls within the horizon. Invocations with deadlines
/// past the horizon are not recorded (their windows are incomplete).
[[nodiscard]] ExecutiveResult run_executive(const StaticSchedule& sched,
                                            const GraphModel& model,
                                            const ConstraintArrivals& arrivals,
                                            Time horizon);

}  // namespace rtg::core
