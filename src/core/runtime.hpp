// runtime.hpp — the run-time executive.
//
// "Even though optimal static schedules are hard to compute in general,
// it should be emphasized that the run-time scheduler is very efficient
// once a feasible static schedule has been found off-line."
//
// The executive dispatches a static schedule round-robin — a table
// lookup per operation, independent of which invocations are pending —
// and this module additionally *verifies* that the resulting trace
// serves every invocation: each periodic invocation at t = 0, p, 2p, ...
// and each asynchronous arrival t (given as an explicit stream) must
// see a complete execution of its task graph inside [t, t+d].
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/latency.hpp"
#include "core/model.hpp"
#include "core/static_schedule.hpp"
#include "sim/trace.hpp"

namespace rtg::core {

/// Renders a sorted, non-overlapping op timeline as exactly `horizon`
/// raw trace slots delivered to `sink` in time order: each op
/// contributes duration slots of its element, gaps become idle, and the
/// horizon cuts mid-op if it must (the dropped tail decodes as an
/// incomplete execution, consistent with ops_from_trace).
void emit_timeline(std::span<const ScheduledOp> ops, Time horizon,
                   sim::TraceSink& sink);

/// One invocation of a timing constraint and its outcome.
struct InvocationRecord {
  std::size_t constraint = 0;
  Time invoked = 0;
  Time abs_deadline = 0;
  /// Earliest completion of an execution inside the window, if any.
  std::optional<Time> completed;
  bool satisfied = false;

  /// completed - invoked; nullopt while no execution completed in the
  /// window.
  [[nodiscard]] std::optional<Time> response_time() const {
    if (!completed) return std::nullopt;
    return *completed - invoked;
  }
};

struct ExecutiveResult {
  std::vector<InvocationRecord> invocations;
  bool all_met = true;
  Time horizon = 0;
  /// Dispatcher decisions taken (one per schedule entry executed) —
  /// the run-time cost driver the paper's efficiency claim is about.
  std::size_t dispatches = 0;
};

/// Arrival streams for asynchronous constraints, indexed by constraint
/// position in the model. Entries for periodic constraints are ignored.
/// Each stream must be sorted and respect the constraint's minimum
/// separation; use validate_arrivals for a structured diagnosis.
using ConstraintArrivals = std::vector<std::vector<Time>>;

/// One defect of an arrival stream, pinpointing the constraint and the
/// offending instants.
struct ArrivalIssue {
  enum class Kind : std::uint8_t {
    kMissingStream,        ///< async constraint has no stream at its index
    kNegativeTime,         ///< an arrival before t = 0
    kUnsorted,             ///< time < its predecessor
    kSeparationViolation,  ///< gap below the constraint's minimum separation
  };

  Kind kind = Kind::kMissingStream;
  std::size_t constraint = 0;
  std::string constraint_name;
  /// Index of the offending arrival within its stream (0 for
  /// kMissingStream).
  std::size_t position = 0;
  Time time = 0;      ///< the offending arrival instant
  Time previous = 0;  ///< the preceding instant (kUnsorted / kSeparation...)

  [[nodiscard]] std::string to_string() const;
};

/// Structured validation verdict for a set of arrival streams.
struct ArrivalValidation {
  std::vector<ArrivalIssue> issues;

  [[nodiscard]] bool ok() const { return issues.empty(); }
  /// All issues rendered one per line; empty string when ok().
  [[nodiscard]] std::string to_string() const;
};

/// Checks every asynchronous constraint's stream: present, sorted,
/// non-negative, minimum separation respected. Never throws.
[[nodiscard]] ArrivalValidation validate_arrivals(const GraphModel& model,
                                                  const ConstraintArrivals& arrivals);

/// Runs the executive for `horizon` slots and verifies every invocation
/// whose deadline falls within the horizon. Invocations with deadlines
/// past the horizon are not recorded (their windows are incomplete).
///
/// Throwing wrapper: malformed arrival streams raise
/// std::invalid_argument carrying the rendered ArrivalValidation. Use
/// validate_arrivals first (or the adaptive executive's admission
/// control in core/degradation) to handle defects without exceptions.
///
/// When `trace_sink` is non-null the executive also emits the raw slot
/// timeline it dispatched (the round-robin trace, `horizon` slots) —
/// feed it a monitor::TraceCapture or a StreamingMonitor to observe the
/// run online.
[[nodiscard]] ExecutiveResult run_executive(const StaticSchedule& sched,
                                            const GraphModel& model,
                                            const ConstraintArrivals& arrivals,
                                            Time horizon,
                                            sim::TraceSink* trace_sink = nullptr);

}  // namespace rtg::core
