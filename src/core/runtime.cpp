#include "core/runtime.hpp"

#include <stdexcept>

namespace rtg::core {

ExecutiveResult run_executive(const StaticSchedule& sched, const GraphModel& model,
                              const ConstraintArrivals& arrivals, Time horizon) {
  if (horizon < 0) throw std::invalid_argument("run_executive: negative horizon");
  if (sched.length() == 0) throw std::invalid_argument("run_executive: empty schedule");

  ExecutiveResult result;
  result.horizon = horizon;

  // Unroll enough periods that embeddings for late invocations resolve:
  // a window ending at `horizon` may need ops up to horizon, and the
  // embedding search itself never looks past the window's deadline.
  Time max_deadline = 0;
  std::size_t max_ops = 0;
  for (const TimingConstraint& c : model.constraints()) {
    max_deadline = std::max(max_deadline, c.deadline);
    max_ops = std::max(max_ops, c.task_graph.size());
  }
  const std::size_t periods = static_cast<std::size_t>(
      (horizon + max_deadline) / std::max<Time>(sched.length(), 1) + 1 +
      static_cast<Time>(2 * max_ops + 2));
  const std::vector<ScheduledOp> ops = unroll_ops(sched, periods);
  result.dispatches = static_cast<std::size_t>(
      static_cast<Time>(sched.ops().size()) *
      ((horizon + sched.length() - 1) / sched.length()));

  for (std::size_t i = 0; i < model.constraint_count(); ++i) {
    const TimingConstraint& c = model.constraint(i);
    std::vector<Time> instants;
    if (c.periodic()) {
      for (Time t = 0; t + c.deadline <= horizon; t += c.period) instants.push_back(t);
    } else {
      if (i >= arrivals.size()) {
        throw std::invalid_argument("run_executive: missing arrival stream for '" +
                                    c.name + "'");
      }
      const auto& stream = arrivals[i];
      for (std::size_t k = 0; k < stream.size(); ++k) {
        if (k > 0 && stream[k] - stream[k - 1] < c.period) {
          throw std::invalid_argument(
              "run_executive: arrival stream violates minimum separation for '" +
              c.name + "'");
        }
        if (stream[k] < 0) {
          throw std::invalid_argument("run_executive: negative arrival time");
        }
        if (stream[k] + c.deadline <= horizon) instants.push_back(stream[k]);
      }
    }
    for (Time t : instants) {
      InvocationRecord rec;
      rec.constraint = i;
      rec.invoked = t;
      rec.abs_deadline = t + c.deadline;
      const auto finish = earliest_embedding_finish(c.task_graph, ops, t);
      if (finish && *finish <= rec.abs_deadline) {
        rec.completed = finish;
        rec.satisfied = true;
      } else {
        rec.satisfied = false;
        result.all_met = false;
      }
      result.invocations.push_back(rec);
    }
  }
  return result;
}

}  // namespace rtg::core
