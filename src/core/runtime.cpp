#include "core/runtime.hpp"

#include <stdexcept>

namespace rtg::core {

namespace {

const char* issue_kind_label(ArrivalIssue::Kind kind) {
  switch (kind) {
    case ArrivalIssue::Kind::kMissingStream:
      return "missing arrival stream";
    case ArrivalIssue::Kind::kNegativeTime:
      return "negative arrival time";
    case ArrivalIssue::Kind::kUnsorted:
      return "unsorted arrival stream";
    case ArrivalIssue::Kind::kSeparationViolation:
      return "minimum-separation violation";
  }
  return "unknown issue";
}

}  // namespace

void emit_timeline(std::span<const ScheduledOp> ops, Time horizon,
                   sim::TraceSink& sink) {
  Time cursor = 0;
  for (const ScheduledOp& op : ops) {
    if (op.start >= horizon) break;
    for (; cursor < op.start; ++cursor) sink.on_slot(sim::kIdle);
    const Time end = std::min(op.finish(), horizon);
    for (; cursor < end; ++cursor) sink.on_slot(static_cast<sim::Slot>(op.elem));
  }
  for (; cursor < horizon; ++cursor) sink.on_slot(sim::kIdle);
}

std::string ArrivalIssue::to_string() const {
  std::string s = std::string(issue_kind_label(kind)) + " for constraint '" +
                  constraint_name + "'";
  if (kind == Kind::kMissingStream) return s;
  s += " at stream index " + std::to_string(position) + " (t=" + std::to_string(time);
  if (kind == Kind::kUnsorted || kind == Kind::kSeparationViolation) {
    s += ", previous t=" + std::to_string(previous);
  }
  s += ")";
  return s;
}

std::string ArrivalValidation::to_string() const {
  std::string s;
  for (const ArrivalIssue& issue : issues) {
    if (!s.empty()) s += "\n";
    s += issue.to_string();
  }
  return s;
}

ArrivalValidation validate_arrivals(const GraphModel& model,
                                    const ConstraintArrivals& arrivals) {
  ArrivalValidation v;
  for (std::size_t i = 0; i < model.constraint_count(); ++i) {
    const TimingConstraint& c = model.constraint(i);
    if (c.periodic()) continue;
    if (i >= arrivals.size()) {
      v.issues.push_back(ArrivalIssue{ArrivalIssue::Kind::kMissingStream, i, c.name,
                                      0, 0, 0});
      continue;
    }
    const auto& stream = arrivals[i];
    // A flagged-negative instant is not a separation anchor: later
    // arrivals are judged against the last *valid* one, so a single
    // bad instant yields a single diagnostic.
    constexpr std::size_t kNone = static_cast<std::size_t>(-1);
    std::size_t prev = kNone;
    for (std::size_t k = 0; k < stream.size(); ++k) {
      if (stream[k] < 0) {
        v.issues.push_back(ArrivalIssue{ArrivalIssue::Kind::kNegativeTime, i, c.name,
                                        k, stream[k], 0});
        continue;
      }
      if (prev != kNone) {
        if (stream[k] < stream[prev]) {
          v.issues.push_back(ArrivalIssue{ArrivalIssue::Kind::kUnsorted, i, c.name, k,
                                          stream[k], stream[prev]});
        } else if (stream[k] - stream[prev] < c.period) {
          v.issues.push_back(ArrivalIssue{ArrivalIssue::Kind::kSeparationViolation, i,
                                          c.name, k, stream[k], stream[prev]});
        }
      }
      prev = k;
    }
  }
  return v;
}

ExecutiveResult run_executive(const StaticSchedule& sched, const GraphModel& model,
                              const ConstraintArrivals& arrivals, Time horizon,
                              sim::TraceSink* trace_sink) {
  if (horizon < 0) throw std::invalid_argument("run_executive: negative horizon");
  if (sched.length() == 0) throw std::invalid_argument("run_executive: empty schedule");
  const ArrivalValidation validation = validate_arrivals(model, arrivals);
  if (!validation.ok()) {
    throw std::invalid_argument("run_executive: " + validation.to_string());
  }

  ExecutiveResult result;
  result.horizon = horizon;

  // Unroll enough periods that embeddings for late invocations resolve:
  // a window ending at `horizon` may need ops up to horizon, and the
  // embedding search itself never looks past the window's deadline.
  Time max_deadline = 0;
  std::size_t max_ops = 0;
  for (const TimingConstraint& c : model.constraints()) {
    max_deadline = std::max(max_deadline, c.deadline);
    max_ops = std::max(max_ops, c.task_graph.size());
  }
  const std::size_t periods = static_cast<std::size_t>(
      (horizon + max_deadline) / std::max<Time>(sched.length(), 1) + 1 +
      static_cast<Time>(2 * max_ops + 2));
  const std::vector<ScheduledOp> ops = unroll_ops(sched, periods);
  if (trace_sink != nullptr) emit_timeline(ops, horizon, *trace_sink);
  result.dispatches = static_cast<std::size_t>(
      static_cast<Time>(sched.ops().size()) *
      ((horizon + sched.length() - 1) / sched.length()));

  for (std::size_t i = 0; i < model.constraint_count(); ++i) {
    const TimingConstraint& c = model.constraint(i);
    std::vector<Time> instants;
    if (c.periodic()) {
      for (Time t = 0; t + c.deadline <= horizon; t += c.period) instants.push_back(t);
    } else {
      for (Time t : arrivals[i]) {
        if (t + c.deadline <= horizon) instants.push_back(t);
      }
    }
    for (Time t : instants) {
      InvocationRecord rec;
      rec.constraint = i;
      rec.invoked = t;
      rec.abs_deadline = t + c.deadline;
      const auto finish = earliest_embedding_finish(c.task_graph, ops, t);
      if (finish && *finish <= rec.abs_deadline) {
        rec.completed = finish;
        rec.satisfied = true;
      } else {
        rec.satisfied = false;
        result.all_met = false;
      }
      result.invocations.push_back(rec);
    }
  }
  return result;
}

}  // namespace rtg::core
