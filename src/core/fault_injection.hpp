// fault_injection.hpp — seeded, deterministic fault-injection plans.
//
// PR 1's OverrunModel covers one disturbance (compute-time inflation)
// and core/fault's FailureModel another (i.i.d. omission). Real
// deployments see a richer mix — lost dispatch slots, transient element
// failures with repair windows, corrupted or dropped transmissions,
// jittered sporadic arrivals, clock drift — often several at once. This
// module provides composable *fault plans* covering all of them, with
// two properties the rest of the robustness stack depends on:
//
//   * Determinism: every stochastic decision is a pure hash of
//     (plan seed, fault index, element, absolute time). No generator
//     state is threaded through the run, so the same plan produces the
//     same faults regardless of evaluation order, thread count, or
//     which executive consumes it — the property the recovery tests pin
//     across 1/2/4 verification threads.
//   * Composability: a plan is a list of independent fault specs, each
//     windowed in time; the same plan injects into run_executive-style
//     offline timelines, run_with_overruns, the adaptive executive, and
//     rt::CyclicExecutive's slot emission (via make_slot_filter, which
//     keeps rt free of core dependencies).
//
// Fault semantics over a table-driven timeline (the executive stays on
// its dispatch table; it does not reshuffle — recovery is the job of
// rt/recovery):
//
//   * kSlotLoss     — each slot t is independently lost with the spec's
//                     rate. An execution overlapping a lost slot
//                     produces no usable output; its slots idle.
//   * kElementFail  — element e is down in [at, at + repair): every one
//                     of its executions overlapping the outage fails.
//   * kDrop         — a dispatch of e is lost with the spec's rate
//                     (detected immediately; the reserved slots idle).
//   * kCorrupt      — an execution of e completes but its output is
//                     corrupt with the spec's rate (detected only at
//                     completion); the slots idle in the *visible*
//                     trace so online verdicts equal ground truth.
//   * kArrivalJitter— sporadic arrival i of constraint c shifts later
//                     by hash(i) in [0, max]; streams are re-legalized
//                     by deferring to the minimum separation.
//   * kClockDrift   — one extra idle slot accrues at every absolute
//                     time begin + m*every (m >= 1) inside the window;
//                     ops at nominal time t start drift_before(t) late.
//
// Platform-level faults (consumed by map::run_deployment_with_faults;
// the uniprocessor executives ignore them — a single-board run has no
// processor or link identity to fail):
//
//   * kProcessorFail — processor `resource` is down in [at, at+repair):
//                      every element mapped there is unavailable.
//   * kLinkFail      — link `resource` carries nothing in [at, at+repair).
//   * kLinkDegrade   — link `resource` runs at bandwidth/factor in
//                      [from, to); transfers need factor× the slots.
//
// Processor and link indices resolve against a map::Platform's
// declaration order; the textual grammar resolves names through
// PlatformNames so this header stays free of map dependencies.
//
// All invalidated executions render as idle slots, so a
// monitor::StreamingMonitor watching the visible trace computes exactly
// the ground-truth verdict over the surviving (valid) executions.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/model.hpp"
#include "core/runtime.hpp"
#include "core/static_schedule.hpp"
#include "sim/rng.hpp"
#include "sim/trace.hpp"

namespace rtg::core {

enum class FaultKind : std::uint8_t {
  kSlotLoss,
  kElementFail,
  kCorrupt,
  kDrop,
  kArrivalJitter,
  kClockDrift,
  kProcessorFail,
  kLinkFail,
  kLinkDegrade,
};

/// True for the platform-level kinds (processor/link faults).
[[nodiscard]] constexpr bool is_platform_fault(FaultKind kind) {
  return kind == FaultKind::kProcessorFail || kind == FaultKind::kLinkFail ||
         kind == FaultKind::kLinkDegrade;
}

[[nodiscard]] std::string_view fault_kind_name(FaultKind kind);

/// Wildcard element / constraint for specs that apply to all.
inline constexpr ElementId kAnyElement = graph::kInvalidNode;
inline constexpr std::size_t kAnyConstraint = static_cast<std::size_t>(-1);
/// Unset platform resource (platform kinds require a concrete one).
inline constexpr std::size_t kAnyResource = static_cast<std::size_t>(-1);
/// Open-ended fault window.
inline constexpr Time kOpenEnd = std::numeric_limits<Time>::max();

/// One windowed fault source. Fields are interpreted per kind:
///   kSlotLoss:      rate, [begin, end)
///   kElementFail:   element, begin (= failure instant), magnitude (= repair slots)
///   kCorrupt/kDrop: element (or any), rate, [begin, end)
///   kArrivalJitter: constraint (or any async), magnitude (= max shift), [begin, end)
///   kClockDrift:    magnitude (= slots between drift ticks), [begin, end)
///   kProcessorFail: resource (= processor), begin (= failure instant),
///                   magnitude (= repair slots)
///   kLinkFail:      resource (= link), begin, magnitude (= repair slots)
///   kLinkDegrade:   resource (= link), magnitude (= bandwidth divisor),
///                   [begin, end)
struct FaultSpec {
  FaultKind kind = FaultKind::kSlotLoss;
  Time begin = 0;
  Time end = kOpenEnd;
  double rate = 1.0;
  ElementId element = kAnyElement;
  std::size_t constraint = kAnyConstraint;
  Time magnitude = 0;
  std::size_t resource = kAnyResource;

  friend bool operator==(const FaultSpec&, const FaultSpec&) = default;
};

/// A seeded, composable fault plan.
struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<FaultSpec> faults;

  [[nodiscard]] bool empty() const { return faults.empty(); }
  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

/// Structural validation against a model: rates in [0, 1], windows
/// ordered, repair/drift magnitudes >= 1, referenced elements and
/// constraints exist (jitter must name an asynchronous constraint).
/// Returns human-readable diagnostics; empty means valid.
[[nodiscard]] std::vector<std::string> validate_fault_plan(const FaultPlan& plan,
                                                           const GraphModel& model);

/// Processor / link names of a platform, in declaration order, so the
/// textual grammar can resolve `procfail p1` / `linkfail bus` without a
/// core → map dependency (map::platform_names adapts a map::Platform).
struct PlatformNames {
  std::vector<std::string> processors;
  std::vector<std::string> links;

  [[nodiscard]] bool empty() const { return processors.empty() && links.empty(); }
};

/// validate_fault_plan, additionally bounds-checking platform resources
/// against the named platform.
[[nodiscard]] std::vector<std::string> validate_fault_plan(
    const FaultPlan& plan, const GraphModel& model, const PlatformNames& names);

/// Parse result for the textual fault-plan format (see docs/FAULTS.md):
/// one directive per line, '#' comments, e.g.
///   seed 42
///   slotloss rate 0.02 from 100 to 500
///   fail fs at 200 repair 40
///   corrupt fx rate 0.1
///   drop * rate 0.05 from 0 to 1000
///   jitter Z max 5
///   drift every 97
///   procfail p1 at 200 repair 50
///   linkfail bus at 100 repair 30
///   linkdegrade r0 factor 2 from 0 to 500
/// Element and constraint names resolve against the model; '*' is the
/// wildcard. Processor and link names resolve against the PlatformNames
/// overload — the platform directives error out when no platform is in
/// scope. Errors carry "line N: message"; plan is set iff there are no
/// errors (and then also passes validate_fault_plan).
struct FaultPlanParse {
  std::optional<FaultPlan> plan;
  std::vector<std::string> errors;

  [[nodiscard]] bool ok() const { return plan.has_value(); }
};

[[nodiscard]] FaultPlanParse parse_fault_plan(std::string_view text,
                                              const GraphModel& model);

[[nodiscard]] FaultPlanParse parse_fault_plan(std::string_view text,
                                              const GraphModel& model,
                                              const PlatformNames& names);

/// What became of one dispatched execution.
enum class ExecutionFate : std::uint8_t {
  kOk,          ///< completed with usable output
  kSlotLost,    ///< a dispatch slot inside it was lost
  kElementDown, ///< its element was inside a failure/repair window
  kDropped,     ///< dispatch lost (detected at start)
  kCorrupted,   ///< output corrupt (detected at completion)
};

[[nodiscard]] std::string_view execution_fate_name(ExecutionFate fate);

/// One injected fault occurrence, for logs and recovery bookkeeping.
struct FaultEvent {
  ExecutionFate fate = ExecutionFate::kOk;
  ElementId elem = kAnyElement;
  Time at = 0;        ///< realized start of the afflicted execution
  Time duration = 0;  ///< its reserved slots
  /// When a table-driven executive can first know: kCorrupted at
  /// at + duration (completion CRC), everything else at `at`.
  [[nodiscard]] Time detect_time() const {
    return fate == ExecutionFate::kCorrupted ? at + duration : at;
  }
  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// Tallies per fate plus drift, shared by every integration point.
struct FaultCounters {
  std::size_t slot_lost = 0;
  std::size_t element_down = 0;
  std::size_t dropped = 0;
  std::size_t corrupted = 0;
  Time drift_slots = 0;

  [[nodiscard]] std::size_t faulted_ops() const {
    return slot_lost + element_down + dropped + corrupted;
  }
  friend bool operator==(const FaultCounters&, const FaultCounters&) = default;
};

/// A nominal op timeline transformed by a plan.
struct FaultedTimeline {
  /// Every op with drift-realized times, in start order (still sorted
  /// and non-overlapping; faults never change durations).
  std::vector<ScheduledOp> ops;
  /// Parallel to `ops`.
  std::vector<ExecutionFate> fate;
  /// Surviving executions only (the ground-truth timeline).
  std::vector<ScheduledOp> valid;
  /// One entry per non-kOk op, in time order.
  std::vector<FaultEvent> events;
  FaultCounters counters;
};

/// Stateless fault oracle for one plan. All queries are pure functions
/// of (plan, arguments); two injectors over equal plans agree on every
/// answer. Construction does not validate — run validate_fault_plan (or
/// arrive via parse_fault_plan) first; malformed rates simply clamp.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  /// True iff dispatch slot t is lost.
  [[nodiscard]] bool slot_lost(Time t) const;

  /// True iff element e is inside a failure/repair window at time t.
  [[nodiscard]] bool element_down(ElementId e, Time t) const;

  /// True iff processor `proc` is inside a failure/repair window at t.
  [[nodiscard]] bool processor_down(std::size_t proc, Time t) const;

  /// True iff link `link` is inside a failure/repair window at t.
  [[nodiscard]] bool link_down(std::size_t link, Time t) const;

  /// Combined bandwidth divisor for `link` at t: the product of every
  /// active kLinkDegrade factor (1 = nominal). Deterministic windows,
  /// no draws.
  [[nodiscard]] Time link_degrade(std::size_t link, Time t) const;

  /// True iff the plan contains any platform-level spec.
  [[nodiscard]] bool has_platform_faults() const;

  /// Sorted, deduplicated instants in (0, horizon) where the platform
  /// state (processor/link availability or degrade factor) changes —
  /// the epoch boundaries of a platform fault run. Pure function of the
  /// plan, so every consumer partitions time identically.
  [[nodiscard]] std::vector<Time> platform_event_times(Time horizon) const;

  /// Fate of an execution of `e` occupying [start, start + duration).
  /// Precedence: element failure, then slot loss, then drop, then
  /// corruption (first matching spec in plan order).
  [[nodiscard]] ExecutionFate fate(ElementId e, Time start, Time duration) const;

  /// Drift slots accrued at or before absolute time t (ticks at
  /// begin + m*every, m >= 1, inside each drift spec's window).
  [[nodiscard]] Time drift_before(Time t) const;

  /// Jitter shift for arrival `index` of constraint `ci` whose nominal
  /// instant is `nominal` (window filtering uses the nominal instant;
  /// the draw is pure in the index, so deferrals never re-roll it).
  [[nodiscard]] Time arrival_shift(std::size_t ci, std::size_t index,
                                   Time nominal) const;

  /// Applies jitter to every asynchronous stream, then re-legalizes by
  /// deferring any arrival closer than the minimum separation to its
  /// (shifted) predecessor. The result always passes validate_arrivals.
  [[nodiscard]] ConstraintArrivals apply_arrivals(const GraphModel& model,
                                                  const ConstraintArrivals& arrivals) const;

  /// Offline transform of a sorted, non-overlapping nominal timeline:
  /// drift slides starts right, every op gets a fate, survivors land in
  /// `valid`. Events past `horizon` still appear in `ops` (callers clip
  /// at emission, like emit_timeline); drift and loss accounting stops
  /// at the horizon.
  [[nodiscard]] FaultedTimeline apply(std::span<const ScheduledOp> nominal,
                                      Time horizon) const;

  /// Stateful 1:1 slot filter for slot-table executives (e.g.
  /// rt::CyclicExecutive::emit): run-decodes executions at the weights
  /// in `comm` and idles the slots of every faulted one. Covers all
  /// execution-fate kinds; clock drift is not representable in a 1:1
  /// transform and is ignored here. `counters`, when non-null, must
  /// outlive the filter and is updated as chunks begin.
  [[nodiscard]] std::function<sim::Slot(Time, sim::Slot)> make_slot_filter(
      const CommGraph& comm, FaultCounters* counters = nullptr) const;

 private:
  [[nodiscard]] double unit_draw(std::size_t spec, std::uint64_t a,
                                 std::uint64_t b) const;

  FaultPlan plan_;
};

/// No-recovery baseline run under a fault plan: the blind table-driven
/// executive dispatches as usual, the plan invalidates executions, and
/// invocations are re-verified against the surviving ops only (with
/// jittered arrival streams). An empty plan reproduces run_executive
/// exactly. A non-null `trace_sink` receives the *visible* horizon-slot
/// timeline (valid executions busy, everything else idle).
struct FaultRunResult {
  ExecutiveResult executive;
  /// Arrivals after jitter + re-legalization (what was actually served).
  ConstraintArrivals effective_arrivals;
  FaultCounters counters;
  std::vector<FaultEvent> events;
  std::size_t total_ops = 0;

  [[nodiscard]] double survival_rate() const {
    return executive.invocations.empty()
               ? 1.0
               : static_cast<double>(satisfied_count()) /
                     static_cast<double>(executive.invocations.size());
  }
  [[nodiscard]] std::size_t satisfied_count() const {
    std::size_t n = 0;
    for (const InvocationRecord& r : executive.invocations) n += r.satisfied ? 1 : 0;
    return n;
  }
};

[[nodiscard]] FaultRunResult run_executive_with_faults(
    const StaticSchedule& sched, const GraphModel& model,
    const ConstraintArrivals& arrivals, Time horizon, const FaultPlan& plan,
    sim::TraceSink* trace_sink = nullptr);

}  // namespace rtg::core
