// heuristic.hpp — constructive latency scheduling (Theorem 3).
//
// The paper's Theorem 3: if (i) Σ w_i/d_i <= 1/2, (ii) floor(d_i/2) >=
// w_i, and (iii) all functional elements can be pipelined, then a
// feasible static schedule always exists. The constructive proof this
// module implements:
//
//   1. Software-pipeline the model so every operation is unit weight.
//   2. Turn every asynchronous constraint (C, p, d) into a periodic
//      *server*: period = deadline = ceil(d/2), budget w = computation
//      time of C. If each server instance executes C completely inside
//      its period window, then every interval of length d (>= 2*ceil(d/2)
//      - 1 ... specifically period + deadline <= d + 1) contains a full
//      window and hence a complete execution of C — latency <= d.
//      Periodic constraints become servers with period p and deadline
//      min(d, p) directly.
//   3. Schedule the servers with EDF over the server hyperperiod at
//      op granularity (ops are non-preemptible; after pipelining they
//      are unit-size, so this is exactly preemptive EDF). Server
//      utilization Σ w_i/ceil(d_i/2) <= Σ 2 w_i / d_i <= 1 under the
//      theorem's hypotheses, and EDF with U <= 1 and implicit deadlines
//      never misses — so construction always succeeds there.
//   4. Emit each server instance's task-graph operations in topological
//      order; the EDF trace over one hyperperiod is the static schedule.
//
// Outside the theorem's hypotheses the same construction is attempted
// and the result verified; failure is reported with a reason.
#pragma once

#include <atomic>
#include <optional>
#include <string>

#include "core/latency.hpp"
#include "core/model.hpp"
#include "core/optimize.hpp"
#include "core/pipeline.hpp"
#include "core/static_schedule.hpp"

namespace rtg::core {

struct HeuristicOptions {
  /// Apply software pipelining first (Theorem 3's hypothesis (iii)).
  bool pipeline = true;
  /// Try coalescing constraints that share work before scheduling.
  bool coalesce = false;
  /// Round every server period DOWN to the nearest power of two. A
  /// smaller period only raises the service rate, so correctness is
  /// preserved, at up to 2x extra utilization — in exchange the server
  /// hyperperiod collapses to the single largest power of two, taming
  /// schedules whose raw periods are co-prime.
  bool harmonize_periods = false;
  /// Upper bound on the server hyperperiod (schedule length); larger
  /// values are rejected with a failure instead of exploding memory.
  Time max_schedule_length = 1'000'000;
  /// Worker threads for the final verification of the constructed
  /// schedule (see VerifyOptions::n_threads). 0 = hardware concurrency;
  /// 1 = serial. The report is bit-identical at every thread count.
  std::size_t n_threads = 0;
  /// Refine the constructed schedule with the compaction pass
  /// (core/optimize) before returning. The pass runs on the
  /// IncrementalVerifier, re-querying only windows whose cached
  /// embedding witness touched the dropped execution; counters land in
  /// HeuristicResult::refine_stats.
  bool refine = false;
  /// Cooperative cancellation: when non-null and set, construction
  /// stops at the next EDF step or verification boundary and returns
  /// with success = false and failure_reason = "cancelled" (the
  /// embedded report carries cancelled = true when verification was the
  /// phase interrupted). Used by the service layer for job deadlines.
  const std::atomic<bool>* cancel = nullptr;
  /// Liveness beacon: when non-null, bumped (relaxed) at every
  /// cancellation poll here and in the embedded verification, so a
  /// watchdog can tell slow-but-alive construction from a wedged run.
  std::atomic<std::uint64_t>* progress = nullptr;
};

struct HeuristicResult {
  bool success = false;
  std::string failure_reason;

  /// The model the schedule is expressed against (pipelined and/or
  /// coalesced rewrite of the input; identical to the input when both
  /// options are off).
  GraphModel scheduled_model;
  /// The constructed static schedule (valid against scheduled_model),
  /// present iff success.
  std::optional<StaticSchedule> schedule;
  /// Verification of the schedule against scheduled_model.
  FeasibilityReport report;

  /// Σ budget_i / server_period_i — must be <= 1 for EDF to work.
  double server_utilization = 0.0;

  /// Counters from the refinement pass (only populated when
  /// HeuristicOptions::refine is set): executions removed plus the
  /// verification-engine stats, including incremental cache hits.
  OptimizeStats refine_stats;
};

/// Runs the constructive heuristic. Guaranteed to succeed when
/// model.satisfies_theorem3(); best-effort (verified) otherwise.
[[nodiscard]] HeuristicResult latency_schedule(const GraphModel& model,
                                               const HeuristicOptions& options = {});

/// Merges constraints whose task graphs can share work: two constraints
/// whose label sets overlap are replaced by one asynchronous constraint
/// over the *union* task graph with deadline min(d1, d2) and separation
/// min(p1, p2) — a single execution of the union serves both. Merging
/// is greedy and only applied when it lowers the total server
/// utilization Σ w/ceil(d/2) and keeps the union acyclic with unique
/// labels. This realizes the paper's observation that latency
/// scheduling "can take advantage of operations common to two or more
/// task graphs" (e.g. executing f_S once when p_x = p_y).
[[nodiscard]] GraphModel coalesce_model(const GraphModel& model);

}  // namespace rtg::core
