// multiproc.hpp — multiprocessor decomposition.
//
// The paper: "We have also taken care in formulating the graph-based
// model such that for a multiprocessor architecture, the synthesis
// problem can be decomposed into a set of single processor synthesis
// problems and a similar-looking problem for scheduling the
// communication network." This module implements that decomposition:
//
//   1. Partition the functional elements across m processors
//      (round-robin, longest-processing-time, or communication-aware).
//   2. Schedule the communication network as a TDMA bus: one slot per
//      distinct cross-processor channel per bus cycle, so any message
//      waits at most one bus cycle B.
//   3. Split each constraint's deadline between its processor segments
//      and its messages, and run single-processor latency scheduling
//      (core/heuristic) per processor on the projected sub-constraints.
//   4. Verify end-to-end: a generalized embedding search over the m
//      processor traces plus the bus trace, where each cross edge u->v
//      must ride a message slot between u's finish and v's start —
//      this realizes the model's distributed-execution rule (clause (3)
//      of "executed in an interval") and the pipeline-ordering of
//      transmissions.
//
// The composition is sound because the latency property is
// window-anchored: if processor P's sub-schedule has latency d_P for a
// sub-task-graph, then within d_P of *any* instant — in particular, of
// a message arrival — a complete execution starting after that instant
// exists. End-to-end latency is therefore at most the sum of segment
// latencies plus one bus cycle per crossing, which the deadline split
// budgets for; the final verification checks it exactly.
//
// DEPRECATED (ISSUE 9): this header is now a compatibility shim over
// src/map, which generalizes the decomposition to arbitrary platforms
// (link topologies, bandwidths, a portfolio of mappers — see
// docs/MAPPING.md). partition_elements survives here (core/network
// still uses it; map::GreedyMapper's legacy policies delegate to it);
// multiproc_schedule / multiproc_latency are implemented in
// map/multiproc_compat.cpp as the single-bus unit-slot special case of
// map::deploy / map::distributed_latency — binaries using them must
// link rtg_map. New code should target map::deploy directly.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/heuristic.hpp"
#include "core/model.hpp"
#include "core/static_schedule.hpp"

namespace rtg::core {

enum class PartitionStrategy : std::uint8_t {
  kRoundRobin,   ///< element i -> processor i mod m
  kLpt,          ///< longest processing time first onto least-loaded
  kCommunication,///< greedy: co-locate with predecessors, balance load
};

/// Assigns every element of `comm` to one of `m` processors.
[[nodiscard]] std::vector<std::size_t> partition_elements(const CommGraph& comm,
                                                          std::size_t m,
                                                          PartitionStrategy strategy);

/// A directed inter-processor channel carrying messages on the bus.
using BusChannel = std::pair<ElementId, ElementId>;

struct MultiprocOptions {
  std::size_t processors = 2;
  PartitionStrategy strategy = PartitionStrategy::kLpt;
  HeuristicOptions local;  ///< options for per-processor scheduling
};

struct MultiprocResult {
  bool success = false;
  std::string failure_reason;

  /// Pipelined model the schedules refer to.
  GraphModel scheduled_model;
  /// assignment[element] = processor (over scheduled_model's elements).
  std::vector<std::size_t> assignment;
  std::vector<StaticSchedule> processor_schedules;
  /// TDMA order of cross-processor channels; slot k of each bus cycle
  /// carries bus_channels[k]. Empty when nothing crosses.
  std::vector<BusChannel> bus_channels;
  [[nodiscard]] Time bus_cycle() const {
    return static_cast<Time>(bus_channels.empty() ? 1 : bus_channels.size());
  }

  /// Measured end-to-end latency per constraint (nullopt = infinite).
  std::vector<std::optional<Time>> end_to_end_latency;
};

/// Decomposed synthesis: partition, per-processor latency scheduling,
/// bus TDMA, exact end-to-end verification.
[[nodiscard]] MultiprocResult multiproc_schedule(const GraphModel& model,
                                                 const MultiprocOptions& options);

/// Exact end-to-end latency of `tg` against a set of cyclic processor
/// schedules and the TDMA bus: the smallest k such that every window of
/// length >= k contains a distributed execution (ops on their assigned
/// processors, every cross edge served by a message slot after the
/// producer finishes and before the consumer starts). nullopt =
/// infinite. Exact for task graphs without repeated labels (greedy);
/// uses the same greedy bound otherwise and may over-approximate.
[[nodiscard]] std::optional<Time> multiproc_latency(
    const TaskGraph& tg, const std::vector<StaticSchedule>& processor_schedules,
    const std::vector<std::size_t>& assignment,
    const std::vector<BusChannel>& bus_channels);

/// Validates pipeline ordering of transmissions on the bus: for every
/// channel, message slots are strictly ordered (FIFO) — true by
/// construction for TDMA, checked for arbitrary bus schedules.
[[nodiscard]] bool pipeline_ordered_bus(const std::vector<BusChannel>& bus_channels);

}  // namespace rtg::core
