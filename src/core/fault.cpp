#include "core/fault.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rtg::core {

namespace {

// Enough periods that `replicas` stacked greedy embeddings starting in
// the first period all resolve.
std::size_t ft_unroll_budget(const TaskGraph& tg, std::size_t replicas) {
  return (2 * tg.size() + 2) * std::max<std::size_t>(replicas, 1);
}

// Earliest combined finish of `replicas` pairwise-disjoint embeddings
// starting at or after t (greedy: peel embeddings earliest-first; an
// upper bound in general, exact for single-op and chain task graphs
// where earliest-disjoint-first is optimal).
std::optional<Time> disjoint_completion(const TaskGraph& tg,
                                        std::span<const ScheduledOp> ops, Time t,
                                        std::size_t replicas,
                                        std::vector<bool>& used_scratch) {
  used_scratch.assign(ops.size(), false);
  Time finish = t;
  for (std::size_t r = 0; r < replicas; ++r) {
    const auto witness = find_earliest_embedding(tg, ops, t, used_scratch);
    if (!witness) return std::nullopt;
    finish = std::max(finish, witness->finish);
    for (std::size_t idx : witness->assignment) used_scratch[idx] = true;
  }
  return finish;
}

}  // namespace

std::optional<Time> fault_tolerant_latency(const StaticSchedule& sched,
                                           const TaskGraph& tg, std::size_t replicas) {
  if (replicas == 0) return 0;
  if (replicas == 1) return schedule_latency(sched, tg);
  if (tg.empty()) return 0;
  if (sched.length() == 0) return std::nullopt;

  const Time period = sched.length();
  const std::vector<ScheduledOp> unrolled =
      unroll_ops(sched, ft_unroll_budget(tg, replicas));

  std::vector<Time> candidates{0};
  for (const ScheduledOp& op : sched.ops()) {
    if (op.start + 1 < period) candidates.push_back(op.start + 1);
  }

  Time latency = 0;
  std::vector<bool> scratch;
  for (Time t : candidates) {
    const auto finish = disjoint_completion(tg, unrolled, t, replicas, scratch);
    if (!finish) return std::nullopt;
    latency = std::max(latency, *finish - t);
  }
  return latency;
}

GraphModel harden_model(const GraphModel& model, std::size_t k) {
  GraphModel hardened(model.comm());
  for (const TimingConstraint& c : model.constraints()) {
    const Time d = c.deadline / static_cast<Time>(k + 1);
    if (d < 1) {
      throw std::invalid_argument("harden_model: constraint '" + c.name +
                                  "' deadline too small for k=" + std::to_string(k));
    }
    TimingConstraint copy = c;
    copy.deadline = d;
    // Hardened constraints run continuously so that every original
    // window splits into k+1 served sub-windows.
    copy.kind = ConstraintKind::kAsynchronous;
    hardened.add_constraint(std::move(copy));
  }
  return hardened;
}

HardenedResult harden_and_schedule(const GraphModel& model, std::size_t k,
                                   const HeuristicOptions& options) {
  HardenedResult result;
  GraphModel hardened;
  try {
    hardened = harden_model(model, k);
  } catch (const std::invalid_argument& e) {
    result.failure_reason = e.what();
    return result;
  }
  const HeuristicResult h = latency_schedule(hardened, options);
  result.scheduled_model = h.scheduled_model;
  if (!h.success) {
    result.failure_reason = h.failure_reason;
    return result;
  }
  result.schedule = h.schedule;
  result.utilization = h.schedule->utilization();

  bool all_ok = true;
  for (std::size_t i = 0; i < model.constraint_count(); ++i) {
    // The hardened scheduled model's task graph i is the (pipelined)
    // original graph; verify k+1 disjoint executions inside the
    // ORIGINAL deadline.
    const auto ft = fault_tolerant_latency(
        *result.schedule, result.scheduled_model.constraint(i).task_graph, k + 1);
    result.ft_latency.push_back(ft);
    if (!ft || *ft > model.constraint(i).deadline) all_ok = false;
  }
  if (!all_ok) {
    result.failure_reason = "fault-tolerant latency verification failed";
    return result;
  }
  result.success = true;
  return result;
}

FaultInjectionResult run_with_failures(const StaticSchedule& sched,
                                       const GraphModel& model,
                                       const ConstraintArrivals& arrivals, Time horizon,
                                       const FailureModel& failures) {
  if (sched.length() == 0) {
    throw std::invalid_argument("run_with_failures: empty schedule");
  }
  Time max_deadline = 0;
  std::size_t max_ops = 0;
  for (const TimingConstraint& c : model.constraints()) {
    max_deadline = std::max(max_deadline, c.deadline);
    max_ops = std::max(max_ops, c.task_graph.size());
  }
  const std::size_t periods = static_cast<std::size_t>(
      (horizon + max_deadline) / std::max<Time>(sched.length(), 1) + 1 +
      static_cast<Time>(2 * max_ops + 2));
  const std::vector<ScheduledOp> all_ops = unroll_ops(sched, periods);

  // Drop each execution independently.
  sim::Rng rng(failures.seed);
  std::vector<ScheduledOp> surviving;
  surviving.reserve(all_ops.size());
  FaultInjectionResult result;
  result.total_ops = all_ops.size();
  for (const ScheduledOp& op : all_ops) {
    if (rng.chance(failures.omission_probability)) {
      ++result.failed_ops;
    } else {
      surviving.push_back(op);
    }
  }

  for (std::size_t i = 0; i < model.constraint_count(); ++i) {
    const TimingConstraint& c = model.constraint(i);
    std::vector<Time> instants;
    if (c.periodic()) {
      for (Time t = 0; t + c.deadline <= horizon; t += c.period) instants.push_back(t);
    } else {
      if (i >= arrivals.size()) {
        throw std::invalid_argument("run_with_failures: missing arrival stream");
      }
      for (Time t : arrivals[i]) {
        if (t + c.deadline <= horizon) instants.push_back(t);
      }
    }
    for (Time t : instants) {
      ++result.invocations;
      const auto finish = earliest_embedding_finish(c.task_graph, surviving, t);
      if (finish && *finish <= t + c.deadline) ++result.satisfied;
    }
  }
  return result;
}

std::vector<ScheduledOp> inject_overruns(std::span<const ScheduledOp> ops,
                                         const OverrunModel& overruns,
                                         std::size_t* overrun_count) {
  sim::Rng rng(overruns.seed);
  std::vector<ScheduledOp> out;
  out.reserve(ops.size());
  std::size_t count = 0;
  Time cursor = 0;
  for (const ScheduledOp& op : ops) {
    ScheduledOp actual = op;
    actual.start = std::max(op.start, cursor);
    if (rng.chance(overruns.probability_for(op.elem))) {
      const double mag = std::max(1.0, overruns.magnitude_for(op.elem));
      actual.duration = static_cast<Time>(
          std::ceil(static_cast<double>(op.duration) * mag));
      ++count;
    }
    cursor = actual.finish();
    out.push_back(actual);
  }
  if (overrun_count != nullptr) *overrun_count = count;
  return out;
}

OverrunRunResult run_with_overruns(const StaticSchedule& sched, const GraphModel& model,
                                   const ConstraintArrivals& arrivals, Time horizon,
                                   const OverrunModel& overruns,
                                   sim::TraceSink* trace_sink, const FaultPlan* faults) {
  if (sched.length() == 0) {
    throw std::invalid_argument("run_with_overruns: empty schedule");
  }
  Time max_deadline = 0;
  std::size_t max_ops = 0;
  for (const TimingConstraint& c : model.constraints()) {
    max_deadline = std::max(max_deadline, c.deadline);
    max_ops = std::max(max_ops, c.task_graph.size());
  }
  const std::size_t periods = static_cast<std::size_t>(
      (horizon + max_deadline) / std::max<Time>(sched.length(), 1) + 1 +
      static_cast<Time>(2 * max_ops + 2));
  const std::vector<ScheduledOp> nominal = unroll_ops(sched, periods);

  OverrunRunResult result;
  result.total_ops = nominal.size();
  std::vector<ScheduledOp> actual =
      inject_overruns(nominal, overruns, &result.overrun_ops);
  for (std::size_t i = 0; i < nominal.size(); ++i) {
    result.max_slide = std::max(result.max_slide, actual[i].start - nominal[i].start);
  }

  // Compose the fault plan over the slid timeline: drift shifts starts
  // further, fates strike at the realized times, and only survivors
  // are visible (to the trace and to invocation windows alike).
  std::optional<FaultInjector> injector;
  ConstraintArrivals effective;
  if (faults != nullptr && !faults->empty()) {
    injector.emplace(*faults);
    FaultedTimeline timeline = injector->apply(actual, horizon);
    result.fault_counters = timeline.counters;
    actual = std::move(timeline.valid);
    effective = injector->apply_arrivals(model, arrivals);
  }
  if (trace_sink != nullptr) emit_timeline(actual, horizon, *trace_sink);

  for (std::size_t i = 0; i < model.constraint_count(); ++i) {
    const TimingConstraint& c = model.constraint(i);
    std::vector<Time> instants;
    if (c.periodic()) {
      for (Time t = 0; t + c.deadline <= horizon; t += c.period) instants.push_back(t);
    } else {
      if (i >= arrivals.size()) {
        throw std::invalid_argument("run_with_overruns: missing arrival stream");
      }
      const std::vector<Time>& stream = injector ? effective[i] : arrivals[i];
      for (Time t : stream) {
        if (t + c.deadline <= horizon) instants.push_back(t);
      }
    }
    for (Time t : instants) {
      ++result.invocations;
      const auto finish = earliest_embedding_finish(c.task_graph, actual, t);
      if (finish && *finish <= t + c.deadline) ++result.satisfied;
    }
  }
  return result;
}

}  // namespace rtg::core
