// degradation.hpp — the adaptive executive: watchdog, graceful
// degradation, and admission control.
//
// The static scheduler proves every deadline under declared weights;
// this module is what runs when reality disagrees. Three mechanisms
// layer over the table-driven executive:
//
//   * A *watchdog* observes the realized op timeline online: it keeps
//     per-constraint miss counters, a sliding-window miss-rate over the
//     most recent invocations, and cycle-overrun accounting (how far a
//     schedule cycle ran past its nominal end).
//   * A *mode ladder* holds the primary schedule plus pre-synthesized
//     degraded modes, built offline by shedding asynchronous
//     constraints in increasing criticality order and re-verifying each
//     reduced schedule (optionally hardened via harden_model so the
//     surviving constraints get replicated executions). When the
//     watchdog's miss-rate crosses a threshold, the executive steps one
//     mode down; after a recovery window of clean cycles it steps back
//     up. Mode changes happen only at schedule-cycle boundaries, so the
//     pipeline ordering baked into each table is never torn mid-cycle.
//   * *Admission control* replaces run_executive's throw-on-violation
//     contract for bursty asynchronous arrivals: a too-early arrival is
//     deferred to the earliest legal instant (backoff) or rejected, per
//     policy, and every decision is recorded in the result.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "core/fault.hpp"
#include "core/heuristic.hpp"
#include "core/model.hpp"
#include "core/runtime.hpp"
#include "core/static_schedule.hpp"

namespace rtg::core {

// ---------------------------------------------------------------- modes

struct ModeLadderOptions {
  /// Maximum number of degraded modes below the primary.
  std::size_t max_degraded_modes = 3;
  /// Replication level for degraded modes: when > 0, each reduced model
  /// is hardened (harden_model) so surviving constraints get k+1
  /// disjoint executions per window. Falls back to plain scheduling
  /// when hardening fails.
  std::size_t harden_k = 0;
  /// Synthesis options for the primary schedule. Degraded schedules are
  /// built over the primary's (already pipelined) model.
  HeuristicOptions heuristic;
};

/// One executive mode: a schedule plus the subset of constraints it
/// still serves. All modes are expressed against the same base model.
struct ExecutiveMode {
  std::string name;
  StaticSchedule schedule;
  /// served[i]: base constraint i is served in this mode.
  std::vector<bool> served;
  double utilization = 0.0;
  /// Asynchronous constraints with criticality below this were shed.
  Criticality min_criticality = 0;
};

struct ModeLadder {
  bool success = false;
  std::string failure_reason;
  /// The (pipelined) model every mode's schedule is expressed against;
  /// constraint indices in modes/results refer to this model, which
  /// preserves the input model's constraint order.
  GraphModel base;
  /// modes[0] is the primary; each later mode sheds strictly more load.
  std::vector<ExecutiveMode> modes;
};

/// Synthesizes the primary schedule and the ladder of degraded modes.
/// Degraded modes shed asynchronous constraints level by level (lowest
/// criticality first); each degraded schedule is re-verified against
/// its reduced model (original deadlines) via the maintenance path
/// before being admitted to the ladder. Periodic constraints are never
/// shed. Modes whose synthesis or re-verification fails end the ladder
/// early; the primary alone still yields success.
[[nodiscard]] ModeLadder build_mode_ladder(const GraphModel& model,
                                           const ModeLadderOptions& options = {});

// ------------------------------------------------------------- watchdog

struct WatchdogOptions {
  /// Sliding window: number of recent served-constraint invocations the
  /// miss-rate is computed over.
  std::size_t window = 24;
  /// Invocations observed before the miss-rate is trusted at all.
  std::size_t min_observations = 8;
  /// Miss-rate (misses / window) at or above which the executive steps
  /// one mode down.
  double degrade_threshold = 0.2;
  /// Miss-rate at or below which a degraded mode is considered healthy.
  double recover_threshold = 0.0;
  /// Cycles spent in a mode before a healthy window steps back up.
  std::size_t recovery_cycles = 8;
  /// When > 0: this many *consecutive* cycles overrunning their nominal
  /// end also trigger degradation, even before deadlines start missing.
  std::size_t overrun_cycles_to_degrade = 0;
};

/// Online detector fed by the executive after each evaluated invocation
/// and each completed cycle. Usable standalone for tests.
class Watchdog {
 public:
  Watchdog(const WatchdogOptions& options, std::size_t constraint_count);

  /// Feeds one evaluated invocation of a *served* constraint.
  void record(std::size_t constraint, bool missed);
  /// Feeds one completed cycle's overrun past its nominal end (0 = the
  /// cycle finished on time).
  void record_cycle(Time overrun_slots);

  [[nodiscard]] double miss_rate() const;
  [[nodiscard]] bool should_degrade() const;
  /// True when the window is trustworthy-clean (used for stepping up).
  [[nodiscard]] bool healthy() const;

  /// Clears the sliding window and overrun streak (on a mode change the
  /// old mode's history must not indict the new one).
  void reset_window();

  [[nodiscard]] std::size_t miss_count(std::size_t constraint) const {
    return miss_count_.at(constraint);
  }
  [[nodiscard]] std::size_t served_count(std::size_t constraint) const {
    return served_count_.at(constraint);
  }
  [[nodiscard]] std::size_t cycle_overruns() const { return cycle_overruns_; }
  [[nodiscard]] Time overrun_slots() const { return overrun_slots_; }

 private:
  WatchdogOptions options_;
  std::deque<bool> window_;  ///< recent outcomes, true = missed
  std::size_t window_misses_ = 0;
  std::vector<std::size_t> miss_count_;    ///< per constraint, cumulative
  std::vector<std::size_t> served_count_;  ///< per constraint, cumulative
  std::size_t cycle_overruns_ = 0;         ///< cycles that ran long, cumulative
  Time overrun_slots_ = 0;                 ///< total slots of cycle overrun
  std::size_t overrun_streak_ = 0;         ///< consecutive overrunning cycles
};

// ------------------------------------------------------------ admission

enum class AdmissionPolicy : std::uint8_t {
  /// Defer a too-early arrival to the earliest legal instant (previous
  /// admission + minimum separation); reject only when the backlog
  /// exceeds max_backoff.
  kDefer,
  /// Reject every arrival that violates the minimum separation.
  kReject,
};

enum class AdmissionDecision : std::uint8_t { kAdmitted, kDeferred, kRejected };

/// One admission-control decision for one asynchronous arrival.
struct AdmissionRecord {
  std::size_t constraint = 0;
  Time requested = 0;  ///< the raw arrival instant
  Time admitted = 0;   ///< the instant actually served (== requested unless deferred)
  AdmissionDecision decision = AdmissionDecision::kAdmitted;
};

// ------------------------------------------------------------ executive

struct AdaptiveOptions {
  /// Injected overrun faults (probability 0 = faithful execution).
  OverrunModel overruns;
  /// Composable fault plan (core/fault_injection): execution fates
  /// strike the realized (overrun-slid) ops, clock drift stalls cycle
  /// starts, and arrival jitter perturbs raw streams *before* admission
  /// control (so induced separation violations are deferred/rejected
  /// per policy). An empty plan injects nothing.
  FaultPlan faults;
  WatchdogOptions watchdog;
  AdmissionPolicy admission = AdmissionPolicy::kDefer;
  /// Under kDefer: an arrival pushed more than this many slots past its
  /// requested instant is rejected instead. <= 0 means unlimited.
  Time max_backoff = 0;
  /// When non-null, receives the *realized* slot timeline (overrun
  /// slides included) cycle by cycle as the executive runs. Emission
  /// ends at the final cycle boundary, which may lie past `horizon` —
  /// cycles are never torn.
  sim::TraceSink* trace_sink = nullptr;
};

/// A mode switch taken at a cycle boundary.
struct ModeChange {
  Time at = 0;  ///< cycle-boundary instant of the switch
  std::size_t from = 0;
  std::size_t to = 0;
  double miss_rate = 0.0;  ///< watchdog miss-rate that motivated it
};

/// One invocation as seen by the adaptive executive.
struct AdaptiveInvocation {
  std::size_t constraint = 0;
  Time invoked = 0;  ///< admitted instant
  Time abs_deadline = 0;
  std::optional<Time> completed;
  bool satisfied = false;
  /// True when every cycle overlapping the window had this constraint
  /// shed — the miss (if any) was deliberate load-shedding, not a
  /// watchdog-visible fault.
  bool shed = false;

  [[nodiscard]] std::optional<Time> response_time() const {
    if (!completed) return std::nullopt;
    return *completed - invoked;
  }
};

struct AdaptiveResult {
  std::vector<AdaptiveInvocation> invocations;  ///< in deadline order
  std::vector<AdmissionRecord> admissions;
  std::vector<ModeChange> mode_changes;
  /// Per base-constraint tallies over non-shed invocations.
  std::vector<std::size_t> miss_count;
  std::vector<std::size_t> served_count;
  /// Invocations whose window fell entirely into shedding cycles.
  std::vector<std::size_t> shed_count;
  std::size_t overrun_ops = 0;  ///< executions that ran past their weight
  Time overrun_slots = 0;       ///< total cycle-boundary overrun absorbed
  /// Fault-plan tallies and per-occurrence log (empty without a plan).
  FaultCounters fault_counters;
  std::vector<FaultEvent> fault_events;
  std::size_t dispatches = 0;
  Time horizon = 0;
  std::size_t final_mode = 0;

  /// True iff every non-shed invocation met its deadline.
  [[nodiscard]] bool all_served_met() const;
  /// Misses among constraints at or above the given criticality,
  /// counting shed invocations of those constraints as misses too (a
  /// critical constraint must never be shed).
  [[nodiscard]] std::size_t critical_misses(const GraphModel& base,
                                            Criticality at_least) const;
};

/// Runs the adaptive executive over the mode ladder for `horizon`
/// slots. Raw arrival streams may be bursty or unsorted: negative
/// instants are rejected, the rest pass through admission control
/// (decisions recorded). Overruns are injected per `options`; the
/// watchdog drives mode changes at cycle boundaries. Invocations whose
/// deadlines fall past the horizon are not recorded.
/// Throws std::invalid_argument when the ladder is unusable (no modes)
/// or the horizon is negative.
[[nodiscard]] AdaptiveResult run_adaptive_executive(const ModeLadder& ladder,
                                                    const ConstraintArrivals& arrivals,
                                                    Time horizon,
                                                    const AdaptiveOptions& options = {});

}  // namespace rtg::core
