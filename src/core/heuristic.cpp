#include "core/heuristic.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "graph/algorithms.hpp"
#include "rt/analysis.hpp"
#include "rt/task.hpp"

namespace rtg::core {

namespace {

// A per-constraint periodic server: execute the whole task graph (ops
// in topological order) once in every period window.
struct Server {
  Time period = 1;
  Time rel_deadline = 1;
  std::vector<std::pair<ElementId, Time>> ops;  // (element, weight) in topo order
  Time budget = 0;

  // live state
  Time next_release = 0;
  bool active = false;
  Time abs_deadline = 0;
  std::size_t next_op = 0;
};

Time server_period(const TimingConstraint& c) {
  if (c.periodic()) return c.period;
  return (c.deadline + 1) / 2;  // ceil(d/2)
}

Time server_deadline(const TimingConstraint& c) {
  if (c.periodic()) return std::min(c.deadline, c.period);
  return (c.deadline + 1) / 2;
}

// Largest power of two <= x (x >= 1).
Time pow2_floor(Time x) {
  Time p = 1;
  while (p * 2 <= x) p *= 2;
  return p;
}

// Harmonized server: period = deadline = the largest power of two not
// exceeding ceil(d/2). Coverage still holds (2P <= d+1 a fortiori) for
// BOTH kinds — a window of every length-d interval then contains a full
// server window, which subsumes periodic invocation windows — and all
// hyperperiods collapse to the single largest power of two.
Time harmonized_period(const TimingConstraint& c) {
  return pow2_floor((c.deadline + 1) / 2);
}

}  // namespace

HeuristicResult latency_schedule(const GraphModel& model, const HeuristicOptions& options) {
  HeuristicResult result;

  GraphModel working = options.coalesce ? coalesce_model(model) : model;
  if (options.pipeline) {
    working = pipeline_model(working).model;
  }
  result.scheduled_model = working;

  const auto cancelled = [&options] {
    if (options.progress != nullptr) {
      options.progress->fetch_add(1, std::memory_order_relaxed);
    }
    return options.cancel != nullptr &&
           options.cancel->load(std::memory_order_relaxed);
  };

  if (working.constraint_count() == 0) {
    result.success = true;
    result.schedule = StaticSchedule{};
    result.schedule->push_idle(1);
    result.report =
        verify_schedule(*result.schedule, working,
                        VerifyOptions{.n_threads = options.n_threads,
                                      .cancel = options.cancel,
                                      .progress = options.progress});
    return result;
  }

  // Build servers.
  std::vector<Server> servers;
  rt::TaskSet server_tasks;
  for (const TimingConstraint& c : working.constraints()) {
    Server s;
    if (options.harmonize_periods) {
      s.period = s.rel_deadline = harmonized_period(c);
    } else {
      s.period = server_period(c);
      s.rel_deadline = server_deadline(c);
    }
    for (OpId op : c.task_graph.topological_ops()) {
      const ElementId e = c.task_graph.label(op);
      s.ops.emplace_back(e, working.comm().weight(e));
      s.budget += working.comm().weight(e);
    }
    if (s.budget > s.rel_deadline) {
      result.failure_reason = "constraint '" + c.name + "' needs " +
                              std::to_string(s.budget) + " slots but its server window is " +
                              std::to_string(s.rel_deadline);
      return result;
    }
    result.server_utilization +=
        static_cast<double>(s.budget) / static_cast<double>(s.period);
    rt::Task task;
    task.name = c.name;
    task.c = s.budget;
    task.p = s.period;
    task.d = s.rel_deadline;
    server_tasks.add(task);
    servers.push_back(std::move(s));
  }

  if (!rt::edf_schedulable(server_tasks)) {
    result.failure_reason = "server set fails the EDF demand-bound test (utilization " +
                            std::to_string(result.server_utilization) + ")";
    return result;
  }

  Time hyper = 1;
  for (const Server& s : servers) hyper = rt::lcm_checked(hyper, s.period);
  if (hyper > options.max_schedule_length) {
    result.failure_reason = "server hyperperiod " + std::to_string(hyper) +
                            " exceeds max_schedule_length";
    return result;
  }

  // Op-granularity EDF over one hyperperiod. Ops are non-preemptible;
  // after pipelining all ops are unit-size, so this coincides with
  // preemptive EDF at slot granularity.
  StaticSchedule sched;
  Time t = 0;
  auto process_releases = [&](Time now) -> bool {
    for (Server& s : servers) {
      while (s.next_release <= now && s.next_release < hyper) {
        if (s.active) return false;  // previous instance unfinished at re-release
        s.active = true;
        s.abs_deadline = s.next_release + s.rel_deadline;
        s.next_op = 0;
        s.next_release += s.period;
      }
    }
    return true;
  };

  std::size_t cancel_tick = 0;
  while (t < hyper) {
    if ((++cancel_tick & 1023) == 0 && cancelled()) {
      result.failure_reason = "cancelled";
      return result;
    }
    if (!process_releases(t)) {
      result.failure_reason = "EDF simulation: instance overrun at re-release";
      return result;
    }
    // Miss check: an active instance whose deadline has passed (or
    // arrives before it can run a single slot) can no longer make it.
    Server* pick = nullptr;
    std::size_t pick_idx = 0;
    for (std::size_t i = 0; i < servers.size(); ++i) {
      Server& s = servers[i];
      if (!s.active) continue;
      if (s.abs_deadline <= t) {
        result.failure_reason = "EDF simulation: deadline miss of server " +
                                std::to_string(i) + " at t=" + std::to_string(t);
        return result;
      }
      if (pick == nullptr || s.abs_deadline < pick->abs_deadline ||
          (s.abs_deadline == pick->abs_deadline && i < pick_idx)) {
        pick = &s;
        pick_idx = i;
      }
    }
    if (pick == nullptr) {
      sched.push_idle(1);
      t += 1;
      continue;
    }
    const auto [elem, weight] = pick->ops[pick->next_op];
    sched.push_execution(elem, weight);
    t += weight;
    if (++pick->next_op == pick->ops.size()) {
      pick->active = false;
      if (t > pick->abs_deadline) {
        result.failure_reason = "EDF simulation: instance finished past its deadline";
        return result;
      }
    }
  }
  // Releases in the final op's shadow that never got a slot.
  if (!process_releases(hyper - 1)) {
    result.failure_reason = "EDF simulation: instance overrun at cycle end";
    return result;
  }
  for (const Server& s : servers) {
    if (s.active) {
      result.failure_reason = "EDF simulation: instance pending at cycle end";
      return result;
    }
  }

  result.report = verify_schedule(sched, working,
                                  VerifyOptions{.n_threads = options.n_threads,
                                                .cancel = options.cancel,
                                                .progress = options.progress});
  if (result.report.cancelled) {
    result.failure_reason = "cancelled";
    return result;
  }
  if (!result.report.feasible) {
    result.failure_reason = "constructed schedule failed verification";
    return result;
  }
  if (options.refine && !cancelled()) {
    // The constructive schedule over-provisions (polling servers run
    // their whole task graph every instance); drop redundant executions
    // while the incremental verifier keeps feasibility exact.
    sched = compact_schedule(sched, working, &result.refine_stats);
    result.report = verify_schedule(sched, working,
                                    VerifyOptions{.n_threads = options.n_threads,
                                                  .cancel = options.cancel,
                                                  .progress = options.progress});
    if (result.report.cancelled) {
      result.failure_reason = "cancelled";
      return result;
    }
  }
  result.success = true;
  result.schedule = std::move(sched);
  return result;
}

namespace {

// Union of two task graphs by element label. Requires unique labels in
// both inputs; returns nullopt when labels repeat or the union would be
// cyclic.
std::optional<TaskGraph> union_task_graph(const TaskGraph& a, const TaskGraph& b) {
  if (a.has_repeated_labels() || b.has_repeated_labels()) return std::nullopt;

  std::unordered_map<ElementId, OpId> node_of;
  TaskGraph merged;
  auto intern = [&](ElementId e) {
    auto it = node_of.find(e);
    if (it != node_of.end()) return it->second;
    const OpId op = merged.add_op(e);
    node_of.emplace(e, op);
    return op;
  };
  for (const TaskGraph* tg : {&a, &b}) {
    for (OpId op = 0; op < tg->size(); ++op) intern(tg->label(op));
    for (const graph::Edge& e : tg->skeleton().edges()) {
      merged.add_dep(intern(tg->label(e.from)), intern(tg->label(e.to)));
    }
  }
  if (!graph::is_acyclic(merged.skeleton())) return std::nullopt;
  return merged;
}

double async_server_util(const CommGraph& comm, const TaskGraph& tg, Time deadline) {
  const Time w = tg.computation_time(comm);
  const Time period = (deadline + 1) / 2;
  return static_cast<double>(w) / static_cast<double>(period);
}

double constraint_server_util(const CommGraph& comm, const TimingConstraint& c) {
  const Time w = c.task_graph.computation_time(comm);
  if (c.periodic()) {
    return static_cast<double>(w) / static_cast<double>(c.period);
  }
  return async_server_util(comm, c.task_graph, c.deadline);
}

}  // namespace

GraphModel coalesce_model(const GraphModel& model) {
  std::vector<TimingConstraint> pool = model.constraints();
  const CommGraph& comm = model.comm();

  bool changed = true;
  while (changed) {
    changed = false;
    double best_gain = 1e-9;
    std::size_t best_i = 0, best_j = 0;
    std::optional<TaskGraph> best_union;

    for (std::size_t i = 0; i < pool.size(); ++i) {
      for (std::size_t j = i + 1; j < pool.size(); ++j) {
        // Only worth trying when label sets overlap.
        std::unordered_set<ElementId> labels_i(pool[i].task_graph.labels().begin(),
                                               pool[i].task_graph.labels().end());
        const bool overlap =
            std::any_of(pool[j].task_graph.labels().begin(),
                        pool[j].task_graph.labels().end(),
                        [&](ElementId e) { return labels_i.contains(e); });
        if (!overlap) continue;

        auto merged = union_task_graph(pool[i].task_graph, pool[j].task_graph);
        if (!merged) continue;
        const Time d = std::min(pool[i].deadline, pool[j].deadline);
        const Time w = merged->computation_time(comm);

        // Two periodic constraints with the same period (and phase 0)
        // merge into one periodic constraint: one execution per period
        // serves both invocations. Anything else merges into an
        // asynchronous constraint, whose any-window latency guarantee
        // subsumes both originals.
        const bool as_periodic = pool[i].periodic() && pool[j].periodic() &&
                                 pool[i].period == pool[j].period;
        double after;
        if (as_periodic) {
          if (w > std::min(d, pool[i].period)) continue;  // server cannot fit
          after = static_cast<double>(w) / static_cast<double>(pool[i].period);
        } else {
          if (w > (d + 1) / 2) continue;  // server cannot fit
          after = async_server_util(comm, *merged, d);
        }

        const double before = constraint_server_util(comm, pool[i]) +
                              constraint_server_util(comm, pool[j]);
        const double gain = before - after;
        if (gain > best_gain) {
          best_gain = gain;
          best_i = i;
          best_j = j;
          best_union = std::move(merged);
        }
      }
    }

    if (best_union) {
      TimingConstraint merged;
      merged.name = pool[best_i].name + "+" + pool[best_j].name;
      merged.task_graph = std::move(*best_union);
      merged.deadline = std::min(pool[best_i].deadline, pool[best_j].deadline);
      merged.period = std::min(pool[best_i].period, pool[best_j].period);
      const bool as_periodic = pool[best_i].periodic() && pool[best_j].periodic() &&
                               pool[best_i].period == pool[best_j].period;
      merged.kind =
          as_periodic ? ConstraintKind::kPeriodic : ConstraintKind::kAsynchronous;
      // A merged execution serves both members: it must survive
      // degradation as long as the more critical of the two.
      merged.criticality = std::max(pool[best_i].criticality, pool[best_j].criticality);
      pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(best_j));
      pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(best_i));
      pool.push_back(std::move(merged));
      changed = true;
    }
  }

  GraphModel out(model.comm());
  for (TimingConstraint& c : pool) out.add_constraint(std::move(c));
  return out;
}

}  // namespace rtg::core
