#include "core/network.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <stdexcept>

#include "core/multiproc.hpp"  // partition_elements
#include "core/pipeline.hpp"
#include "rt/task.hpp"         // lcm_checked

namespace rtg::core {

NetworkTopology::NetworkTopology(std::size_t processors)
    : n_(processors), adj_(processors) {
  if (processors == 0) {
    throw std::invalid_argument("NetworkTopology: zero processors");
  }
}

bool NetworkTopology::add_link(std::size_t a, std::size_t b) {
  if (a >= n_ || b >= n_) throw std::out_of_range("NetworkTopology::add_link");
  if (a == b) throw std::invalid_argument("NetworkTopology: self link");
  if (has_link(a, b)) return false;
  adj_[a].push_back(b);
  std::sort(adj_[a].begin(), adj_[a].end());
  return true;
}

void NetworkTopology::add_duplex(std::size_t a, std::size_t b) {
  add_link(a, b);
  add_link(b, a);
}

bool NetworkTopology::has_link(std::size_t a, std::size_t b) const {
  if (a >= n_ || b >= n_) return false;
  return std::binary_search(adj_[a].begin(), adj_[a].end(), b);
}

std::vector<NetworkLink> NetworkTopology::links() const {
  std::vector<NetworkLink> out;
  for (std::size_t a = 0; a < n_; ++a) {
    for (std::size_t b : adj_[a]) out.push_back(NetworkLink{a, b});
  }
  return out;
}

std::optional<std::vector<std::size_t>> NetworkTopology::route(std::size_t a,
                                                               std::size_t b) const {
  if (a >= n_ || b >= n_) return std::nullopt;
  if (a == b) return std::vector<std::size_t>{a};
  std::vector<std::size_t> parent(n_, static_cast<std::size_t>(-1));
  std::deque<std::size_t> queue{a};
  parent[a] = a;
  while (!queue.empty()) {
    const std::size_t cur = queue.front();
    queue.pop_front();
    for (std::size_t next : adj_[cur]) {  // ascending -> deterministic
      if (parent[next] != static_cast<std::size_t>(-1)) continue;
      parent[next] = cur;
      if (next == b) {
        std::vector<std::size_t> path{b};
        for (std::size_t v = b; v != a; v = parent[v]) path.push_back(parent[v]);
        std::reverse(path.begin(), path.end());
        return path;
      }
      queue.push_back(next);
    }
  }
  return std::nullopt;
}

NetworkTopology NetworkTopology::full_mesh(std::size_t processors) {
  NetworkTopology t(processors);
  for (std::size_t a = 0; a < processors; ++a) {
    for (std::size_t b = 0; b < processors; ++b) {
      if (a != b) t.add_link(a, b);
    }
  }
  return t;
}

NetworkTopology NetworkTopology::ring(std::size_t processors) {
  NetworkTopology t(processors);
  if (processors >= 2) {
    for (std::size_t a = 0; a < processors; ++a) {
      const std::size_t b = (a + 1) % processors;
      if (!t.has_link(a, b)) t.add_duplex(a, b);
    }
  }
  return t;
}

NetworkTopology NetworkTopology::star(std::size_t processors) {
  NetworkTopology t(processors);
  for (std::size_t leaf = 1; leaf < processors; ++leaf) {
    t.add_duplex(0, leaf);
  }
  return t;
}

namespace {

// Index of a link's schedule in the table, or npos.
std::size_t find_link_schedule(const std::vector<LinkSchedule>& tables,
                               std::size_t from, std::size_t to) {
  for (std::size_t i = 0; i < tables.size(); ++i) {
    if (tables[i].link.from == from && tables[i].link.to == to) return i;
  }
  return static_cast<std::size_t>(-1);
}

// Slot offset of (channel, hop) in a link's cycle, or npos.
std::size_t find_slot(const LinkSchedule& table, ElementId u, ElementId v,
                      std::size_t hop) {
  for (std::size_t k = 0; k < table.slots.size(); ++k) {
    if (table.slots[k] == LinkSlot{u, v, hop}) return k;
  }
  return static_cast<std::size_t>(-1);
}

// Earliest arrival over the TDMA slot (offset within cycle) with
// transmission start >= ready.
Time slot_arrival(Time ready, std::size_t offset, Time cycle) {
  const Time off = static_cast<Time>(offset);
  Time j = (ready - off + cycle - 1) / cycle;
  if (j < 0) j = 0;
  return j * cycle + off + 1;
}

}  // namespace

std::optional<Time> network_latency(const TaskGraph& tg,
                                    const std::vector<StaticSchedule>& schedules,
                                    const std::vector<std::size_t>& assignment,
                                    const NetworkTopology& topology,
                                    const std::vector<LinkSchedule>& tables) {
  if (tg.empty()) return 0;

  Time cycle = 1;
  for (const StaticSchedule& s : schedules) {
    if (s.length() > 0) cycle = rt::lcm_checked(cycle, s.length());
  }
  for (const LinkSchedule& t : tables) {
    cycle = rt::lcm_checked(cycle, t.cycle());
  }

  const std::size_t horizon_cycles = 2 * tg.size() + 2;
  const Time horizon = static_cast<Time>(horizon_cycles) * cycle;
  std::vector<std::vector<ScheduledOp>> proc_ops(schedules.size());
  for (std::size_t p = 0; p < schedules.size(); ++p) {
    if (schedules[p].length() == 0) continue;
    proc_ops[p] =
        unroll_ops(schedules[p], static_cast<std::size_t>(horizon / schedules[p].length()) + 1);
  }

  const auto topo = tg.topological_ops();

  auto completion = [&](Time t) -> std::optional<Time> {
    std::vector<Time> finish(tg.size(), 0);
    Time makespan = t;
    for (OpId v : topo) {
      const ElementId ev = tg.label(v);
      const std::size_t pv = assignment.at(ev);
      Time ready = t;
      for (OpId u : tg.skeleton().predecessors(v)) {
        const ElementId eu = tg.label(u);
        const std::size_t pu = assignment.at(eu);
        if (pu == pv) {
          ready = std::max(ready, finish[u]);
          continue;
        }
        const auto path = topology.route(pu, pv);
        if (!path) return std::nullopt;
        Time hop_ready = std::max(finish[u], t);  // transmissions inside window
        for (std::size_t hop = 0; hop + 1 < path->size(); ++hop) {
          const std::size_t table =
              find_link_schedule(tables, (*path)[hop], (*path)[hop + 1]);
          if (table == static_cast<std::size_t>(-1)) return std::nullopt;
          const std::size_t offset = find_slot(tables[table], eu, ev, hop);
          if (offset == static_cast<std::size_t>(-1)) return std::nullopt;
          hop_ready = slot_arrival(hop_ready, offset, tables[table].cycle());
        }
        ready = std::max(ready, hop_ready);
      }
      const auto& ops = proc_ops[pv];
      auto it = std::lower_bound(
          ops.begin(), ops.end(), ready,
          [](const ScheduledOp& op, Time tt) { return op.start < tt; });
      bool found = false;
      for (; it != ops.end(); ++it) {
        if (it->elem == ev) {
          finish[v] = it->finish();
          makespan = std::max(makespan, finish[v]);
          found = true;
          break;
        }
      }
      if (!found) return std::nullopt;
    }
    return makespan;
  };

  std::set<Time> candidates{0};
  for (std::size_t p = 0; p < schedules.size(); ++p) {
    if (schedules[p].length() == 0) continue;
    const Time reps = cycle / schedules[p].length();
    for (Time r = 0; r < reps; ++r) {
      for (const ScheduledOp& op : schedules[p].ops()) {
        const Time s = r * schedules[p].length() + op.start + 1;
        if (s < cycle) candidates.insert(s);
      }
    }
  }
  // Every slot boundary matters for link timing; link cycles are short,
  // so add all boundaries up to the largest link cycle.
  Time max_link_cycle = 1;
  for (const LinkSchedule& t : tables) max_link_cycle = std::max(max_link_cycle, t.cycle());
  for (Time s = 1; s < std::min(cycle, max_link_cycle + 1); ++s) candidates.insert(s);

  Time latency = 0;
  for (Time t : candidates) {
    const auto finish = completion(t);
    if (!finish) return std::nullopt;
    latency = std::max(latency, *finish - t);
  }
  return latency;
}

NetworkScheduleResult network_schedule(const GraphModel& input,
                                       const NetworkTopology& topology,
                                       const NetworkOptions& options) {
  NetworkScheduleResult result;
  const std::size_t m = topology.processors();

  GraphModel model = options.local.pipeline ? pipeline_model(input).model : input;
  result.scheduled_model = model;
  const CommGraph& comm = model.comm();

  result.assignment = partition_elements(comm, m, options.strategy);

  // Register every (channel, hop) on the link it traverses.
  std::map<std::pair<std::size_t, std::size_t>, std::vector<LinkSlot>> link_slots;
  auto register_channel = [&](ElementId u, ElementId v) -> bool {
    const std::size_t pu = result.assignment[u];
    const std::size_t pv = result.assignment[v];
    const auto path = topology.route(pu, pv);
    if (!path) return false;
    for (std::size_t hop = 0; hop + 1 < path->size(); ++hop) {
      auto& slots = link_slots[{(*path)[hop], (*path)[hop + 1]}];
      const LinkSlot slot{u, v, hop};
      if (std::find(slots.begin(), slots.end(), slot) == slots.end()) {
        slots.push_back(slot);
      }
    }
    return true;
  };

  for (const TimingConstraint& c : model.constraints()) {
    for (const graph::Edge& e : c.task_graph.skeleton().edges()) {
      const ElementId u = c.task_graph.label(e.from);
      const ElementId v = c.task_graph.label(e.to);
      if (result.assignment[u] != result.assignment[v]) {
        if (!register_channel(u, v)) {
          result.failure_reason =
              "no route between processors for channel " + comm.name(u) + " -> " +
              comm.name(v);
          return result;
        }
      }
    }
  }
  for (auto& [link, slots] : link_slots) {
    std::sort(slots.begin(), slots.end(), [](const LinkSlot& a, const LinkSlot& b) {
      if (a.from_elem != b.from_elem) return a.from_elem < b.from_elem;
      if (a.to_elem != b.to_elem) return a.to_elem < b.to_elem;
      return a.hop < b.hop;
    });
    result.link_schedules.push_back(
        LinkSchedule{NetworkLink{link.first, link.second}, slots});
  }

  // Message budget of a channel: Σ over its hops of the hop's link
  // cycle (wait) + 1 (transit) — slot_arrival waits at most one cycle.
  auto channel_budget = [&](ElementId u, ElementId v) -> Time {
    const auto path = topology.route(result.assignment[u], result.assignment[v]);
    Time budget = 0;
    for (std::size_t hop = 0; hop + 1 < path->size(); ++hop) {
      const std::size_t table =
          find_link_schedule(result.link_schedules, (*path)[hop], (*path)[hop + 1]);
      budget += result.link_schedules[table].cycle() + 1;
    }
    return budget;
  };

  // Per-processor decomposition (work-proportional deadline split, as
  // in core/multiproc).
  struct LocalWorld {
    CommGraph comm;
    std::vector<ElementId> to_global;
    std::vector<ElementId> to_local;
    std::vector<TimingConstraint> constraints;
  };
  std::vector<LocalWorld> worlds(m);
  for (std::size_t p = 0; p < m; ++p) {
    worlds[p].to_local.assign(comm.size(), graph::kInvalidNode);
  }
  for (ElementId e = 0; e < comm.size(); ++e) {
    LocalWorld& w = worlds[result.assignment[e]];
    const ElementId local =
        w.comm.add_element(comm.name(e), comm.weight(e), comm.pipelinable(e));
    w.to_global.push_back(e);
    w.to_local[e] = local;
  }
  for (const graph::Edge& ch : comm.digraph().edges()) {
    if (result.assignment[ch.from] == result.assignment[ch.to]) {
      LocalWorld& w = worlds[result.assignment[ch.from]];
      w.comm.add_channel(w.to_local[ch.from], w.to_local[ch.to]);
    }
  }

  for (const TimingConstraint& c : model.constraints()) {
    std::set<std::size_t> procs;
    for (ElementId e : c.task_graph.labels()) procs.insert(result.assignment[e]);
    Time msg_budget = 0;
    for (const graph::Edge& e : c.task_graph.skeleton().edges()) {
      const ElementId u = c.task_graph.label(e.from);
      const ElementId v = c.task_graph.label(e.to);
      if (result.assignment[u] != result.assignment[v]) {
        msg_budget += channel_budget(u, v);
      }
    }
    const Time local_total = c.deadline - msg_budget;
    if (local_total < static_cast<Time>(procs.size())) {
      result.failure_reason = "constraint '" + c.name +
                              "': deadline too small after message budget " +
                              std::to_string(msg_budget);
      return result;
    }
    std::vector<Time> proc_work(m, 0);
    Time total_work = 0;
    for (ElementId e : c.task_graph.labels()) {
      proc_work[result.assignment[e]] += comm.weight(e);
      total_work += comm.weight(e);
    }

    for (std::size_t p : procs) {
      LocalWorld& w = worlds[p];
      TaskGraph sub;
      std::vector<OpId> sub_op(c.task_graph.size(), graph::kInvalidNode);
      for (OpId op = 0; op < c.task_graph.size(); ++op) {
        const ElementId e = c.task_graph.label(op);
        if (result.assignment[e] == p) sub_op[op] = sub.add_op(w.to_local[e]);
      }
      if (sub.empty()) continue;
      for (const graph::Edge& e : c.task_graph.skeleton().edges()) {
        if (sub_op[e.from] != graph::kInvalidNode &&
            sub_op[e.to] != graph::kInvalidNode) {
          sub.add_dep(sub_op[e.from], sub_op[e.to]);
        }
      }
      TimingConstraint local;
      local.name = c.name + "@" + std::to_string(p);
      local.task_graph = std::move(sub);
      local.period = c.period;
      local.deadline = std::max<Time>(2 * proc_work[p],
                                      local_total * proc_work[p] /
                                          std::max<Time>(total_work, 1));
      local.kind = ConstraintKind::kAsynchronous;
      w.constraints.push_back(std::move(local));
    }
  }

  result.processor_schedules.resize(m);
  for (std::size_t p = 0; p < m; ++p) {
    LocalWorld& w = worlds[p];
    GraphModel local_model(w.comm);
    for (TimingConstraint& c : w.constraints) local_model.add_constraint(std::move(c));
    HeuristicOptions local_opts = options.local;
    local_opts.pipeline = false;
    const HeuristicResult local = latency_schedule(local_model, local_opts);
    if (!local.success) {
      result.failure_reason = "processor " + std::to_string(p) + ": " +
                              local.failure_reason;
      return result;
    }
    StaticSchedule global_sched;
    for (const ScheduleEntry& entry : local.schedule->entries()) {
      if (entry.elem == kIdleEntry) {
        global_sched.push_idle(entry.duration);
      } else {
        global_sched.push_execution(w.to_global[entry.elem], entry.duration);
      }
    }
    result.processor_schedules[p] = std::move(global_sched);
  }
  for (std::size_t p = 0; p < m; ++p) {
    if (result.processor_schedules[p].length() == 0) {
      result.processor_schedules[p].push_idle(1);
    }
  }

  bool all_ok = true;
  for (const TimingConstraint& c : model.constraints()) {
    const auto latency =
        network_latency(c.task_graph, result.processor_schedules, result.assignment,
                        topology, result.link_schedules);
    result.end_to_end_latency.push_back(latency);
    if (!latency || *latency > c.deadline) all_ok = false;
  }
  if (!all_ok) {
    result.failure_reason = "end-to-end verification failed";
    return result;
  }
  result.success = true;
  return result;
}

}  // namespace rtg::core
