// pipeline.hpp — software pipelining.
//
// The paper: "we can reduce the size of critical sections by software
// pipelining, i.e., decomposing a functional element into a chain of
// sub-functions each of which has the same computation time. (We now
// see one of the virtues of the graph-based model: all the data
// dependencies are made explicit and hence software pipelining can be
// easily automated.)"
//
// This module rewrites a model so that every pipelinable element of
// weight w > 1 becomes a chain of w unit-weight sub-elements
// e/0 -> e/1 -> ... -> e/w-1; communication channels into e are
// redirected into e/0, channels out of e leave from e/w-1, and every
// task-graph operation labelled e becomes the corresponding chain of
// operations. Non-pipelinable elements are left untouched.
#pragma once

#include <vector>

#include "core/model.hpp"

namespace rtg::core {

/// Result of pipelining: the rewritten model plus provenance — for each
/// element of the new communication graph, which original element it
/// came from (sub-elements of a decomposed element all map back to it).
struct PipelinedModel {
  GraphModel model;
  /// origin[new_element] = original element id.
  std::vector<ElementId> origin;
  /// stage[new_element] = sub-function index within the original
  /// element (0 for elements that were not decomposed).
  std::vector<Time> stage;
};

/// Applies software pipelining to every pipelinable element of weight
/// > 1. Constraints, periods, deadlines and kinds are preserved.
[[nodiscard]] PipelinedModel pipeline_model(const GraphModel& model);

/// True iff the model needs no pipelining (every element has weight 1
/// or is non-pipelinable).
[[nodiscard]] bool fully_unit_weight(const GraphModel& model);

}  // namespace rtg::core
