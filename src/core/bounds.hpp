// bounds.hpp — necessary conditions for feasibility.
//
// Cheap analytic lower bounds that refute infeasible models without
// search, and diagnose *why*. Complements the exact solver (which uses
// them as an early-out before exploring the simulation game) and the
// heuristic (whose failure reports cite them):
//
//   * Critical path: a task graph's heaviest precedence path must fit
//     inside the deadline — precedence forces those executions to run
//     serially, so cp(C_i) > d_i is immediately infeasible.
//   * Window capacity: a window of length d_i has d_i slots but must
//     hold w_i slots of C_i's work, so w_i > d_i is infeasible (the
//     per-window version of the critical-path test for antichains).
//   * Element demand density: constraint i forces, in every window of
//     length d_i, cnt_i(e) complete executions of element e. Executions
//     are shareable between constraints, so the binding per-element
//     rate is max_i cnt_i(e)/d_i (not the sum), and the processor must
//     sustain Σ_e weight(e) · max_i cnt_i(e)/d_i ≤ 1 in the long run.
//     (Conservative in the exact window combinatorics but sound: it
//     uses disjoint windows only.)
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/model.hpp"

namespace rtg::core {

/// One refutation produced by the bounds analysis.
struct InfeasibilityWitness {
  enum class Kind : std::uint8_t {
    kCriticalPath,   ///< cp(C_i) > d_i
    kWindowCapacity, ///< w_i > d_i
    kDemandDensity,  ///< Σ_e w(e)·rate(e) > 1
  };
  Kind kind = Kind::kCriticalPath;
  /// Offending constraint for the per-constraint kinds; unset (npos)
  /// for the global density bound.
  std::size_t constraint = static_cast<std::size_t>(-1);
  std::string detail;
};

/// Heaviest precedence-path weight of the task graph under the model's
/// element weights.
[[nodiscard]] Time task_graph_critical_path(const TaskGraph& tg, const CommGraph& comm);

/// The sharing-aware long-run demand density Σ_e weight(e) ·
/// max_i cnt_i(e)/d_i (0 when there are no constraints).
[[nodiscard]] double demand_density(const GraphModel& model);

/// Runs all necessary-condition checks. Empty result = no refutation
/// found (the model MAY be feasible; these are necessary conditions
/// only). Non-empty = provably infeasible, with reasons.
[[nodiscard]] std::vector<InfeasibilityWitness> refute_feasibility(const GraphModel& model);

/// Human-readable rendering of a witness.
[[nodiscard]] std::string to_string(const InfeasibilityWitness& witness,
                                    const GraphModel& model);

}  // namespace rtg::core
