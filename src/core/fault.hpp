// fault.hpp — fault-tolerant latency scheduling.
//
// The paper's conclusion proposes devising "more domain-specific
// fault-tolerance techniques" on top of the model. This module carries
// that out for crash/omission faults of executions:
//
//   * A schedule is *k-fault-tolerant* for a constraint (C, p, d) if
//     every window of length d contains k+1 pairwise-disjoint
//     executions of C — then any k omitted (failed) executions still
//     leave a complete one inside every invocation window.
//   * Hardening: tighten each deadline to floor(d / (k+1)) and run the
//     ordinary constructive scheduler. Every window of length d then
//     contains k+1 disjoint sub-windows, each with its own execution —
//     a sufficient (not necessary) construction, in the same spirit as
//     Theorem 3.
//   * Verification measures the *fault-tolerant latency*: the smallest
//     L such that every window of length >= L contains k+1 disjoint
//     executions.
//   * Failure injection: the executive drops executions at random (or
//     scripted) and invocations are re-verified against the surviving
//     ops only.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "core/fault_injection.hpp"
#include "core/heuristic.hpp"
#include "core/model.hpp"
#include "core/runtime.hpp"
#include "core/static_schedule.hpp"
#include "sim/rng.hpp"

namespace rtg::core {

/// Smallest L such that every window of length >= L of the cyclic
/// schedule contains `replicas` pairwise-disjoint executions of `tg`
/// (disjoint = no shared schedule op). nullopt = no such L.
/// replicas == 1 coincides with schedule_latency.
[[nodiscard]] std::optional<Time> fault_tolerant_latency(const StaticSchedule& sched,
                                                         const TaskGraph& tg,
                                                         std::size_t replicas);

/// Rewrites the model with deadlines floored to d / (k+1) (periodic
/// constraints' periods are untouched; their deadlines shrink the same
/// way). Throws std::invalid_argument if some deadline would reach 0.
[[nodiscard]] GraphModel harden_model(const GraphModel& model, std::size_t k);

struct HardenedResult {
  bool success = false;
  std::string failure_reason;
  /// Schedule over scheduled_model (pipelined hardened model).
  GraphModel scheduled_model;
  std::optional<StaticSchedule> schedule;
  /// Verified fault-tolerant latency per original constraint (against
  /// the ORIGINAL deadlines, k+1 disjoint executions).
  std::vector<std::optional<Time>> ft_latency;
  /// Extra busy fraction relative to the unhardened schedule (>= 1).
  double utilization = 0.0;
};

/// Hardens and schedules: every asynchronous constraint's window of its
/// original deadline d ends up holding k+1 disjoint executions.
[[nodiscard]] HardenedResult harden_and_schedule(const GraphModel& model, std::size_t k,
                                                 const HeuristicOptions& options = {});

/// Failure model for injection: each scheduled execution independently
/// fails (is omitted) with probability `omission_probability`.
struct FailureModel {
  double omission_probability = 0.0;
  std::uint64_t seed = 1;
};

struct FaultInjectionResult {
  std::size_t invocations = 0;
  std::size_t satisfied = 0;
  std::size_t failed_ops = 0;
  std::size_t total_ops = 0;

  [[nodiscard]] double survival_rate() const {
    return invocations == 0 ? 1.0
                            : static_cast<double>(satisfied) /
                                  static_cast<double>(invocations);
  }
};

/// Runs the executive for `horizon` slots with omission faults: failed
/// executions are removed from the op timeline before invocation
/// windows are checked. Arrival streams as in run_executive.
[[nodiscard]] FaultInjectionResult run_with_failures(const StaticSchedule& sched,
                                                     const GraphModel& model,
                                                     const ConstraintArrivals& arrivals,
                                                     Time horizon,
                                                     const FailureModel& failures);

/// Overrun fault model: an execution may take *longer* than its
/// declared weight. Each execution independently overruns with the
/// element's probability; an overrunning execution of duration w takes
/// ceil(w * magnitude) slots instead. The dispatcher is table-driven
/// and non-preemptive, so an overrun slides every later op of the same
/// timeline right (an op starts at max(table slot, previous finish));
/// idle slots absorb the slide.
struct OverrunModel {
  double probability = 0.0;  ///< default per-execution overrun probability
  double magnitude = 2.0;    ///< duration multiplier when overrunning (> 1)
  std::uint64_t seed = 1;
  /// Optional per-element overrides indexed by ElementId; entries past
  /// the end (or an empty vector) fall back to the defaults above.
  std::vector<double> element_probability;
  std::vector<double> element_magnitude;

  [[nodiscard]] double probability_for(ElementId e) const {
    return e < element_probability.size() ? element_probability[e] : probability;
  }
  [[nodiscard]] double magnitude_for(ElementId e) const {
    return e < element_magnitude.size() ? element_magnitude[e] : magnitude;
  }
};

/// Perturbs a table timeline (sorted, non-overlapping, e.g. from
/// unroll_ops) with overruns under the slide semantics above. The
/// result is again sorted and non-overlapping. `overrun_count`, when
/// non-null, receives the number of executions that overran.
[[nodiscard]] std::vector<ScheduledOp> inject_overruns(
    std::span<const ScheduledOp> ops, const OverrunModel& overruns,
    std::size_t* overrun_count = nullptr);

struct OverrunRunResult {
  std::size_t invocations = 0;
  std::size_t satisfied = 0;
  std::size_t overrun_ops = 0;
  std::size_t total_ops = 0;
  /// Largest slide of any dispatch past its table slot.
  Time max_slide = 0;
  /// Fault-plan tallies (all zero when no plan was injected).
  FaultCounters fault_counters;

  [[nodiscard]] double survival_rate() const {
    return invocations == 0 ? 1.0
                            : static_cast<double>(satisfied) /
                                  static_cast<double>(invocations);
  }
};

/// Non-adaptive baseline: runs the blind executive for `horizon` slots
/// under injected overruns and re-verifies every invocation window
/// against the slid timeline. Arrival streams as in run_executive.
/// A non-null `trace_sink` receives the *slid* slot timeline (what a
/// probe on the processor would actually observe), `horizon` slots.
/// A non-null `faults` composes a fault plan on top of the overruns:
/// the plan transforms the slid timeline (core/fault_injection), only
/// surviving executions count toward invocations, the emitted trace
/// idles the faulted slots, and arrivals are jitter-adjusted.
[[nodiscard]] OverrunRunResult run_with_overruns(const StaticSchedule& sched,
                                                 const GraphModel& model,
                                                 const ConstraintArrivals& arrivals,
                                                 Time horizon,
                                                 const OverrunModel& overruns,
                                                 sim::TraceSink* trace_sink = nullptr,
                                                 const FaultPlan* faults = nullptr);

}  // namespace rtg::core
