// schedule_io.hpp — textual serialization of static schedules.
//
// Deployment artifact format: the off-line synthesizer saves the
// schedule; the (embedded) run-time executive loads it. One token per
// entry: an element name for an execution (duration implied by the
// element's weight) or "." per idle slot (a run of k idles may be
// written ".k"). Whitespace separated, '#' comments to end of line.
//
//   # control system, cycle = 8
//   fx fs fk .2 fz fs
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/model.hpp"
#include "core/static_schedule.hpp"

namespace rtg::core {

/// Serializes the schedule using the model's element names. Idle runs
/// render as ".k" (or "." when k == 1). Throws std::invalid_argument
/// for schedules mentioning unknown elements.
[[nodiscard]] std::string schedule_to_text(const StaticSchedule& sched,
                                           const CommGraph& comm);

struct ScheduleParseError {
  std::string message;
  std::size_t line = 1;
};

struct ScheduleParseResult {
  std::optional<StaticSchedule> schedule;
  std::vector<ScheduleParseError> errors;

  [[nodiscard]] bool ok() const { return errors.empty() && schedule.has_value(); }
};

/// Parses a schedule against a communication graph. Each element token
/// becomes one complete execution of weight(element) slots; unknown
/// names and malformed idle tokens are reported with line numbers.
[[nodiscard]] ScheduleParseResult schedule_from_text(std::string_view text,
                                                     const CommGraph& comm);

}  // namespace rtg::core
