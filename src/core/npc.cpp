#include "core/npc.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <string>

namespace rtg::core {

bool ThreePartitionInstance::balanced() const {
  const Time total = std::accumulate(items.begin(), items.end(), Time{0});
  return total == static_cast<Time>(bins) * capacity;
}

namespace {

void check_instance(const ThreePartitionInstance& inst) {
  if (inst.bins == 0 || inst.items.size() != 3 * inst.bins) {
    throw std::invalid_argument("three_partition: need exactly 3*bins items");
  }
  for (Time a : inst.items) {
    if (a < 1) throw std::invalid_argument("three_partition: non-positive item");
  }
}

TimingConstraint single_op_constraint(std::string name, ElementId e, Time deadline) {
  TaskGraph tg;
  tg.add_op(e);
  TimingConstraint c;
  c.name = std::move(name);
  c.task_graph = std::move(tg);
  c.period = 1;
  c.deadline = deadline;
  c.kind = ConstraintKind::kAsynchronous;
  return c;
}

}  // namespace

GraphModel three_partition_model(const ThreePartitionInstance& inst) {
  check_instance(inst);
  CommGraph comm;
  const ElementId gate = comm.add_element("gate", 1, /*pipelinable=*/false);
  std::vector<ElementId> item_elems;
  for (std::size_t j = 0; j < inst.items.size(); ++j) {
    item_elems.push_back(comm.add_element("item" + std::to_string(j), inst.items[j],
                                          /*pipelinable=*/false));
  }
  GraphModel model(std::move(comm));
  const Time cycle = static_cast<Time>(inst.bins) * (inst.capacity + 1);
  model.add_constraint(single_op_constraint("gate", gate, inst.capacity + 1));
  for (std::size_t j = 0; j < inst.items.size(); ++j) {
    // The packing schedule runs item j once per cycle; a window that
    // opens just after the execution starts sees the next one complete
    // cycle + w - 1 slots later, hence the w - 1 allowance.
    model.add_constraint(single_op_constraint("item" + std::to_string(j), item_elems[j],
                                              cycle + inst.items[j] - 1));
  }
  return model;
}

GraphModel three_partition_chain_model(const ThreePartitionInstance& inst) {
  check_instance(inst);
  CommGraph comm;
  const ElementId gate = comm.add_element("gate", 1, /*pipelinable=*/false);

  GraphModel model;
  // Build the communication graph first (all elements + chain channels),
  // then the model, then constraints referencing it.
  std::vector<std::vector<ElementId>> chains;
  for (std::size_t j = 0; j < inst.items.size(); ++j) {
    std::vector<ElementId> chain;
    ElementId prev = graph::kInvalidNode;
    for (Time k = 0; k < inst.items[j]; ++k) {
      const ElementId sub = comm.add_element(
          "item" + std::to_string(j) + "/" + std::to_string(k), 1,
          /*pipelinable=*/false);
      if (prev != graph::kInvalidNode) comm.add_channel(prev, sub);
      chain.push_back(sub);
      prev = sub;
    }
    chains.push_back(std::move(chain));
  }
  model = GraphModel(std::move(comm));

  const Time cycle = static_cast<Time>(inst.bins) * (inst.capacity + 1);
  model.add_constraint(single_op_constraint("gate", gate, inst.capacity + 1));
  for (std::size_t j = 0; j < chains.size(); ++j) {
    TaskGraph tg;
    OpId prev = graph::kInvalidNode;
    for (ElementId e : chains[j]) {
      const OpId op = tg.add_op(e);
      if (prev != graph::kInvalidNode) tg.add_dep(prev, op);
      prev = op;
    }
    TimingConstraint c;
    c.name = "item" + std::to_string(j);
    c.task_graph = std::move(tg);
    c.period = 1;
    c.deadline = cycle + inst.items[j] - 1;
    c.kind = ConstraintKind::kAsynchronous;
    model.add_constraint(std::move(c));
  }
  return model;
}

ThreePartitionInstance random_solvable_three_partition(std::size_t bins, Time capacity,
                                                       sim::Rng& rng) {
  if (bins == 0 || capacity < 8 || capacity % 4 != 0) {
    throw std::invalid_argument(
        "random_solvable_three_partition: need bins >= 1, capacity >= 8, capacity % 4 == 0");
  }
  ThreePartitionInstance inst;
  inst.bins = bins;
  inst.capacity = capacity;
  // Inclusive canonical range [B/4, B/2]; boundary items slightly relax
  // strict 3-PARTITION canonicity but keep every bin a triple.
  const Time lo = capacity / 4;
  const Time hi = capacity / 2;
  for (std::size_t b = 0; b < bins; ++b) {
    // Draw a, then b in ranges that leave c = capacity - a - b in
    // (capacity/4, capacity/2).
    Time a, b2, c;
    do {
      a = rng.uniform(lo, hi);
      b2 = rng.uniform(lo, hi);
      c = capacity - a - b2;
    } while (c < lo || c > hi);
    inst.items.push_back(a);
    inst.items.push_back(b2);
    inst.items.push_back(c);
  }
  // Shuffle so bins are not contiguous in the item order.
  for (std::size_t i = inst.items.size(); i > 1; --i) {
    const std::size_t j =
        static_cast<std::size_t>(rng.uniform(0, static_cast<std::int64_t>(i) - 1));
    std::swap(inst.items[i - 1], inst.items[j]);
  }
  return inst;
}

ThreePartitionInstance make_overloaded(ThreePartitionInstance inst) {
  if (inst.items.empty()) {
    throw std::invalid_argument("make_overloaded: empty instance");
  }
  inst.items[0] += 1;
  return inst;
}

namespace {

bool tp_rec(const std::vector<Time>& items, std::vector<bool>& used,
            std::vector<Time>& room, std::size_t placed) {
  if (placed == items.size()) return true;
  // Pick the first unused item (items pre-sorted descending).
  std::size_t j = 0;
  while (used[j]) ++j;
  used[j] = true;
  // Try each bin with room, skipping bins with identical residual room
  // (symmetry pruning).
  Time last_room = -1;
  for (std::size_t b = 0; b < room.size(); ++b) {
    if (room[b] == last_room) continue;
    if (room[b] < items[j]) continue;
    last_room = room[b];
    room[b] -= items[j];
    if (tp_rec(items, used, room, placed + 1)) return true;
    room[b] += items[j];
  }
  used[j] = false;
  return false;
}

}  // namespace

bool solve_three_partition(const ThreePartitionInstance& inst) {
  check_instance(inst);
  if (!inst.balanced()) return false;
  std::vector<Time> items = inst.items;
  std::sort(items.begin(), items.end(), std::greater<>());
  if (!items.empty() && items.front() > inst.capacity) return false;
  std::vector<bool> used(items.size(), false);
  std::vector<Time> room(inst.bins, inst.capacity);
  return tp_rec(items, used, room, 0);
}

}  // namespace rtg::core
