#include "core/synthesis.hpp"

#include <algorithm>
#include <unordered_set>

#include "core/pipeline.hpp"

namespace rtg::core {

ProcessSynthesis synthesize_processes(const GraphModel& input, bool software_pipelining) {
  ProcessSynthesis out;
  out.model = software_pipelining ? pipeline_model(input).model : input;
  const GraphModel& model = out.model;
  out.monitors = model.shared_elements();
  const std::unordered_set<ElementId> monitor_set(out.monitors.begin(),
                                                  out.monitors.end());

  for (const TimingConstraint& c : model.constraints()) {
    SynthesizedProcess proc;
    proc.name = c.name;
    proc.period = c.period;
    proc.deadline = c.deadline;
    proc.kind = c.kind;
    for (OpId op : c.task_graph.topological_ops()) {
      const ElementId e = c.task_graph.label(op);
      proc.body.push_back(e);
      proc.computation += model.comm().weight(e);
      if (monitor_set.contains(e)) proc.monitored.push_back(e);
    }

    rt::Task task;
    task.name = proc.name;
    task.c = proc.computation;
    task.p = proc.period;
    // A process deadline beyond its period is clamped: the process
    // model re-invokes every period, so d > p adds nothing exploitable
    // by the analyses in rt/.
    task.d = std::min(proc.deadline, proc.period);
    task.arrival = c.periodic() ? rt::Arrival::kPeriodic : rt::Arrival::kSporadic;
    Time longest_cs = 0;
    for (ElementId e : proc.monitored) {
      longest_cs = std::max(longest_cs, model.comm().weight(e));
    }
    task.critical_section = std::min(longest_cs, task.c);
    out.task_set.add(task);

    out.processes.push_back(std::move(proc));
  }

  out.hyperperiod = out.task_set.hyperperiod();
  for (const SynthesizedProcess& proc : out.processes) {
    out.work_per_hyperperiod += (out.hyperperiod / proc.period) * proc.computation;
  }
  return out;
}

}  // namespace rtg::core
