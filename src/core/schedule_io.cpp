#include "core/schedule_io.hpp"

#include <cctype>
#include <sstream>
#include <stdexcept>

namespace rtg::core {

std::string schedule_to_text(const StaticSchedule& sched, const CommGraph& comm) {
  std::ostringstream os;
  bool first = true;
  for (const ScheduleEntry& entry : sched.entries()) {
    if (!first) os << ' ';
    first = false;
    if (entry.elem == kIdleEntry) {
      if (entry.duration == 1) {
        os << '.';
      } else {
        os << '.' << entry.duration;
      }
    } else {
      if (!comm.has_element(entry.elem)) {
        throw std::invalid_argument("schedule_to_text: unknown element id " +
                                    std::to_string(entry.elem));
      }
      os << comm.name(entry.elem);
    }
  }
  return os.str();
}

ScheduleParseResult schedule_from_text(std::string_view text, const CommGraph& comm) {
  ScheduleParseResult result;
  StaticSchedule sched;
  std::size_t line = 1;
  std::size_t i = 0;

  auto fail = [&](std::string message) {
    result.errors.push_back(ScheduleParseError{std::move(message), line});
  };

  while (i < text.size()) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#') {
      while (i < text.size() && text[i] != '\n') ++i;
      continue;
    }
    if (c == '.') {
      ++i;
      std::string digits;
      while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i]))) {
        digits.push_back(text[i]);
        ++i;
      }
      Time count = 1;
      if (!digits.empty()) {
        try {
          count = std::stoll(digits);
        } catch (const std::exception&) {
          fail("idle run count out of range");
          continue;
        }
      }
      if (count < 1) {
        fail("idle run count must be >= 1");
        continue;
      }
      sched.push_idle(count);
      continue;
    }
    // Element token: up to whitespace.
    std::string token;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i])) &&
           text[i] != '#') {
      token.push_back(text[i]);
      ++i;
    }
    const auto elem = comm.find(token);
    if (!elem) {
      fail("unknown element '" + token + "'");
      continue;
    }
    sched.push_execution(*elem, comm.weight(*elem));
  }

  if (result.errors.empty()) {
    result.schedule = std::move(sched);
  }
  return result;
}

}  // namespace rtg::core
