#include "core/degradation.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/maintenance.hpp"
#include "sim/rng.hpp"

namespace rtg::core {

// ---------------------------------------------------------------- modes

ModeLadder build_mode_ladder(const GraphModel& model, const ModeLadderOptions& options) {
  ModeLadder ladder;
  const HeuristicResult primary = latency_schedule(model, options.heuristic);
  if (!primary.success) {
    ladder.failure_reason = "primary synthesis failed: " + primary.failure_reason;
    return ladder;
  }
  if (primary.schedule->length() == 0) {
    ladder.failure_reason = "primary schedule is empty";
    return ladder;
  }
  ladder.base = primary.scheduled_model;
  const std::size_t n = ladder.base.constraint_count();

  ExecutiveMode mode0;
  mode0.name = "primary";
  mode0.schedule = *primary.schedule;
  mode0.served.assign(n, true);
  mode0.utilization = primary.schedule->utilization();
  ladder.modes.push_back(std::move(mode0));
  ladder.success = true;

  // Criticality levels that can be shed, ascending. The top tier among
  // asynchronous constraints is never shed: the last-resort mode still
  // serves it (and every periodic constraint).
  std::vector<Criticality> levels;
  for (const TimingConstraint& c : ladder.base.constraints()) {
    if (!c.periodic()) levels.push_back(c.criticality);
  }
  std::sort(levels.begin(), levels.end());
  levels.erase(std::unique(levels.begin(), levels.end()), levels.end());
  if (!levels.empty()) levels.pop_back();

  HeuristicOptions degraded_opts = options.heuristic;
  degraded_opts.pipeline = false;  // the base model is already pipelined

  std::size_t built = 0;
  for (const Criticality level : levels) {
    if (built >= options.max_degraded_modes) break;

    GraphModel reduced(ladder.base.comm());
    std::vector<bool> served(n, false);
    std::size_t kept = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const TimingConstraint& c = ladder.base.constraint(i);
      if (c.periodic() || c.criticality > level) {
        reduced.add_constraint(c);
        served[i] = true;
        ++kept;
      }
    }
    if (kept == 0 || kept == n) continue;

    // Synthesize the reduced schedule, hardened when requested so the
    // surviving constraints get replicated executions per window.
    std::optional<StaticSchedule> sched;
    if (options.harden_k > 0) {
      const HardenedResult hardened =
          harden_and_schedule(reduced, options.harden_k, degraded_opts);
      if (hardened.success) sched = hardened.schedule;
    }
    if (!sched) {
      const HeuristicResult plain = latency_schedule(reduced, degraded_opts);
      if (!plain.success) break;
      sched = plain.schedule;
    }

    // Maintenance re-verification against the ORIGINAL deadlines of
    // the reduced model; a failing schedule is repaired or the ladder
    // ends here.
    const MaintenanceResult check =
        maintain_schedule(*sched, reduced, reduced, degraded_opts);
    if (check.outcome == MaintenanceOutcome::kFailed || !check.schedule) break;
    sched = check.schedule;
    if (sched->length() == 0) break;

    ExecutiveMode mode;
    mode.name = "degraded-" + std::to_string(built + 1);
    mode.schedule = std::move(*sched);
    mode.served = std::move(served);
    mode.utilization = mode.schedule.utilization();
    mode.min_criticality = level + 1;
    ladder.modes.push_back(std::move(mode));
    ++built;
  }
  return ladder;
}

// ------------------------------------------------------------- watchdog

Watchdog::Watchdog(const WatchdogOptions& options, std::size_t constraint_count)
    : options_(options),
      miss_count_(constraint_count, 0),
      served_count_(constraint_count, 0) {}

void Watchdog::record(std::size_t constraint, bool missed) {
  ++served_count_.at(constraint);
  if (missed) ++miss_count_.at(constraint);
  window_.push_back(missed);
  if (missed) ++window_misses_;
  while (window_.size() > options_.window) {
    if (window_.front()) --window_misses_;
    window_.pop_front();
  }
}

void Watchdog::record_cycle(Time overrun_slots) {
  if (overrun_slots > 0) {
    ++cycle_overruns_;
    overrun_slots_ += overrun_slots;
    ++overrun_streak_;
  } else {
    overrun_streak_ = 0;
  }
}

double Watchdog::miss_rate() const {
  if (window_.empty()) return 0.0;
  return static_cast<double>(window_misses_) / static_cast<double>(window_.size());
}

bool Watchdog::should_degrade() const {
  if (window_.size() >= options_.min_observations &&
      miss_rate() >= options_.degrade_threshold) {
    return true;
  }
  return options_.overrun_cycles_to_degrade > 0 &&
         overrun_streak_ >= options_.overrun_cycles_to_degrade;
}

bool Watchdog::healthy() const { return miss_rate() <= options_.recover_threshold; }

void Watchdog::reset_window() {
  window_.clear();
  window_misses_ = 0;
  overrun_streak_ = 0;
}

// ------------------------------------------------------------ executive

bool AdaptiveResult::all_served_met() const {
  for (const AdaptiveInvocation& inv : invocations) {
    if (!inv.shed && !inv.satisfied) return false;
  }
  return true;
}

std::size_t AdaptiveResult::critical_misses(const GraphModel& base,
                                            Criticality at_least) const {
  std::size_t misses = 0;
  for (const AdaptiveInvocation& inv : invocations) {
    if (base.constraint(inv.constraint).criticality >= at_least && !inv.satisfied) {
      ++misses;
    }
  }
  return misses;
}

namespace {

struct PendingInvocation {
  Time deadline = 0;
  Time invoked = 0;
  std::size_t constraint = 0;
};

// Pushes each raw arrival through admission control; returns the
// admitted invocations (windows inside the horizon) and records every
// decision.
std::vector<PendingInvocation> admit_arrivals(const GraphModel& base,
                                              const ConstraintArrivals& arrivals,
                                              Time horizon,
                                              const AdaptiveOptions& options,
                                              std::vector<AdmissionRecord>& decisions) {
  std::vector<PendingInvocation> pending;
  for (std::size_t i = 0; i < base.constraint_count(); ++i) {
    const TimingConstraint& c = base.constraint(i);
    if (c.periodic()) {
      for (Time t = 0; t + c.deadline <= horizon; t += c.period) {
        pending.push_back(PendingInvocation{t + c.deadline, t, i});
      }
      continue;
    }
    if (i >= arrivals.size()) continue;  // no arrivals offered
    std::vector<Time> stream = arrivals[i];
    std::stable_sort(stream.begin(), stream.end());
    bool any_admitted = false;
    Time last = 0;
    for (const Time t : stream) {
      AdmissionRecord rec;
      rec.constraint = i;
      rec.requested = t;
      rec.admitted = t;
      if (t < 0) {
        rec.decision = AdmissionDecision::kRejected;
        decisions.push_back(rec);
        continue;
      }
      if (any_admitted && t < last + c.period) {
        const Time earliest_legal = last + c.period;
        if (options.admission == AdmissionPolicy::kReject ||
            (options.max_backoff > 0 && earliest_legal - t > options.max_backoff)) {
          rec.decision = AdmissionDecision::kRejected;
          decisions.push_back(rec);
          continue;
        }
        rec.decision = AdmissionDecision::kDeferred;
        rec.admitted = earliest_legal;
      } else {
        rec.decision = AdmissionDecision::kAdmitted;
      }
      decisions.push_back(rec);
      any_admitted = true;
      last = rec.admitted;
      if (rec.admitted + c.deadline <= horizon) {
        pending.push_back(
            PendingInvocation{rec.admitted + c.deadline, rec.admitted, i});
      }
    }
  }
  std::sort(pending.begin(), pending.end(),
            [](const PendingInvocation& a, const PendingInvocation& b) {
              if (a.deadline != b.deadline) return a.deadline < b.deadline;
              if (a.invoked != b.invoked) return a.invoked < b.invoked;
              return a.constraint < b.constraint;
            });
  return pending;
}

}  // namespace

AdaptiveResult run_adaptive_executive(const ModeLadder& ladder,
                                      const ConstraintArrivals& arrivals, Time horizon,
                                      const AdaptiveOptions& options) {
  if (!ladder.success || ladder.modes.empty()) {
    throw std::invalid_argument("run_adaptive_executive: unusable mode ladder");
  }
  if (horizon < 0) {
    throw std::invalid_argument("run_adaptive_executive: negative horizon");
  }
  for (const ExecutiveMode& m : ladder.modes) {
    if (m.schedule.length() == 0) {
      throw std::invalid_argument("run_adaptive_executive: mode '" + m.name +
                                  "' has an empty schedule");
    }
  }

  const std::size_t n = ladder.base.constraint_count();
  AdaptiveResult result;
  result.horizon = horizon;
  result.shed_count.assign(n, 0);

  std::optional<FaultInjector> injector;
  if (!options.faults.empty()) {
    const std::vector<std::string> issues =
        validate_fault_plan(options.faults, ladder.base);
    if (!issues.empty()) {
      throw std::invalid_argument("run_adaptive_executive: " + issues.front());
    }
    injector.emplace(options.faults);
  }

  // Arrival jitter perturbs the raw streams; admission control then
  // defers/rejects any separation violation jitter may have induced.
  ConstraintArrivals jittered = arrivals;
  if (injector) {
    for (std::size_t ci = 0; ci < n && ci < jittered.size(); ++ci) {
      if (ladder.base.constraint(ci).periodic()) continue;
      for (std::size_t k = 0; k < jittered[ci].size(); ++k) {
        if (jittered[ci][k] < 0) continue;
        jittered[ci][k] += injector->arrival_shift(ci, k, jittered[ci][k]);
      }
    }
  }

  const std::vector<PendingInvocation> pending =
      admit_arrivals(ladder.base, jittered, horizon, options, result.admissions);

  // Per-mode op tables, flattened once.
  std::vector<std::vector<ScheduledOp>> mode_ops;
  mode_ops.reserve(ladder.modes.size());
  for (const ExecutiveMode& m : ladder.modes) mode_ops.push_back(m.schedule.ops());

  Watchdog watchdog(options.watchdog, n);
  sim::Rng rng(options.overruns.seed);

  std::vector<ScheduledOp> realized;
  // Parallel to `realized`: false for ops a fault invalidated. Only
  // valid ops count toward invocation windows; faulted spans idle in
  // the emitted trace so online observers agree with the evaluation.
  std::vector<bool> realized_ok;
  std::vector<ScheduledOp> valid;
  Time drift_taken = 0;
  // Cycle log for shed attribution: start, end, mode of every cycle.
  std::vector<Time> cycle_starts;
  std::vector<Time> cycle_finishes;
  std::vector<std::size_t> cycle_mode;

  std::size_t mode = 0;
  Time time = 0;
  std::size_t cycles_in_mode = 0;
  std::size_t next_pending = 0;
  Time emitted = 0;           ///< slots already delivered to the trace sink
  std::size_t next_emit = 0;  ///< first realized op not yet emitted

  const auto evaluate = [&](const PendingInvocation& p) {
    AdaptiveInvocation inv;
    inv.constraint = p.constraint;
    inv.invoked = p.invoked;
    inv.abs_deadline = p.deadline;

    const auto lo = std::lower_bound(
        valid.begin(), valid.end(), p.invoked,
        [](const ScheduledOp& op, Time t) { return op.start < t; });
    const auto hi = std::lower_bound(
        lo, valid.end(), p.deadline,
        [](const ScheduledOp& op, Time t) { return op.start < t; });
    const std::span<const ScheduledOp> window(
        valid.data() + (lo - valid.begin()), static_cast<std::size_t>(hi - lo));
    const TaskGraph& tg = ladder.base.constraint(p.constraint).task_graph;
    const auto finish = earliest_embedding_finish(tg, window, p.invoked);
    if (finish && *finish <= p.deadline) {
      inv.completed = finish;
      inv.satisfied = true;
    }

    if (!inv.satisfied) {
      // Shed iff no cycle overlapping the window served this constraint.
      bool any_serving = false;
      auto c = std::upper_bound(cycle_finishes.begin(), cycle_finishes.end(),
                                p.invoked) -
               cycle_finishes.begin();
      for (std::size_t j = static_cast<std::size_t>(c);
           j < cycle_starts.size() && cycle_starts[j] < p.deadline; ++j) {
        if (ladder.modes[cycle_mode[j]].served[p.constraint]) {
          any_serving = true;
          break;
        }
      }
      inv.shed = !any_serving;
    }

    if (inv.shed) {
      ++result.shed_count[p.constraint];
    } else {
      watchdog.record(p.constraint, !inv.satisfied);
    }
    result.invocations.push_back(inv);
  };

  while (time < horizon) {
    // Clock drift stalls the table: every tick owed by now inserts one
    // idle slot before the next cycle begins.
    if (injector) {
      const Time owed = injector->drift_before(time) - drift_taken;
      if (owed > 0) {
        time += owed;
        drift_taken += owed;
        result.fault_counters.drift_slots += owed;
      }
    }
    const ExecutiveMode& m = ladder.modes[mode];
    const Time cycle_start = time;
    cycle_starts.push_back(cycle_start);
    cycle_mode.push_back(mode);

    Time cursor = cycle_start;
    for (const ScheduledOp& op : mode_ops[mode]) {
      ScheduledOp actual{op.elem, std::max(cycle_start + op.start, cursor),
                         op.duration};
      if (rng.chance(options.overruns.probability_for(op.elem))) {
        const double mag = std::max(1.0, options.overruns.magnitude_for(op.elem));
        actual.duration = static_cast<Time>(
            std::ceil(static_cast<double>(op.duration) * mag));
        ++result.overrun_ops;
      }
      cursor = actual.finish();
      bool ok = true;
      if (injector) {
        const ExecutionFate f =
            injector->fate(actual.elem, actual.start, actual.duration);
        if (f != ExecutionFate::kOk) {
          ok = false;
          result.fault_events.push_back(
              FaultEvent{f, actual.elem, actual.start, actual.duration});
          switch (f) {
            case ExecutionFate::kSlotLost: ++result.fault_counters.slot_lost; break;
            case ExecutionFate::kElementDown:
              ++result.fault_counters.element_down;
              break;
            case ExecutionFate::kDropped: ++result.fault_counters.dropped; break;
            case ExecutionFate::kCorrupted: ++result.fault_counters.corrupted; break;
            case ExecutionFate::kOk: break;
          }
        }
      }
      realized.push_back(actual);
      realized_ok.push_back(ok);
      if (ok) valid.push_back(actual);
      ++result.dispatches;
    }
    const Time nominal_end = cycle_start + m.schedule.length();
    const Time overrun = std::max<Time>(0, cursor - nominal_end);
    const Time cycle_end = nominal_end + overrun;
    watchdog.record_cycle(overrun);
    result.overrun_slots += overrun;
    cycle_finishes.push_back(cycle_end);
    time = cycle_end;

    if (options.trace_sink != nullptr) {
      for (; next_emit < realized.size(); ++next_emit) {
        const ScheduledOp& op = realized[next_emit];
        for (; emitted < op.start; ++emitted) options.trace_sink->on_slot(sim::kIdle);
        const sim::Slot symbol = realized_ok[next_emit]
                                     ? static_cast<sim::Slot>(op.elem)
                                     : sim::kIdle;
        for (; emitted < op.finish(); ++emitted) options.trace_sink->on_slot(symbol);
      }
      for (; emitted < cycle_end; ++emitted) options.trace_sink->on_slot(sim::kIdle);
    }

    while (next_pending < pending.size() && pending[next_pending].deadline <= time) {
      evaluate(pending[next_pending]);
      ++next_pending;
    }

    // Mode management — only here, at the cycle boundary.
    ++cycles_in_mode;
    if (watchdog.should_degrade() && mode + 1 < ladder.modes.size()) {
      result.mode_changes.push_back(
          ModeChange{time, mode, mode + 1, watchdog.miss_rate()});
      ++mode;
      watchdog.reset_window();
      cycles_in_mode = 0;
    } else if (mode > 0 && cycles_in_mode >= options.watchdog.recovery_cycles &&
               watchdog.healthy()) {
      result.mode_changes.push_back(
          ModeChange{time, mode, mode - 1, watchdog.miss_rate()});
      --mode;
      watchdog.reset_window();
      cycles_in_mode = 0;
    }
  }

  // Every remaining recorded invocation has deadline <= horizon <= time.
  while (next_pending < pending.size()) {
    evaluate(pending[next_pending]);
    ++next_pending;
  }

  result.miss_count.resize(n);
  result.served_count.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    result.miss_count[i] = watchdog.miss_count(i);
    result.served_count[i] = watchdog.served_count(i);
  }
  result.final_mode = mode;
  return result;
}

}  // namespace rtg::core
