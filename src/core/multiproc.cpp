#include "core/multiproc.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>
#include <stdexcept>

#include "core/pipeline.hpp"
#include "rt/task.hpp"  // lcm_checked

namespace rtg::core {

std::vector<std::size_t> partition_elements(const CommGraph& comm, std::size_t m,
                                            PartitionStrategy strategy) {
  if (m == 0) throw std::invalid_argument("partition_elements: zero processors");
  const std::size_t n = comm.size();
  std::vector<std::size_t> assignment(n, 0);
  if (m == 1) return assignment;

  switch (strategy) {
    case PartitionStrategy::kRoundRobin: {
      for (ElementId e = 0; e < n; ++e) assignment[e] = e % m;
      break;
    }
    case PartitionStrategy::kLpt: {
      std::vector<ElementId> order(n);
      std::iota(order.begin(), order.end(), 0);
      std::stable_sort(order.begin(), order.end(), [&](ElementId a, ElementId b) {
        return comm.weight(a) > comm.weight(b);
      });
      std::vector<Time> load(m, 0);
      for (ElementId e : order) {
        const std::size_t target = static_cast<std::size_t>(
            std::min_element(load.begin(), load.end()) - load.begin());
        assignment[e] = target;
        load[target] += comm.weight(e);
      }
      break;
    }
    case PartitionStrategy::kCommunication: {
      // Greedy in id order: prefer the processor hosting most of the
      // element's neighbours, unless it is overloaded past the average.
      std::vector<Time> load(m, 0);
      const Time total = comm.digraph().total_weight();
      const Time cap = (total + static_cast<Time>(m) - 1) / static_cast<Time>(m) +
                       1;  // soft per-processor cap
      for (ElementId e = 0; e < n; ++e) {
        std::vector<std::size_t> affinity(m, 0);
        for (ElementId u : comm.digraph().predecessors(e)) {
          if (u < e) ++affinity[assignment[u]];
        }
        for (ElementId u : comm.digraph().successors(e)) {
          if (u < e) ++affinity[assignment[u]];
        }
        std::size_t best = 0;
        bool chosen = false;
        for (std::size_t p = 0; p < m; ++p) {
          if (load[p] + comm.weight(e) > cap) continue;
          if (!chosen || affinity[p] > affinity[best] ||
              (affinity[p] == affinity[best] && load[p] < load[best])) {
            best = p;
            chosen = true;
          }
        }
        if (!chosen) {
          best = static_cast<std::size_t>(
              std::min_element(load.begin(), load.end()) - load.begin());
        }
        assignment[e] = best;
        load[best] += comm.weight(e);
      }
      break;
    }
  }
  return assignment;
}

namespace {

// Index of a channel in the TDMA order, or npos.
std::size_t channel_slot(const std::vector<BusChannel>& channels, ElementId u,
                         ElementId v) {
  for (std::size_t k = 0; k < channels.size(); ++k) {
    if (channels[k].first == u && channels[k].second == v) return k;
  }
  return static_cast<std::size_t>(-1);
}

// Earliest TDMA message arrival for channel slot `k` (bus cycle B) with
// transmission start >= ready: slots start at j*B + k, take 1 slot.
Time message_arrival(Time ready, std::size_t k, Time bus_cycle) {
  const Time offset = static_cast<Time>(k);
  Time j = (ready - offset + bus_cycle - 1) / bus_cycle;
  if (j < 0) j = 0;
  return j * bus_cycle + offset + 1;
}

}  // namespace

std::optional<Time> multiproc_latency(const TaskGraph& tg,
                                      const std::vector<StaticSchedule>& schedules,
                                      const std::vector<std::size_t>& assignment,
                                      const std::vector<BusChannel>& bus_channels) {
  if (tg.empty()) return 0;
  const Time bus_cycle = static_cast<Time>(std::max<std::size_t>(bus_channels.size(), 1));

  // Common cycle of all processor schedules and the bus.
  Time cycle = bus_cycle;
  for (const StaticSchedule& s : schedules) {
    if (s.length() == 0) continue;
    cycle = rt::lcm_checked(cycle, s.length());
  }

  const std::size_t horizon_cycles = 2 * tg.size() + 2;
  const Time horizon = static_cast<Time>(horizon_cycles) * cycle;

  // Unroll each processor's ops to the horizon.
  std::vector<std::vector<ScheduledOp>> proc_ops(schedules.size());
  for (std::size_t p = 0; p < schedules.size(); ++p) {
    if (schedules[p].length() == 0) continue;
    const std::size_t reps =
        static_cast<std::size_t>(horizon / schedules[p].length()) + 1;
    proc_ops[p] = unroll_ops(schedules[p], reps);
  }

  const auto topo = tg.topological_ops();

  // Greedy distributed embedding starting at or after `t`; returns the
  // makespan or nullopt.
  auto completion = [&](Time t) -> std::optional<Time> {
    std::vector<Time> finish(tg.size(), 0);
    Time makespan = t;
    for (OpId v : topo) {
      const ElementId ev = tg.label(v);
      const std::size_t pv = assignment.at(ev);
      Time ready = t;
      for (OpId u : tg.skeleton().predecessors(v)) {
        const ElementId eu = tg.label(u);
        if (assignment.at(eu) == pv) {
          ready = std::max(ready, finish[u]);
        } else {
          const std::size_t slot = channel_slot(bus_channels, eu, ev);
          if (slot == static_cast<std::size_t>(-1)) return std::nullopt;
          // Transmission must also lie inside the window: start >= t.
          const Time msg_ready = std::max(finish[u], t);
          ready = std::max(ready, message_arrival(msg_ready, slot, bus_cycle));
        }
      }
      const auto& ops = proc_ops[pv];
      auto it = std::lower_bound(
          ops.begin(), ops.end(), ready,
          [](const ScheduledOp& op, Time tt) { return op.start < tt; });
      bool found = false;
      for (; it != ops.end(); ++it) {
        if (it->elem == ev) {
          finish[v] = it->finish();
          makespan = std::max(makespan, finish[v]);
          found = true;
          break;
        }
      }
      if (!found) return std::nullopt;
    }
    return makespan;
  };

  // Candidate window starts: 0 plus every op/message boundary + 1
  // within one common cycle.
  std::set<Time> candidates{0};
  for (std::size_t p = 0; p < schedules.size(); ++p) {
    if (schedules[p].length() == 0) continue;
    const Time reps_in_cycle = cycle / schedules[p].length();
    for (Time r = 0; r < reps_in_cycle; ++r) {
      for (const ScheduledOp& op : schedules[p].ops()) {
        const Time s = r * schedules[p].length() + op.start + 1;
        if (s < cycle) candidates.insert(s);
      }
    }
  }
  for (Time s = 1; s < cycle; ++s) {
    if ((s - 1) % bus_cycle < static_cast<Time>(bus_channels.size())) {
      candidates.insert(s);  // bus slot boundaries
    }
  }

  Time latency = 0;
  for (Time t : candidates) {
    const auto finish = completion(t);
    if (!finish) return std::nullopt;
    latency = std::max(latency, *finish - t);
  }
  return latency;
}

bool pipeline_ordered_bus(const std::vector<BusChannel>& bus_channels) {
  // TDMA gives each channel exactly one slot per cycle, so message
  // k of a channel is sent in cycle k and received in cycle k: FIFO by
  // construction as long as no channel is duplicated in the table.
  std::set<BusChannel> seen;
  for (const BusChannel& ch : bus_channels) {
    if (!seen.insert(ch).second) return false;
  }
  return true;
}

MultiprocResult multiproc_schedule(const GraphModel& input, const MultiprocOptions& options) {
  MultiprocResult result;
  if (options.processors == 0) {
    result.failure_reason = "zero processors";
    return result;
  }

  // Pipelining happens once, globally, so sub-problems share element ids.
  GraphModel model = options.local.pipeline ? pipeline_model(input).model : input;
  result.scheduled_model = model;
  const CommGraph& comm = model.comm();
  const std::size_t m = options.processors;

  result.assignment = partition_elements(comm, m, options.strategy);

  // Collect distinct cross-processor channels used by any constraint.
  std::set<BusChannel> channels;
  for (const TimingConstraint& c : model.constraints()) {
    for (const graph::Edge& e : c.task_graph.skeleton().edges()) {
      const ElementId u = c.task_graph.label(e.from);
      const ElementId v = c.task_graph.label(e.to);
      if (result.assignment[u] != result.assignment[v]) {
        channels.insert(BusChannel{u, v});
      }
    }
  }
  result.bus_channels.assign(channels.begin(), channels.end());
  const Time bus_cycle = result.bus_cycle();

  // Build one local model per processor.
  struct LocalWorld {
    CommGraph comm;
    std::vector<ElementId> to_global;          // local -> global
    std::vector<ElementId> to_local;           // global -> local (or invalid)
    std::vector<TimingConstraint> constraints;
  };
  std::vector<LocalWorld> worlds(m);
  for (std::size_t p = 0; p < m; ++p) {
    worlds[p].to_local.assign(comm.size(), graph::kInvalidNode);
  }
  for (ElementId e = 0; e < comm.size(); ++e) {
    LocalWorld& w = worlds[result.assignment[e]];
    const ElementId local =
        w.comm.add_element(comm.name(e), comm.weight(e), comm.pipelinable(e));
    w.to_global.push_back(e);
    w.to_local[e] = local;
  }
  for (const graph::Edge& ch : comm.digraph().edges()) {
    if (result.assignment[ch.from] == result.assignment[ch.to]) {
      LocalWorld& w = worlds[result.assignment[ch.from]];
      w.comm.add_channel(w.to_local[ch.from], w.to_local[ch.to]);
    }
  }

  // Project each constraint onto the processors it touches, splitting
  // the deadline between segments and messages.
  for (const TimingConstraint& c : model.constraints()) {
    std::set<std::size_t> procs;
    for (ElementId e : c.task_graph.labels()) {
      procs.insert(result.assignment[e]);
    }
    Time crossings = 0;
    for (const graph::Edge& e : c.task_graph.skeleton().edges()) {
      if (result.assignment[c.task_graph.label(e.from)] !=
          result.assignment[c.task_graph.label(e.to)]) {
        ++crossings;
      }
    }
    const Time msg_budget = crossings * bus_cycle;
    const Time local_total = c.deadline - msg_budget;
    if (local_total < static_cast<Time>(procs.size())) {
      result.failure_reason = "constraint '" + c.name +
                              "': deadline too small after message budget " +
                              std::to_string(msg_budget);
      return result;
    }
    // Work-proportional deadline split: heavier segments get more of
    // the remaining budget (never less than twice their work, so their
    // async server can fit). The exact end-to-end verification at the
    // bottom is what ultimately decides feasibility.
    std::vector<Time> proc_work(m, 0);
    Time total_work = 0;
    for (ElementId e : c.task_graph.labels()) {
      proc_work[result.assignment[e]] += comm.weight(e);
      total_work += comm.weight(e);
    }
    auto local_deadline_for = [&](std::size_t p) {
      const Time proportional =
          local_total * proc_work[p] / std::max<Time>(total_work, 1);
      return std::max<Time>(2 * proc_work[p], proportional);
    };

    for (std::size_t p : procs) {
      LocalWorld& w = worlds[p];
      TaskGraph sub;
      std::vector<OpId> sub_op(c.task_graph.size(), graph::kInvalidNode);
      for (OpId op = 0; op < c.task_graph.size(); ++op) {
        const ElementId e = c.task_graph.label(op);
        if (result.assignment[e] == p) {
          sub_op[op] = sub.add_op(w.to_local[e]);
        }
      }
      if (sub.empty()) continue;
      for (const graph::Edge& e : c.task_graph.skeleton().edges()) {
        if (sub_op[e.from] != graph::kInvalidNode &&
            sub_op[e.to] != graph::kInvalidNode) {
          sub.add_dep(sub_op[e.from], sub_op[e.to]);
        }
      }
      TimingConstraint local;
      local.name = c.name + "@" + std::to_string(p);
      local.task_graph = std::move(sub);
      local.period = c.period;
      local.deadline = local_deadline_for(p);
      local.kind = ConstraintKind::kAsynchronous;
      w.constraints.push_back(std::move(local));
    }
  }

  // Per-processor latency scheduling.
  result.processor_schedules.resize(m);
  for (std::size_t p = 0; p < m; ++p) {
    LocalWorld& w = worlds[p];
    GraphModel local_model(w.comm);
    for (TimingConstraint& c : w.constraints) {
      local_model.add_constraint(std::move(c));
    }
    HeuristicOptions local_opts = options.local;
    local_opts.pipeline = false;  // already pipelined globally
    const HeuristicResult local = latency_schedule(local_model, local_opts);
    if (!local.success) {
      result.failure_reason =
          "processor " + std::to_string(p) + ": " + local.failure_reason;
      return result;
    }
    // Translate the local schedule back to global element ids.
    StaticSchedule global_sched;
    for (const ScheduleEntry& entry : local.schedule->entries()) {
      if (entry.elem == kIdleEntry) {
        global_sched.push_idle(entry.duration);
      } else {
        global_sched.push_execution(w.to_global[entry.elem], entry.duration);
      }
    }
    result.processor_schedules[p] = std::move(global_sched);
  }
  for (std::size_t p = 0; p < m; ++p) {
    if (result.processor_schedules[p].length() == 0) {
      result.processor_schedules[p].push_idle(1);
    }
  }

  // Exact end-to-end verification.
  bool all_ok = true;
  for (const TimingConstraint& c : model.constraints()) {
    const auto latency = multiproc_latency(c.task_graph, result.processor_schedules,
                                           result.assignment, result.bus_channels);
    result.end_to_end_latency.push_back(latency);
    if (!latency || *latency > c.deadline) all_ok = false;
  }
  if (!all_ok) {
    result.failure_reason = "end-to-end verification failed";
    return result;
  }
  result.success = true;
  return result;
}

}  // namespace rtg::core
