// Deprecation shim (ISSUE 9): the multiprocessor machinery moved to
// src/map. Only partition_elements (used by core/network and wrapped by
// map::GreedyMapper's legacy policies) and the trivial
// pipeline_ordered_bus check still live in core; multiproc_schedule and
// multiproc_latency are implemented in map/multiproc_compat.cpp on top
// of map::deploy / map::distributed_latency — link rtg_map to use them.
#include "core/multiproc.hpp"

#include <algorithm>
#include <numeric>
#include <set>
#include <stdexcept>

namespace rtg::core {

std::vector<std::size_t> partition_elements(const CommGraph& comm, std::size_t m,
                                            PartitionStrategy strategy) {
  if (m == 0) throw std::invalid_argument("partition_elements: zero processors");
  const std::size_t n = comm.size();
  std::vector<std::size_t> assignment(n, 0);
  if (m == 1) return assignment;

  switch (strategy) {
    case PartitionStrategy::kRoundRobin: {
      for (ElementId e = 0; e < n; ++e) assignment[e] = e % m;
      break;
    }
    case PartitionStrategy::kLpt: {
      std::vector<ElementId> order(n);
      std::iota(order.begin(), order.end(), 0);
      std::stable_sort(order.begin(), order.end(), [&](ElementId a, ElementId b) {
        return comm.weight(a) > comm.weight(b);
      });
      std::vector<Time> load(m, 0);
      for (ElementId e : order) {
        const std::size_t target = static_cast<std::size_t>(
            std::min_element(load.begin(), load.end()) - load.begin());
        assignment[e] = target;
        load[target] += comm.weight(e);
      }
      break;
    }
    case PartitionStrategy::kCommunication: {
      // Greedy in id order: prefer the processor hosting most of the
      // element's neighbours, unless it is overloaded past the average.
      std::vector<Time> load(m, 0);
      const Time total = comm.digraph().total_weight();
      const Time cap = (total + static_cast<Time>(m) - 1) / static_cast<Time>(m) +
                       1;  // soft per-processor cap
      for (ElementId e = 0; e < n; ++e) {
        std::vector<std::size_t> affinity(m, 0);
        for (ElementId u : comm.digraph().predecessors(e)) {
          if (u < e) ++affinity[assignment[u]];
        }
        for (ElementId u : comm.digraph().successors(e)) {
          if (u < e) ++affinity[assignment[u]];
        }
        std::size_t best = 0;
        bool chosen = false;
        for (std::size_t p = 0; p < m; ++p) {
          if (load[p] + comm.weight(e) > cap) continue;
          if (!chosen || affinity[p] > affinity[best] ||
              (affinity[p] == affinity[best] && load[p] < load[best])) {
            best = p;
            chosen = true;
          }
        }
        if (!chosen) {
          best = static_cast<std::size_t>(
              std::min_element(load.begin(), load.end()) - load.begin());
        }
        assignment[e] = best;
        load[best] += comm.weight(e);
      }
      break;
    }
  }
  return assignment;
}

bool pipeline_ordered_bus(const std::vector<BusChannel>& bus_channels) {
  // TDMA gives each channel exactly one slot per cycle, so message
  // k of a channel is sent in cycle k and received in cycle k: FIFO by
  // construction as long as no channel is duplicated in the table.
  std::set<BusChannel> seen;
  for (const BusChannel& ch : bus_channels) {
    if (!seen.insert(ch).second) return false;
  }
  return true;
}

}  // namespace rtg::core
