#include "core/pipeline.hpp"

#include <string>

namespace rtg::core {

PipelinedModel pipeline_model(const GraphModel& model) {
  const CommGraph& old_comm = model.comm();

  PipelinedModel result;
  CommGraph new_comm;

  // first_sub[e] / last_sub[e]: entry and exit sub-element of original
  // element e in the new graph.
  std::vector<ElementId> first_sub(old_comm.size());
  std::vector<ElementId> last_sub(old_comm.size());

  for (ElementId e = 0; e < old_comm.size(); ++e) {
    const Time w = old_comm.weight(e);
    if (w > 1 && old_comm.pipelinable(e)) {
      ElementId prev = graph::kInvalidNode;
      for (Time k = 0; k < w; ++k) {
        const ElementId sub = new_comm.add_element(
            old_comm.name(e) + "/" + std::to_string(k), 1, true);
        result.origin.push_back(e);
        result.stage.push_back(k);
        if (k == 0) first_sub[e] = sub;
        if (prev != graph::kInvalidNode) new_comm.add_channel(prev, sub);
        prev = sub;
      }
      last_sub[e] = prev;
    } else {
      const ElementId sub =
          new_comm.add_element(old_comm.name(e), w, old_comm.pipelinable(e));
      result.origin.push_back(e);
      result.stage.push_back(0);
      first_sub[e] = last_sub[e] = sub;
    }
  }

  // Channels: u -> v becomes last_sub[u] -> first_sub[v].
  for (const graph::Edge& ch : old_comm.digraph().edges()) {
    new_comm.add_channel(last_sub[ch.from], first_sub[ch.to]);
  }

  result.model = GraphModel(std::move(new_comm));

  for (const TimingConstraint& c : model.constraints()) {
    TaskGraph tg;
    // For each original op, the chain of new ops; remember entry/exit.
    std::vector<OpId> entry(c.task_graph.size());
    std::vector<OpId> exit(c.task_graph.size());
    for (OpId op = 0; op < c.task_graph.size(); ++op) {
      const ElementId e = c.task_graph.label(op);
      const Time w = old_comm.weight(e);
      const bool decomposed = w > 1 && old_comm.pipelinable(e);
      const Time stages = decomposed ? w : 1;
      OpId prev = graph::kInvalidNode;
      for (Time k = 0; k < stages; ++k) {
        const OpId sub = tg.add_op(first_sub[e] + static_cast<ElementId>(k));
        if (k == 0) entry[op] = sub;
        if (prev != graph::kInvalidNode) tg.add_dep(prev, sub);
        prev = sub;
      }
      exit[op] = prev;
    }
    for (const graph::Edge& dep : c.task_graph.skeleton().edges()) {
      tg.add_dep(exit[dep.from], entry[dep.to]);
    }
    result.model.add_constraint(TimingConstraint{c.name, std::move(tg), c.period,
                                                 c.deadline, c.kind, c.criticality});
  }
  return result;
}

bool fully_unit_weight(const GraphModel& model) {
  for (ElementId e = 0; e < model.comm().size(); ++e) {
    if (model.comm().weight(e) > 1 && model.comm().pipelinable(e)) return false;
  }
  return true;
}

}  // namespace rtg::core
