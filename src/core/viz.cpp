#include "core/viz.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <vector>

namespace rtg::core {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string op_label(const TaskGraph& tg, const CommGraph& comm, OpId op) {
  const ElementId e = tg.label(op);
  std::size_t count = 0, index = 0;
  for (OpId other = 0; other < tg.size(); ++other) {
    if (tg.label(other) == e) {
      ++count;
      if (other < op) ++index;
    }
  }
  std::string label = comm.has_element(e) ? comm.name(e) : "e" + std::to_string(e);
  if (count > 1) label += "#" + std::to_string(index + 1);
  return label;
}

}  // namespace

std::string task_graph_dot(const TaskGraph& tg, const CommGraph& comm,
                           const std::string& name) {
  std::ostringstream os;
  os << "digraph " << name << " {\n  rankdir=LR;\n  node [shape=ellipse];\n";
  for (OpId op = 0; op < tg.size(); ++op) {
    os << "  o" << op << " [label=\"" << escape(op_label(tg, comm, op)) << "\"];\n";
  }
  for (const graph::Edge& e : tg.skeleton().edges()) {
    os << "  o" << e.from << " -> o" << e.to << ";\n";
  }
  os << "}\n";
  return os.str();
}

std::string model_dot(const GraphModel& model, const std::string& name) {
  const CommGraph& comm = model.comm();
  std::ostringstream os;
  os << "digraph " << name << " {\n  rankdir=LR;\n  node [shape=box];\n";
  for (ElementId e = 0; e < comm.size(); ++e) {
    os << "  n" << e << " [label=\"" << escape(comm.name(e)) << " (w="
       << comm.weight(e) << ")\"";
    if (!comm.pipelinable(e)) os << " style=filled fillcolor=lightgray";
    os << "];\n";
  }
  for (const graph::Edge& ch : comm.digraph().edges()) {
    os << "  n" << ch.from << " -> n" << ch.to << ";\n";
  }
  for (std::size_t i = 0; i < model.constraint_count(); ++i) {
    const TimingConstraint& c = model.constraint(i);
    os << "  c" << i << " [shape=note style=dashed label=\"" << escape(c.name)
       << "\\n" << (c.periodic() ? "periodic p=" : "sporadic sep=") << c.period
       << " d=" << c.deadline << "\"];\n";
    // Dashed arcs from the note to the elements the constraint touches.
    std::vector<ElementId> touched(c.task_graph.labels());
    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
    for (ElementId e : touched) {
      os << "  c" << i << " -> n" << e << " [style=dashed arrowhead=none];\n";
    }
  }
  os << "}\n";
  return os.str();
}

std::string schedule_gantt(const StaticSchedule& sched, const CommGraph& comm) {
  const Time len = sched.length();
  if (len == 0) return "(empty schedule)\n";

  // Rows for elements that actually run, id order.
  std::map<ElementId, std::string> rows;
  for (const ScheduledOp& op : sched.ops()) {
    rows.emplace(op.elem, std::string(static_cast<std::size_t>(len), '.'));
  }
  for (const ScheduledOp& op : sched.ops()) {
    for (Time k = 0; k < op.duration; ++k) {
      rows[op.elem][static_cast<std::size_t>(op.start + k)] = '#';
    }
  }

  std::size_t label_width = 4;
  for (const auto& [e, row] : rows) {
    const std::string name =
        comm.has_element(e) ? comm.name(e) : "e" + std::to_string(e);
    label_width = std::max(label_width, name.size());
  }

  std::ostringstream os;
  // Ruler: tens digits every 10 slots.
  os << std::string(label_width + 1, ' ') << '|';
  for (Time t = 0; t < len; ++t) {
    os << (t % 10 == 0 ? static_cast<char>('0' + (t / 10) % 10) : ' ');
  }
  os << "|\n";
  for (const auto& [e, row] : rows) {
    const std::string name =
        comm.has_element(e) ? comm.name(e) : "e" + std::to_string(e);
    os << name << std::string(label_width - name.size() + 1, ' ') << '|' << row
       << "|\n";
  }
  return os.str();
}

}  // namespace rtg::core
