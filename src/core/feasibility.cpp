#include "core/feasibility.hpp"

#include "core/bounds.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "rt/task.hpp"  // lcm_checked

namespace rtg::core {

namespace {

// Slot encoding inside the game window: (element << 8) | phase for the
// phase-th slot of an execution, or one of two sentinels. Weights must
// fit in 8 bits.
constexpr std::uint32_t kSlotIdle = 0xFFFFFFFFu;
constexpr std::uint32_t kSlotPreStart = 0xFFFFFFFEu;

std::uint32_t encode_slot(ElementId e, Time phase) {
  return (static_cast<std::uint32_t>(e) << 8) |
         static_cast<std::uint32_t>(phase & 0xFF);
}

// Decodes the trailing `d` slots of the window into the complete
// executions they contain (partial executions at the cut are dropped),
// with starts relative to the window beginning.
std::vector<ScheduledOp> window_ops(const std::deque<std::uint32_t>& window, Time d,
                                    const CommGraph& comm) {
  std::vector<ScheduledOp> ops;
  const std::size_t n = window.size();
  const std::size_t begin = n - static_cast<std::size_t>(d);
  std::size_t i = begin;
  while (i < n) {
    const std::uint32_t s = window[i];
    if (s == kSlotIdle || s == kSlotPreStart) {
      ++i;
      continue;
    }
    const ElementId e = s >> 8;
    const Time phase = static_cast<Time>(s & 0xFF);
    const Time w = comm.weight(e);
    if (phase != 0) {
      // Execution started before the window; skip its remainder.
      ++i;
      continue;
    }
    // Check the full run 0..w-1 lies inside the window.
    if (i + static_cast<std::size_t>(w) <= n) {
      bool complete = true;
      for (Time k = 0; k < w; ++k) {
        if (window[i + static_cast<std::size_t>(k)] != encode_slot(e, k)) {
          complete = false;
          break;
        }
      }
      if (complete) {
        ops.push_back(ScheduledOp{e, static_cast<Time>(i - begin), w});
        i += static_cast<std::size_t>(w);
        continue;
      }
    }
    ++i;
  }
  return ops;
}

struct GameContext {
  const GraphModel& model;
  Time max_deadline = 0;   // D: window size
  Time periodic_lcm = 1;   // Hp: clock modulus for periodic constraints
  bool has_periodic = false;

  std::deque<std::uint32_t> window;  // always exactly D slots
  Time clock = 0;                    // total slots emitted

  explicit GameContext(const GraphModel& m) : model(m) {
    for (const TimingConstraint& c : m.constraints()) {
      max_deadline = std::max(max_deadline, c.deadline);
      if (c.periodic()) {
        has_periodic = true;
        periodic_lcm = rt::lcm_checked(periodic_lcm, c.period);
      }
    }
    window.assign(static_cast<std::size_t>(max_deadline), kSlotPreStart);
  }

  // Checks every window that closes at the current clock. Returns false
  // on the first violation.
  [[nodiscard]] bool windows_ok() const {
    for (const TimingConstraint& c : model.constraints()) {
      if (clock < c.deadline) continue;
      if (c.periodic()) {
        // Invocation windows [kp, kp+d] close when clock == kp + d.
        if ((clock - c.deadline) % c.period != 0) continue;
      }
      const auto ops = window_ops(window, c.deadline, model.comm());
      if (!window_contains_execution(c.task_graph, ops, 0, c.deadline)) {
        return false;
      }
    }
    return true;
  }

  // Emits one slot; returns false if some closing window is violated
  // (the slot stays emitted either way — the caller unwinds).
  bool emit(std::uint32_t slot, std::vector<std::uint32_t>& evicted) {
    evicted.push_back(window.front());
    window.pop_front();
    window.push_back(slot);
    ++clock;
    return windows_ok();
  }

  // Undoes `count` emitted slots using the saved evictions.
  void unwind(std::vector<std::uint32_t>& evicted, std::size_t count) {
    for (std::size_t k = 0; k < count; ++k) {
      window.pop_back();
      window.push_front(evicted.back());
      evicted.pop_back();
      --clock;
    }
  }

  // State key: the window contents plus the periodic clock phase.
  [[nodiscard]] std::string key() const {
    std::string k;
    k.reserve((window.size() + 1) * sizeof(std::uint32_t));
    auto put = [&k](std::uint32_t v) {
      k.append(reinterpret_cast<const char*>(&v), sizeof(v));
    };
    for (std::uint32_t s : window) put(s);
    put(static_cast<std::uint32_t>(clock % periodic_lcm));
    return k;
  }
};

// One DFS frame: the op choice index we will try next (an index into
// `order`; order.size() = idle).
struct Frame {
  std::string key;         // state this frame expands
  std::size_t next_choice = 0;
  std::vector<ElementId> order;  // elements, least-recently-executed first
  // Op taken to *arrive* at this state (duration 0 marks the root).
  ElementId arrived_elem = kIdleEntry;
  Time arrived_dur = 0;
  std::vector<std::uint32_t> evicted;  // for unwinding arrival slots
};

// Branching order heuristic: elements whose last complete execution in
// the window is oldest (or absent) first. This biases the DFS towards
// round-robin-like strings — exactly the shape of feasible cycles — and
// does not affect soundness or completeness, only the visit order.
std::vector<ElementId> choice_order(const GameContext& ctx, std::size_t n_elements,
                                    BranchOrder order_kind) {
  std::vector<ElementId> static_order(n_elements);
  for (ElementId e = 0; e < n_elements; ++e) static_order[e] = e;
  if (order_kind == BranchOrder::kStaticId) return static_order;

  std::vector<std::int64_t> last_finish(n_elements, -1);
  const auto& window = ctx.window;
  std::size_t i = 0;
  while (i < window.size()) {
    const std::uint32_t s = window[i];
    if (s == kSlotIdle || s == kSlotPreStart) {
      ++i;
      continue;
    }
    const ElementId e = s >> 8;
    const Time phase = static_cast<Time>(s & 0xFF);
    const Time w = ctx.model.comm().weight(e);
    if (phase == 0 && i + static_cast<std::size_t>(w) <= window.size()) {
      bool complete = true;
      for (Time k = 0; k < w; ++k) {
        if (window[i + static_cast<std::size_t>(k)] != encode_slot(e, k)) {
          complete = false;
          break;
        }
      }
      if (complete) {
        last_finish[e] = static_cast<std::int64_t>(i) + w;
        i += static_cast<std::size_t>(w);
        continue;
      }
    }
    ++i;
  }
  std::vector<ElementId> order(n_elements);
  for (ElementId e = 0; e < n_elements; ++e) order[e] = e;
  std::stable_sort(order.begin(), order.end(), [&](ElementId a, ElementId b) {
    return last_finish[a] < last_finish[b];
  });
  return order;
}

}  // namespace

ExactResult exact_feasible(const GraphModel& model, const ExactOptions& options) {
  if (model.constraint_count() == 0) {
    ExactResult r;
    r.status = FeasibilityStatus::kFeasible;
    r.schedule = StaticSchedule{};
    r.schedule->push_idle(1);
    return r;
  }
  for (ElementId e = 0; e < model.comm().size(); ++e) {
    if (model.comm().weight(e) > 255) {
      throw std::invalid_argument("exact_feasible: element weight exceeds 255");
    }
  }

  // Analytic early-out: necessary conditions refute without search.
  if (!refute_feasibility(model).empty()) {
    ExactResult r;
    r.status = FeasibilityStatus::kInfeasible;
    return r;
  }

  GameContext ctx(model);
  const std::size_t n_elements = model.comm().size();

  enum : std::uint8_t { kGrey = 1, kBlack = 2 };
  std::unordered_map<std::string, std::uint8_t> color;
  std::unordered_map<std::string, std::size_t> grey_depth;  // key -> frame index

  std::vector<Frame> path;
  path.push_back(Frame{ctx.key(), 0, choice_order(ctx, n_elements, options.order), kIdleEntry, 0, {}});
  color[path.back().key] = kGrey;
  grey_depth[path.back().key] = 0;

  ExactResult result;
  result.states_explored = 1;

  // Best-of-N cycle collection (cycle_candidates > 1): keep the cycle
  // with the lowest busy fraction, then the shortest.
  std::optional<StaticSchedule> best_cycle;
  std::size_t cycles_found = 0;
  auto better = [](const StaticSchedule& a, const StaticSchedule& b) {
    if (a.utilization() != b.utilization()) return a.utilization() < b.utilization();
    return a.length() < b.length();
  };
  auto record_cycle = [&](StaticSchedule sched) {
    ++cycles_found;
    if (!best_cycle || better(sched, *best_cycle)) {
      best_cycle = std::move(sched);
    }
  };
  auto finish_feasible = [&]() {
    result.status = FeasibilityStatus::kFeasible;
    result.schedule = std::move(best_cycle);
    return result;
  };

  auto extract_cycle = [&](std::size_t from_frame, ElementId closing_elem,
                           Time closing_dur) {
    StaticSchedule sched;
    for (std::size_t i = from_frame + 1; i < path.size(); ++i) {
      if (path[i].arrived_elem == kIdleEntry) {
        sched.push_idle(path[i].arrived_dur);
      } else {
        sched.push_execution(path[i].arrived_elem, path[i].arrived_dur);
      }
    }
    if (closing_elem == kIdleEntry) {
      sched.push_idle(closing_dur);
    } else {
      sched.push_execution(closing_elem, closing_dur);
    }
    return sched;
  };

  while (!path.empty()) {
    Frame& frame = path.back();
    if (frame.next_choice > n_elements) {
      // Exhausted: blacken and backtrack.
      color[frame.key] = kBlack;
      grey_depth.erase(frame.key);
      const std::size_t dur = static_cast<std::size_t>(frame.arrived_dur);
      Frame done = std::move(path.back());
      path.pop_back();
      if (!path.empty()) {
        ctx.unwind(done.evicted, dur);
      }
      continue;
    }

    const std::size_t choice = frame.next_choice++;
    const bool is_idle = choice == n_elements;
    const ElementId elem = is_idle ? kIdleEntry : frame.order[choice];
    const Time dur = is_idle ? 1 : model.comm().weight(elem);

    // Emit the op slot by slot; abort on a violated window.
    std::vector<std::uint32_t> evicted;
    bool valid = true;
    Time emitted = 0;
    for (Time k = 0; k < dur; ++k) {
      const std::uint32_t slot = is_idle ? kSlotIdle : encode_slot(elem, k);
      ++emitted;
      if (!ctx.emit(slot, evicted)) {
        valid = false;
        break;
      }
    }
    if (!valid) {
      ctx.unwind(evicted, static_cast<std::size_t>(emitted));
      continue;
    }

    const std::string key = ctx.key();
    const auto it = color.find(key);
    if (it != color.end() && it->second == kGrey) {
      // Cycle found: candidate feasible static schedule.
      StaticSchedule sched = extract_cycle(grey_depth[key], elem, dur);
      // For async-only models the cycle is feasible by construction; we
      // verify regardless (and try rotations for periodic alignment).
      auto verified = [&](const StaticSchedule& s) {
        return verify_schedule(s, model).feasible;
      };
      bool accepted = verified(sched);
      if (!accepted && ctx.has_periodic) {
        // Try every rotation at an entry boundary.
        const auto& entries = sched.entries();
        for (std::size_t r = 1; !accepted && r < entries.size(); ++r) {
          StaticSchedule rot;
          for (std::size_t i = 0; i < entries.size(); ++i) {
            const ScheduleEntry& entry = entries[(r + i) % entries.size()];
            if (entry.elem == kIdleEntry) {
              rot.push_idle(entry.duration);
            } else {
              rot.push_execution(entry.elem, entry.duration);
            }
          }
          if (verified(rot)) {
            sched = std::move(rot);
            accepted = true;
          }
        }
      }
      if (accepted) {
        record_cycle(std::move(sched));
        if (cycles_found >= options.cycle_candidates) {
          return finish_feasible();
        }
      }
      // Keep searching (more candidates wanted, or cycle not accepted).
      ctx.unwind(evicted, static_cast<std::size_t>(dur));
      continue;
    }
    if (it != color.end() && it->second == kBlack) {
      ctx.unwind(evicted, static_cast<std::size_t>(dur));
      continue;
    }

    // Fresh state: descend.
    if (result.states_explored >= options.state_budget) {
      if (best_cycle) return finish_feasible();
      result.status = FeasibilityStatus::kUnknown;
      return result;
    }
    ++result.states_explored;
    color[key] = kGrey;
    grey_depth[key] = path.size();
    path.push_back(
        Frame{key, 0, choice_order(ctx, n_elements, options.order), elem, dur, std::move(evicted)});
  }

  if (best_cycle) return finish_feasible();
  result.status = FeasibilityStatus::kInfeasible;
  return result;
}

namespace {

bool brute_rec(const GraphModel& model, Time remaining, StaticSchedule& partial,
               std::optional<StaticSchedule>& found) {
  if (found) return true;
  if (remaining == 0) {
    if (verify_schedule(partial, model).feasible) {
      found = partial;
      return true;
    }
    return false;
  }
  for (ElementId e = 0; e < model.comm().size(); ++e) {
    const Time w = model.comm().weight(e);
    if (w > remaining) continue;
    StaticSchedule next = partial;
    next.push_execution(e, w);
    if (brute_rec(model, remaining - w, next, found)) return true;
  }
  StaticSchedule next = partial;
  next.push_idle(1);
  return brute_rec(model, remaining - 1, next, found);
}

}  // namespace

std::optional<StaticSchedule> brute_force_schedule(const GraphModel& model, Time len) {
  if (len < 1) return std::nullopt;
  StaticSchedule partial;
  std::optional<StaticSchedule> found;
  brute_rec(model, len, partial, found);
  return found;
}

}  // namespace rtg::core
