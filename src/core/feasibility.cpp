#include "core/feasibility.hpp"

#include "core/bounds.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "rt/task.hpp"  // lcm_checked
#include "util/striped_map.hpp"
#include "util/thread_pool.hpp"

namespace rtg::core {

namespace {

// Slot encoding inside the game window: (element << 8) | phase for the
// phase-th slot of an execution, or one of two sentinels. Weights must
// fit in 8 bits.
constexpr std::uint32_t kSlotIdle = 0xFFFFFFFFu;
constexpr std::uint32_t kSlotPreStart = 0xFFFFFFFEu;

std::uint32_t encode_slot(ElementId e, Time phase) {
  return (static_cast<std::uint32_t>(e) << 8) |
         static_cast<std::uint32_t>(phase & 0xFF);
}

// Decodes the trailing `d` slots of the window into the complete
// executions they contain (partial executions at the cut are dropped),
// with starts relative to the window beginning. Appends into `ops`
// (cleared first) so the caller's scratch buffer is reused across the
// millions of window checks a search performs.
void window_ops(const std::deque<std::uint32_t>& window, Time d, const CommGraph& comm,
                std::vector<ScheduledOp>& ops) {
  ops.clear();
  const std::size_t n = window.size();
  const std::size_t begin = n - static_cast<std::size_t>(d);
  std::size_t i = begin;
  while (i < n) {
    const std::uint32_t s = window[i];
    if (s == kSlotIdle || s == kSlotPreStart) {
      ++i;
      continue;
    }
    const ElementId e = s >> 8;
    const Time phase = static_cast<Time>(s & 0xFF);
    const Time w = comm.weight(e);
    if (phase != 0) {
      // Execution started before the window; skip its remainder.
      ++i;
      continue;
    }
    // Check the full run 0..w-1 lies inside the window.
    if (i + static_cast<std::size_t>(w) <= n) {
      bool complete = true;
      for (Time k = 0; k < w; ++k) {
        if (window[i + static_cast<std::size_t>(k)] != encode_slot(e, k)) {
          complete = false;
          break;
        }
      }
      if (complete) {
        ops.push_back(ScheduledOp{e, static_cast<Time>(i - begin), w});
        i += static_cast<std::size_t>(w);
        continue;
      }
    }
    ++i;
  }
}

struct GameContext {
  const GraphModel& model;
  Time max_deadline = 0;   // D: window size
  Time periodic_lcm = 1;   // Hp: clock modulus for periodic constraints
  bool has_periodic = false;

  std::deque<std::uint32_t> window;  // always exactly D slots
  Time clock = 0;                    // total slots emitted
  // Decoded-window arena reused across checks; contexts are per-worker,
  // so the mutable scratch is race-free.
  mutable std::vector<ScheduledOp> ops_scratch;

  explicit GameContext(const GraphModel& m) : model(m) {
    for (const TimingConstraint& c : m.constraints()) {
      max_deadline = std::max(max_deadline, c.deadline);
      if (c.periodic()) {
        has_periodic = true;
        periodic_lcm = rt::lcm_checked(periodic_lcm, c.period);
      }
    }
    window.assign(static_cast<std::size_t>(max_deadline), kSlotPreStart);
  }

  // Checks every window that closes at the current clock. Returns false
  // on the first violation.
  [[nodiscard]] bool windows_ok() const {
    for (const TimingConstraint& c : model.constraints()) {
      if (clock < c.deadline) continue;
      if (c.periodic()) {
        // Invocation windows [kp, kp+d] close when clock == kp + d.
        if ((clock - c.deadline) % c.period != 0) continue;
      }
      window_ops(window, c.deadline, model.comm(), ops_scratch);
      if (!window_contains_execution(c.task_graph, ops_scratch, 0, c.deadline)) {
        return false;
      }
    }
    return true;
  }

  // Emits one slot; returns false if some closing window is violated
  // (the slot stays emitted either way — the caller unwinds).
  bool emit(std::uint32_t slot, std::vector<std::uint32_t>& evicted) {
    evicted.push_back(window.front());
    window.pop_front();
    window.push_back(slot);
    ++clock;
    return windows_ok();
  }

  // Undoes `count` emitted slots using the saved evictions.
  void unwind(std::vector<std::uint32_t>& evicted, std::size_t count) {
    for (std::size_t k = 0; k < count; ++k) {
      window.pop_back();
      window.push_front(evicted.back());
      evicted.pop_back();
      --clock;
    }
  }

  // State key: the window contents plus the periodic clock phase.
  [[nodiscard]] std::string key() const {
    std::string k;
    k.reserve((window.size() + 1) * sizeof(std::uint32_t));
    auto put = [&k](std::uint32_t v) {
      k.append(reinterpret_cast<const char*>(&v), sizeof(v));
    };
    for (std::uint32_t s : window) put(s);
    put(static_cast<std::uint32_t>(clock % periodic_lcm));
    return k;
  }
};

// One DFS frame: the op choice index we will try next (an index into
// `order`; order.size() = idle).
struct Frame {
  std::string key;         // state this frame expands
  std::size_t next_choice = 0;
  std::vector<ElementId> order;  // elements, least-recently-executed first
  // Op taken to *arrive* at this state (duration 0 marks the root).
  ElementId arrived_elem = kIdleEntry;
  Time arrived_dur = 0;
  std::vector<std::uint32_t> evicted;  // for unwinding arrival slots
};

// Branching order heuristic: elements whose last complete execution in
// the window is oldest (or absent) first. This biases the DFS towards
// round-robin-like strings — exactly the shape of feasible cycles — and
// does not affect soundness or completeness, only the visit order.
std::vector<ElementId> choice_order(const GameContext& ctx, std::size_t n_elements,
                                    BranchOrder order_kind) {
  std::vector<ElementId> static_order(n_elements);
  for (ElementId e = 0; e < n_elements; ++e) static_order[e] = e;
  if (order_kind == BranchOrder::kStaticId) return static_order;

  std::vector<std::int64_t> last_finish(n_elements, -1);
  const auto& window = ctx.window;
  std::size_t i = 0;
  while (i < window.size()) {
    const std::uint32_t s = window[i];
    if (s == kSlotIdle || s == kSlotPreStart) {
      ++i;
      continue;
    }
    const ElementId e = s >> 8;
    const Time phase = static_cast<Time>(s & 0xFF);
    const Time w = ctx.model.comm().weight(e);
    if (phase == 0 && i + static_cast<std::size_t>(w) <= window.size()) {
      bool complete = true;
      for (Time k = 0; k < w; ++k) {
        if (window[i + static_cast<std::size_t>(k)] != encode_slot(e, k)) {
          complete = false;
          break;
        }
      }
      if (complete) {
        last_finish[e] = static_cast<std::int64_t>(i) + w;
        i += static_cast<std::size_t>(w);
        continue;
      }
    }
    ++i;
  }
  std::vector<ElementId> order(n_elements);
  for (ElementId e = 0; e < n_elements; ++e) order[e] = e;
  std::stable_sort(order.begin(), order.end(), [&](ElementId a, ElementId b) {
    return last_finish[a] < last_finish[b];
  });
  return order;
}

// Serial verification options for candidate cycles: the schedules are
// tiny and accept_cycle may already be running on a pool worker, so
// nesting another pool per candidate would only add overhead.
constexpr VerifyOptions kSerialVerify{1, nullptr};

// Verifies a candidate cycle against the model, trying every
// entry-boundary rotation when periodic constraints may need alignment.
// Returns the accepted (possibly rotated) schedule.
std::optional<StaticSchedule> accept_cycle(const GraphModel& model, StaticSchedule sched,
                                           bool try_rotations) {
  auto verified = [&](const StaticSchedule& s) {
    return verify_schedule(s, model, kSerialVerify).feasible;
  };
  if (verified(sched)) return sched;
  if (!try_rotations) return std::nullopt;
  // Try every rotation at an entry boundary.
  const auto& entries = sched.entries();
  for (std::size_t r = 1; r < entries.size(); ++r) {
    StaticSchedule rot;
    for (std::size_t i = 0; i < entries.size(); ++i) {
      const ScheduleEntry& entry = entries[(r + i) % entries.size()];
      if (entry.elem == kIdleEntry) {
        rot.push_idle(entry.duration);
      } else {
        rot.push_execution(entry.elem, entry.duration);
      }
    }
    if (verified(rot)) return rot;
  }
  return std::nullopt;
}

// Best-of-N cycle ranking: lowest busy fraction, then shortest.
bool leaner_cycle(const StaticSchedule& a, const StaticSchedule& b) {
  if (a.utilization() != b.utilization()) return a.utilization() < b.utilization();
  return a.length() < b.length();
}

// ---------------------------------------------------------------------------
// Serial legacy search (n_threads == 1): exactly the original
// single-threaded DFS over the game's state graph.
// ---------------------------------------------------------------------------

ExactResult exact_serial(const GraphModel& model, const ExactOptions& options) {
  GameContext ctx(model);
  const std::size_t n_elements = model.comm().size();

  enum : std::uint8_t { kGrey = 1, kBlack = 2 };
  std::unordered_map<std::string, std::uint8_t> color;
  std::unordered_map<std::string, std::size_t> grey_depth;  // key -> frame index

  std::vector<Frame> path;
  path.push_back(Frame{ctx.key(), 0, choice_order(ctx, n_elements, options.order), kIdleEntry, 0, {}});
  color[path.back().key] = kGrey;
  grey_depth[path.back().key] = 0;

  ExactResult result;
  result.states_explored = 1;

  // Best-of-N cycle collection (cycle_candidates > 1): keep the cycle
  // with the lowest busy fraction, then the shortest.
  std::optional<StaticSchedule> best_cycle;
  std::size_t cycles_found = 0;
  auto record_cycle = [&](StaticSchedule sched) {
    ++cycles_found;
    if (!best_cycle || leaner_cycle(sched, *best_cycle)) {
      best_cycle = std::move(sched);
    }
  };
  auto finish_feasible = [&]() {
    result.status = FeasibilityStatus::kFeasible;
    result.schedule = std::move(best_cycle);
    return result;
  };

  auto extract_cycle = [&](std::size_t from_frame, ElementId closing_elem,
                           Time closing_dur) {
    StaticSchedule sched;
    for (std::size_t i = from_frame + 1; i < path.size(); ++i) {
      if (path[i].arrived_elem == kIdleEntry) {
        sched.push_idle(path[i].arrived_dur);
      } else {
        sched.push_execution(path[i].arrived_elem, path[i].arrived_dur);
      }
    }
    if (closing_elem == kIdleEntry) {
      sched.push_idle(closing_dur);
    } else {
      sched.push_execution(closing_elem, closing_dur);
    }
    return sched;
  };

  std::size_t cancel_tick = 0;
  while (!path.empty()) {
    if ((++cancel_tick & 63) == 0) {
      if (options.progress != nullptr) {
        options.progress->fetch_add(1, std::memory_order_relaxed);
      }
      if (options.cancel != nullptr &&
          options.cancel->load(std::memory_order_relaxed)) {
        if (best_cycle) return finish_feasible();
        result.status = FeasibilityStatus::kUnknown;
        result.cancelled = true;
        return result;
      }
    }
    Frame& frame = path.back();
    if (frame.next_choice > n_elements) {
      // Exhausted: blacken and backtrack.
      color[frame.key] = kBlack;
      grey_depth.erase(frame.key);
      const std::size_t dur = static_cast<std::size_t>(frame.arrived_dur);
      Frame done = std::move(path.back());
      path.pop_back();
      if (!path.empty()) {
        ctx.unwind(done.evicted, dur);
      }
      continue;
    }

    const std::size_t choice = frame.next_choice++;
    const bool is_idle = choice == n_elements;
    const ElementId elem = is_idle ? kIdleEntry : frame.order[choice];
    const Time dur = is_idle ? 1 : model.comm().weight(elem);

    // Emit the op slot by slot; abort on a violated window.
    std::vector<std::uint32_t> evicted;
    bool valid = true;
    Time emitted = 0;
    for (Time k = 0; k < dur; ++k) {
      const std::uint32_t slot = is_idle ? kSlotIdle : encode_slot(elem, k);
      ++emitted;
      if (!ctx.emit(slot, evicted)) {
        valid = false;
        break;
      }
    }
    if (!valid) {
      ctx.unwind(evicted, static_cast<std::size_t>(emitted));
      continue;
    }

    const std::string key = ctx.key();
    const auto it = color.find(key);
    if (it != color.end() && it->second == kGrey) {
      // Cycle found: candidate feasible static schedule. For async-only
      // models the cycle is feasible by construction; we verify
      // regardless (and try rotations for periodic alignment).
      StaticSchedule sched = extract_cycle(grey_depth[key], elem, dur);
      if (auto accepted = accept_cycle(model, std::move(sched), ctx.has_periodic)) {
        record_cycle(std::move(*accepted));
        if (cycles_found >= options.cycle_candidates) {
          return finish_feasible();
        }
      }
      // Keep searching (more candidates wanted, or cycle not accepted).
      ctx.unwind(evicted, static_cast<std::size_t>(dur));
      continue;
    }
    if (it != color.end() && it->second == kBlack) {
      ctx.unwind(evicted, static_cast<std::size_t>(dur));
      continue;
    }

    // Fresh state: descend.
    if (result.states_explored >= options.state_budget) {
      if (best_cycle) return finish_feasible();
      result.status = FeasibilityStatus::kUnknown;
      return result;
    }
    ++result.states_explored;
    color[key] = kGrey;
    grey_depth[key] = path.size();
    path.push_back(
        Frame{key, 0, choice_order(ctx, n_elements, options.order), elem, dur, std::move(evicted)});
  }

  if (best_cycle) return finish_feasible();
  result.status = FeasibilityStatus::kInfeasible;
  return result;
}

// ---------------------------------------------------------------------------
// Parallel search (n_threads > 1).
//
// Phase 1 enumerates, serially, every violation-free game prefix of a
// small fixed depth — the shared frontier. Self-intersecting prefixes
// are cycle candidates and are resolved on the spot. Phase 2 hands each
// frontier prefix to the pool; a worker replays the prefix and runs the
// same DFS as the serial search over the subtree below it, treating the
// prefix states as on-path (so cycles closing into the prefix are still
// caught).
//
// Workers share two lock-striped sets: `expanded` (every state any
// worker has started expanding — the unit of state_budget accounting,
// each unique state charged once) and `black` (states whose entire
// subtree some worker finished without finding an acceptable cycle).
// Black states are pruned globally: a completed exploration from a
// state is conclusive no matter which path reached it. States that are
// merely in progress on another worker are *not* pruned — pruning them
// would make this worker's subtree exploration incomplete — so a little
// work can be duplicated, but each unique state is only charged once.
// ---------------------------------------------------------------------------

// One op of the game: an execution of `elem` (or an idle slot run).
struct GameOp {
  ElementId elem = kIdleEntry;
  Time dur = 1;
};

StaticSchedule schedule_from_ops(const std::vector<GameOp>& ops) {
  StaticSchedule sched;
  for (const GameOp& op : ops) {
    if (op.elem == kIdleEntry) {
      sched.push_idle(op.dur);
    } else {
      sched.push_execution(op.elem, op.dur);
    }
  }
  return sched;
}

// A frontier prefix: the ops from the initial state and the state keys
// along the way (keys.size() == ops.size() + 1; keys.front() is the
// initial state, keys.back() the state a worker starts expanding).
struct FrontierEntry {
  std::vector<GameOp> ops;
  std::vector<std::string> keys;
};

struct ParallelShared {
  const GraphModel& model;
  const ExactOptions& options;
  std::size_t n_elements;
  bool has_periodic;

  util::StripedSet<std::string> expanded;  // unique-state accounting
  util::StripedSet<std::string> black;     // conclusively cycle-free states
  std::atomic<std::size_t> states{0};
  std::atomic<bool> stop{false};
  std::atomic<bool> budget_hit{false};
  std::atomic<bool> cancelled{false};

  // Folds the caller's cancel flag into the shared stop flag so every
  // loop that already polls `stop` observes cancellation too.
  bool should_stop() {
    if (options.progress != nullptr) {
      options.progress->fetch_add(1, std::memory_order_relaxed);
    }
    if (stop.load(std::memory_order_relaxed)) return true;
    if (options.cancel != nullptr &&
        options.cancel->load(std::memory_order_relaxed)) {
      cancelled.store(true, std::memory_order_relaxed);
      stop.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  std::mutex cycle_mutex;
  std::optional<StaticSchedule> best_cycle;
  std::size_t cycles_found = 0;

  ParallelShared(const GraphModel& m, const ExactOptions& o, bool periodic)
      : model(m), options(o), n_elements(m.comm().size()), has_periodic(periodic) {}

  // Registers an accepted cycle; signals stop once enough candidates
  // have been collected (mirroring the serial early return).
  void record_cycle(StaticSchedule sched) {
    std::lock_guard<std::mutex> lock(cycle_mutex);
    ++cycles_found;
    if (!best_cycle || leaner_cycle(sched, *best_cycle)) {
      best_cycle = std::move(sched);
    }
    if (cycles_found >= options.cycle_candidates) {
      stop.store(true, std::memory_order_relaxed);
    }
  }

  // Charges a state against the budget the first time any worker
  // expands it. Returns false when the budget would be exceeded (the
  // caller must not descend); a state someone already charged is free.
  bool charge_state(const std::string& key) {
    if (!expanded.insert(key)) return true;  // already charged
    const std::size_t n = states.fetch_add(1, std::memory_order_relaxed) + 1;
    if (n > options.state_budget) {
      budget_hit.store(true, std::memory_order_relaxed);
      stop.store(true, std::memory_order_relaxed);
      return false;
    }
    return true;
  }
};

// Phase 1: depth-bounded serial enumeration of violation-free prefixes.
// No state dedup across prefixes — distinct paths to one state yield
// distinct frontier entries, which keeps every possible cycle reachable
// from at least one worker (the shared black set dedupes the actual
// exploration in phase 2).
struct FrontierGen {
  ParallelShared& sh;
  GameContext ctx;
  std::size_t depth_limit;

  std::vector<GameOp> ops;
  std::vector<std::string> keys;
  std::vector<FrontierEntry> entries;

  FrontierGen(ParallelShared& shared, std::size_t limit)
      : sh(shared), ctx(shared.model), depth_limit(limit) {}

  void run() {
    keys.push_back(ctx.key());
    sh.charge_state(keys.front());
    rec();
  }

  void rec() {
    const auto order = choice_order(ctx, sh.n_elements, sh.options.order);
    for (std::size_t choice = 0; choice <= sh.n_elements; ++choice) {
      if (sh.should_stop()) return;
      const bool is_idle = choice == sh.n_elements;
      const ElementId elem = is_idle ? kIdleEntry : order[choice];
      const Time dur = is_idle ? 1 : sh.model.comm().weight(elem);

      std::vector<std::uint32_t> evicted;
      bool valid = true;
      Time emitted = 0;
      for (Time k = 0; k < dur; ++k) {
        const std::uint32_t slot = is_idle ? kSlotIdle : encode_slot(elem, k);
        ++emitted;
        if (!ctx.emit(slot, evicted)) {
          valid = false;
          break;
        }
      }
      if (!valid) {
        ctx.unwind(evicted, static_cast<std::size_t>(emitted));
        continue;
      }

      const std::string key = ctx.key();
      const auto hit = std::find(keys.begin(), keys.end(), key);
      if (hit != keys.end()) {
        // The prefix loops back on itself: a candidate cycle.
        const auto d = static_cast<std::size_t>(hit - keys.begin());
        std::vector<GameOp> cycle_ops(ops.begin() + static_cast<std::ptrdiff_t>(d),
                                      ops.end());
        cycle_ops.push_back(GameOp{elem, dur});
        if (auto accepted = accept_cycle(sh.model, schedule_from_ops(cycle_ops),
                                         sh.has_periodic)) {
          sh.record_cycle(std::move(*accepted));
        }
        ctx.unwind(evicted, static_cast<std::size_t>(dur));
        continue;
      }

      ops.push_back(GameOp{elem, dur});
      keys.push_back(key);
      if (ops.size() >= depth_limit) {
        entries.push_back(FrontierEntry{ops, keys});
      } else if (sh.charge_state(key)) {
        rec();
      }
      ops.pop_back();
      keys.pop_back();
      ctx.unwind(evicted, static_cast<std::size_t>(dur));
    }
  }
};

// Phase 2: explore the subtree below one frontier prefix. Same DFS as
// the serial search, with the prefix states treated as on-path for
// back-edge detection and the visited set shared through `sh`.
void search_subtree(ParallelShared& sh, const FrontierEntry& entry) {
  if (sh.stop.load(std::memory_order_relaxed)) return;
  const std::string& root_key = entry.keys.back();
  if (sh.black.contains(root_key)) return;  // conclusively explored already

  GameContext ctx(sh.model);
  {
    // Replay the (already validated) prefix.
    std::vector<std::uint32_t> scratch;
    for (const GameOp& op : entry.ops) {
      for (Time k = 0; k < op.dur; ++k) {
        const std::uint32_t slot =
            op.elem == kIdleEntry ? kSlotIdle : encode_slot(op.elem, k);
        (void)ctx.emit(slot, scratch);
      }
    }
  }

  // Prefix states by key, for back edges that close above the subtree.
  std::unordered_map<std::string, std::size_t> prefix_depth;
  for (std::size_t i = 0; i + 1 < entry.keys.size(); ++i) {
    prefix_depth.emplace(entry.keys[i], i);
  }

  enum : std::uint8_t { kGrey = 1, kBlack = 2 };
  std::unordered_map<std::string, std::uint8_t> color;      // this worker only
  std::unordered_map<std::string, std::size_t> grey_depth;  // key -> frame index

  if (!sh.charge_state(root_key)) return;

  std::vector<Frame> path;
  path.push_back(Frame{root_key, 0, choice_order(ctx, sh.n_elements, sh.options.order),
                       kIdleEntry, 0, {}});
  color[root_key] = kGrey;
  grey_depth[root_key] = 0;

  // Closing a cycle at frame index f (or into the prefix at depth d):
  // the schedule is the on-path ops from the grey state forward plus
  // the closing op.
  auto extract_local = [&](std::size_t from_frame, ElementId closing_elem,
                           Time closing_dur) {
    std::vector<GameOp> cycle_ops;
    for (std::size_t i = from_frame + 1; i < path.size(); ++i) {
      cycle_ops.push_back(GameOp{path[i].arrived_elem, path[i].arrived_dur});
    }
    cycle_ops.push_back(GameOp{closing_elem, closing_dur});
    return schedule_from_ops(cycle_ops);
  };
  auto extract_through_prefix = [&](std::size_t prefix_from, ElementId closing_elem,
                                    Time closing_dur) {
    std::vector<GameOp> cycle_ops(entry.ops.begin() +
                                      static_cast<std::ptrdiff_t>(prefix_from),
                                  entry.ops.end());
    for (std::size_t i = 1; i < path.size(); ++i) {
      cycle_ops.push_back(GameOp{path[i].arrived_elem, path[i].arrived_dur});
    }
    cycle_ops.push_back(GameOp{closing_elem, closing_dur});
    return schedule_from_ops(cycle_ops);
  };

  while (!path.empty()) {
    if (sh.should_stop()) return;
    Frame& frame = path.back();
    if (frame.next_choice > sh.n_elements) {
      // Exhausted: conclusively no acceptable cycle below this state.
      color[frame.key] = kBlack;
      grey_depth.erase(frame.key);
      sh.black.insert(frame.key);
      const std::size_t dur = static_cast<std::size_t>(frame.arrived_dur);
      Frame done = std::move(path.back());
      path.pop_back();
      if (!path.empty()) {
        ctx.unwind(done.evicted, dur);
      }
      continue;
    }

    const std::size_t choice = frame.next_choice++;
    const bool is_idle = choice == sh.n_elements;
    const ElementId elem = is_idle ? kIdleEntry : frame.order[choice];
    const Time dur = is_idle ? 1 : sh.model.comm().weight(elem);

    std::vector<std::uint32_t> evicted;
    bool valid = true;
    Time emitted = 0;
    for (Time k = 0; k < dur; ++k) {
      const std::uint32_t slot = is_idle ? kSlotIdle : encode_slot(elem, k);
      ++emitted;
      if (!ctx.emit(slot, evicted)) {
        valid = false;
        break;
      }
    }
    if (!valid) {
      ctx.unwind(evicted, static_cast<std::size_t>(emitted));
      continue;
    }

    const std::string key = ctx.key();
    // Back edges must be checked before the shared black set: a state
    // on *this* worker's path witnesses a cycle no matter what other
    // workers concluded about their own explorations through it.
    const auto it = color.find(key);
    if (it != color.end() && it->second == kGrey) {
      if (auto accepted = accept_cycle(
              sh.model, extract_local(grey_depth[key], elem, dur), sh.has_periodic)) {
        sh.record_cycle(std::move(*accepted));
      }
      ctx.unwind(evicted, static_cast<std::size_t>(dur));
      continue;
    }
    const auto pit = prefix_depth.find(key);
    if (pit != prefix_depth.end()) {
      if (auto accepted = accept_cycle(
              sh.model, extract_through_prefix(pit->second, elem, dur),
              sh.has_periodic)) {
        sh.record_cycle(std::move(*accepted));
      }
      ctx.unwind(evicted, static_cast<std::size_t>(dur));
      continue;
    }
    if ((it != color.end() && it->second == kBlack) || sh.black.contains(key)) {
      ctx.unwind(evicted, static_cast<std::size_t>(dur));
      continue;
    }

    if (!sh.charge_state(key)) {
      ctx.unwind(evicted, static_cast<std::size_t>(dur));
      continue;
    }
    color[key] = kGrey;
    grey_depth[key] = path.size();
    path.push_back(Frame{key, 0, choice_order(ctx, sh.n_elements, sh.options.order),
                         elem, dur, std::move(evicted)});
  }
}

ExactResult exact_parallel(const GraphModel& model, const ExactOptions& options,
                           std::size_t n_threads) {
  GameContext probe(model);
  ParallelShared sh(model, options, probe.has_periodic);

  // Frontier depth: just deep enough that the full branching tree has
  // ~4 tasks per worker to steal from; capped so phase 1 stays cheap.
  const std::size_t branching = sh.n_elements + 1;
  const std::size_t target = 4 * n_threads;
  std::size_t depth = 1;
  for (std::size_t width = branching; width < target && depth < 8; width *= branching) {
    ++depth;
  }

  FrontierGen gen(sh, depth);
  gen.run();

  if (!sh.stop.load() && !gen.entries.empty()) {
    util::ThreadPool pool(n_threads);
    for (const FrontierEntry& entry : gen.entries) {
      pool.submit([&sh, &entry] { search_subtree(sh, entry); });
    }
    pool.wait_idle();
  }

  ExactResult result;
  result.states_explored = sh.states.load();
  std::lock_guard<std::mutex> lock(sh.cycle_mutex);
  if (sh.best_cycle) {
    result.status = FeasibilityStatus::kFeasible;
    result.schedule = std::move(sh.best_cycle);
  } else if (sh.cancelled.load()) {
    result.status = FeasibilityStatus::kUnknown;
    result.cancelled = true;
  } else if (sh.budget_hit.load()) {
    result.status = FeasibilityStatus::kUnknown;
  } else {
    result.status = FeasibilityStatus::kInfeasible;
  }
  return result;
}

}  // namespace

ExactResult exact_feasible(const GraphModel& model, const ExactOptions& options) {
  if (model.constraint_count() == 0) {
    ExactResult r;
    r.status = FeasibilityStatus::kFeasible;
    r.schedule = StaticSchedule{};
    r.schedule->push_idle(1);
    return r;
  }
  for (ElementId e = 0; e < model.comm().size(); ++e) {
    if (model.comm().weight(e) > 255) {
      throw std::invalid_argument("exact_feasible: element weight exceeds 255");
    }
  }

  // Analytic early-out: necessary conditions refute without search.
  if (!refute_feasibility(model).empty()) {
    ExactResult r;
    r.status = FeasibilityStatus::kInfeasible;
    return r;
  }

  const std::size_t n_threads = util::resolve_threads(options.n_threads);
  if (n_threads <= 1) return exact_serial(model, options);
  return exact_parallel(model, options, n_threads);
}

namespace {

bool brute_rec(const GraphModel& model, Time remaining, StaticSchedule& partial,
               std::optional<StaticSchedule>& found) {
  if (found) return true;
  if (remaining == 0) {
    if (verify_schedule(partial, model, kSerialVerify).feasible) {
      found = partial;
      return true;
    }
    return false;
  }
  for (ElementId e = 0; e < model.comm().size(); ++e) {
    const Time w = model.comm().weight(e);
    if (w > remaining) continue;
    StaticSchedule next = partial;
    next.push_execution(e, w);
    if (brute_rec(model, remaining - w, next, found)) return true;
  }
  StaticSchedule next = partial;
  next.push_idle(1);
  return brute_rec(model, remaining - 1, next, found);
}

}  // namespace

std::optional<StaticSchedule> brute_force_schedule(const GraphModel& model, Time len) {
  if (len < 1) return std::nullopt;
  StaticSchedule partial;
  std::optional<StaticSchedule> found;
  brute_rec(model, len, partial, found);
  return found;
}

}  // namespace rtg::core
