// dataflow.hpp — value-level execution of a graph-based model.
//
// The model's execution rule is operational: an edge u -> v means the
// *latest output* of u is transmitted to v before v executes, and
// computation is pipeline-ordered (executions of an element and
// transmissions on an edge are FIFO). This module runs a static
// schedule with real data values flowing through the functional
// elements, which serves three purposes:
//
//   * it makes the model executable (elements are user-supplied
//     functions over integer samples, e.g. filters and control laws);
//   * it checks the pipeline-ordering axioms dynamically on the event
//     log (distinct start times, FIFO completions, FIFO transmissions);
//   * it hosts the paper's fault-tolerance direction — "relations on
//     the data values that are being passed along the edges" — as
//     per-channel invariants checked on every transmission.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "core/static_schedule.hpp"

namespace rtg::core {

/// Sample type flowing along channels.
using Value = std::int64_t;

/// A functional element's behaviour: given the latest value received on
/// each in-channel (in predecessor-id order; 0 for never-received) and
/// its persistent internal state, produce (output, new state).
using ElementFn =
    std::function<std::pair<Value, Value>(std::span<const Value> inputs, Value state)>;

/// A relation on the values passed along one channel — the paper's
/// logical-integrity hook. Receives the transmitted value and the value
/// previously transmitted on the same channel (0 for the first).
using EdgeRelation = std::function<bool(Value previous, Value current)>;

/// One completed execution in the value-level log.
struct ExecutionEvent {
  ElementId elem = 0;
  Time start = 0;
  Time finish = 0;
  Value output = 0;
};

/// One transmission in the value-level log. On a uniprocessor the
/// transmission is instantaneous at the producer's finish.
struct TransmissionEvent {
  ElementId from = 0;
  ElementId to = 0;
  Time at = 0;
  Value value = 0;
};

struct EdgeViolation {
  ElementId from = 0;
  ElementId to = 0;
  Time at = 0;
  Value previous = 0;
  Value current = 0;
};

struct DataflowResult {
  std::vector<ExecutionEvent> executions;
  std::vector<TransmissionEvent> transmissions;
  std::vector<EdgeViolation> violations;
  /// Pipeline-ordering axioms held on the log (always true for traces
  /// produced by this executive; exposed for checking external logs).
  bool pipeline_ordered = true;

  /// Output values of a given element, in execution order.
  [[nodiscard]] std::vector<Value> outputs_of(ElementId e) const;
  /// Values transmitted on a given channel, in order.
  [[nodiscard]] std::vector<Value> channel_values(ElementId from, ElementId to) const;
};

/// Value-level executive over a static schedule.
class DataflowExecutive {
 public:
  /// Behaviours default to "sum of inputs plus state, state unchanged".
  explicit DataflowExecutive(const GraphModel& model);

  /// Installs the behaviour of element `e`.
  void set_behaviour(ElementId e, ElementFn fn);
  /// Installs an invariant on channel from -> to. Throws if no such
  /// channel exists.
  void set_edge_relation(ElementId from, ElementId to, EdgeRelation relation);
  /// Seeds the internal state of element `e` (default 0).
  void set_state(ElementId e, Value state);
  /// Sets the external input injected into source elements (elements
  /// with no in-channels receive {input} as their input vector). The
  /// generator is called once per execution with the current time.
  void set_source(ElementId e, std::function<Value(Time)> generator);

  /// Runs `cycles` round-robin repetitions of the schedule, producing
  /// the value log. The schedule must validate against the model.
  [[nodiscard]] DataflowResult run(const StaticSchedule& schedule, std::size_t cycles);

 private:
  const GraphModel& model_;
  std::vector<ElementFn> behaviour_;
  std::vector<Value> state_;
  std::vector<std::function<Value(Time)>> source_;
  // Relations keyed by packed channel id.
  std::vector<std::pair<std::uint64_t, EdgeRelation>> relations_;
};

/// Checks the pipeline-ordering axioms on an arbitrary event log:
/// executions of each element have distinct, FIFO start/finish order,
/// and transmissions per channel are FIFO in both send order and value
/// sequence index.
[[nodiscard]] bool check_pipeline_ordering(std::span<const ExecutionEvent> executions,
                                           std::span<const TransmissionEvent> transmissions);

}  // namespace rtg::core
