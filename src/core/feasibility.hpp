// feasibility.hpp — exact feasibility via the Theorem-1 simulation game.
//
// Theorem 1 of the paper: if any execution trace meets every
// asynchronous constraint's latency bound, then a *finite* feasible
// static schedule exists; the proof constructs a finite simulation
// game. This module implements that game directly:
//
//   * whether all future windows can still be satisfied depends only on
//     the last D slots of the trace (D = max deadline) plus, when
//     periodic constraints exist, the phase of the clock modulo the lcm
//     of the periodic periods — a finite state;
//   * the solver explores the graph whose states are those summaries
//     and whose transitions append one element execution or one idle
//     slot, pruning any transition that closes a violated window;
//   * a reachable cycle in this graph yields a feasible static schedule
//     (the ops emitted along the cycle); exhausting the reachable state
//     space without finding a cycle proves infeasibility.
//
// The search is exponential in D and |V| — unavoidable by Theorem 2
// (strong NP-hardness) — so a state budget turns giant instances into
// an explicit kUnknown instead of an endless run.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>

#include "core/latency.hpp"
#include "core/model.hpp"
#include "core/static_schedule.hpp"

namespace rtg::core {

enum class FeasibilityStatus : std::uint8_t {
  kFeasible,
  kInfeasible,
  kUnknown,  ///< state budget exhausted before an answer
};

struct ExactResult {
  FeasibilityStatus status = FeasibilityStatus::kUnknown;
  /// A feasible static schedule (verified), when status == kFeasible.
  std::optional<StaticSchedule> schedule;
  /// Number of distinct states expanded.
  std::size_t states_explored = 0;
  /// True when the search was abandoned through ExactOptions::cancel
  /// before reaching an answer. Status is kUnknown in that case unless
  /// a feasible cycle had already been collected (then kFeasible with
  /// the best cycle seen so far).
  bool cancelled = false;
};

/// DFS branching order. Least-recently-executed-first biases the search
/// towards round-robin-shaped strings (the shape feasible cycles take)
/// and typically finds cycles orders of magnitude faster than static id
/// order; both are complete. Exposed for the E2 ablation.
enum class BranchOrder : std::uint8_t {
  kLeastRecentlyExecuted,
  kStaticId,
};

struct ExactOptions {
  /// Cap on distinct states expanded before giving up with kUnknown.
  std::size_t state_budget = 1'000'000;
  BranchOrder order = BranchOrder::kLeastRecentlyExecuted;
  /// Number of feasible cycles to collect before answering: 1 returns
  /// the first cycle found (fastest); larger values keep searching and
  /// return the *leanest* cycle seen (lowest busy fraction, then
  /// shortest), trading solve time for schedule quality — the knob the
  /// E14 experiment motivates.
  std::size_t cycle_candidates = 1;
  /// Worker threads for the game search. 0 = hardware concurrency;
  /// 1 = the exact single-threaded legacy search. With more than one
  /// thread, workers expand disjoint subtrees seeded from a shared
  /// frontier of short game prefixes, share a lock-striped
  /// visited-state set, and charge unique state expansions against the
  /// same state_budget. The FeasibilityStatus is the same as the
  /// serial search's (both are sound and complete); the witness
  /// schedule may be a different feasible cycle, and states_explored
  /// counts unique expansions across all workers.
  std::size_t n_threads = 0;
  /// Cooperative cancellation: when non-null and set, the search stops
  /// at the next expansion boundary (serial and parallel alike) and
  /// returns with cancelled = true. The service layer points this at a
  /// per-job flag to enforce deadlines on the NP-hard search.
  const std::atomic<bool>* cancel = nullptr;
  /// Liveness beacon: when non-null the search bumps it (relaxed) at
  /// every cancellation poll, so a watchdog can tell a slow-but-alive
  /// search (counter advancing) from a wedged one (frozen).
  std::atomic<std::uint64_t>* progress = nullptr;
};

/// Decides whether a feasible static schedule exists for the model
/// (all constraints: asynchronous latencies and periodic invocation
/// windows), and produces one when it does.
[[nodiscard]] ExactResult exact_feasible(const GraphModel& model,
                                         const ExactOptions& options = {});

/// Brute-force cross-check: enumerates every static schedule of length
/// exactly `len` slots (compositions into executions and idle slots)
/// and returns the first that verify_schedule accepts, or nullopt.
/// Exponential in `len`; for testing the game solver on tiny instances.
[[nodiscard]] std::optional<StaticSchedule> brute_force_schedule(const GraphModel& model,
                                                                 Time len);

}  // namespace rtg::core
