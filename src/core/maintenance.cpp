#include "core/maintenance.hpp"

#include "core/pipeline.hpp"

namespace rtg::core {

namespace {

// Re-expresses `sched` (over `from`) against `to`, matching elements by
// name. nullopt when some scheduled element has no namesake in `to` or
// the weights disagree (the execution would change shape).
std::optional<StaticSchedule> translate_schedule(const StaticSchedule& sched,
                                                 const CommGraph& from,
                                                 const CommGraph& to) {
  StaticSchedule out;
  for (const ScheduleEntry& entry : sched.entries()) {
    if (entry.elem == kIdleEntry) {
      out.push_idle(entry.duration);
      continue;
    }
    if (!from.has_element(entry.elem)) return std::nullopt;
    const auto target = to.find(from.name(entry.elem));
    if (!target || to.weight(*target) != entry.duration) return std::nullopt;
    out.push_execution(*target, entry.duration);
  }
  return out;
}

}  // namespace

MaintenanceResult maintain_schedule(const StaticSchedule& deployed,
                                    const GraphModel& deployed_model,
                                    const GraphModel& new_model,
                                    const HeuristicOptions& options) {
  MaintenanceResult result;

  // Express the new model the same way the deployed schedule is
  // expressed (pipelined or not, matching the synthesis options).
  GraphModel target = options.pipeline ? pipeline_model(new_model).model : new_model;

  const auto translated =
      translate_schedule(deployed, deployed_model.comm(), target.comm());
  if (translated) {
    const FeasibilityReport report = verify_schedule(*translated, target);
    if (report.feasible) {
      result.outcome = MaintenanceOutcome::kScheduleUnchanged;
      result.detail = "deployed schedule satisfies the revised model";
      result.schedule = *translated;
      result.scheduled_model = std::move(target);
      return result;
    }
    for (const ConstraintVerdict& v : report.verdicts) {
      if (!v.satisfied) result.violated.push_back(v.constraint);
    }
  } else {
    result.detail = "deployed schedule references elements the revised model "
                    "renamed or reweighted; ";
  }

  const HeuristicResult synth = latency_schedule(new_model, options);
  result.scheduled_model = synth.scheduled_model;
  if (!synth.success) {
    result.outcome = MaintenanceOutcome::kFailed;
    result.detail += "re-synthesis failed: " + synth.failure_reason;
    return result;
  }
  result.outcome = MaintenanceOutcome::kRescheduled;
  result.detail += "re-synthesized (" + std::to_string(result.violated.size()) +
                   " constraint(s) violated by the old schedule)";
  result.schedule = synth.schedule;
  return result;
}

}  // namespace rtg::core
