// npc.hpp — NP-hardness reduction gadgets (Theorem 2).
//
// Theorem 2 of the paper: deciding whether a feasible static schedule
// exists is strongly NP-hard even in two restricted families, proved by
// reduction from 3-PARTITION and from CYCLIC ORDERING [Garey & Johnson].
// The paper omits the reduction constructions; this module supplies a
// faithful-in-spirit 3-PARTITION encoding used by the hardness-scaling
// experiment (E3) and by tests:
//
//   Instance: items a_1..a_{3m}, each in (B/4, B/2), Σ a_j = m·B.
//   Encoding (single-operation variant, the shape of restriction (ii) —
//   every task graph a single operation, all but one deadline equal,
//   no pipelining):
//     * a gate element g, weight 1, with constraint (g, d = B+1):
//       g must appear in every window of B+1 slots, i.e. the busy time
//       between consecutive gates is at most B;
//     * per item j an element x_j of weight a_j (non-pipelinable) with
//       constraint (x_j, d = m(B+1) + a_j - 1): x_j must execute once
//       per cycle of m(B+1) slots (the a_j - 1 allowance covers windows
//       that open inside an execution).
//   If the instance is solvable, the bin-packing schedule — m groups of
//   [gate, three items summing to B] — meets every deadline, so a
//   feasible static schedule exists. If the instance is overloaded
//   (Σ a_j > m·B), the gate density (one slot per B+1) plus the item
//   densities exceed the processor and no schedule exists. Balanced but
//   unsolvable instances sit between: the solver must search the
//   packing combinatorics, which is where the exponential blow-up of
//   Theorem 2 shows (experiment E3 measures it). This encoding is
//   faithful in spirit; the paper omits its exact construction, and the
//   a_j - 1 allowances mean the strict "feasible iff solvable"
//   equivalence is only enforced here for the solvable and overloaded
//   directions that the tests check.
//
//   The chain variant (restriction (i): unit computation times, chain
//   task graphs) replaces each item element by a chain of a_j distinct
//   unit-weight sub-elements that must execute in order.
#pragma once

#include <vector>

#include "core/model.hpp"
#include "sim/rng.hpp"

namespace rtg::core {

struct ThreePartitionInstance {
  /// Item sizes; 3*bins of them, each in (capacity/4, capacity/2) for a
  /// canonical instance.
  std::vector<Time> items;
  Time capacity = 0;  ///< B
  std::size_t bins = 0;  ///< m

  /// Σ items == bins * capacity (necessary for solvability).
  [[nodiscard]] bool balanced() const;
};

/// Single-operation encoding (restriction (ii)). Elements are
/// non-pipelinable; the gate constraint has the one deviant deadline.
[[nodiscard]] GraphModel three_partition_model(const ThreePartitionInstance& inst);

/// Chain encoding (restriction (i)): unit weights, chain task graphs.
[[nodiscard]] GraphModel three_partition_chain_model(const ThreePartitionInstance& inst);

/// Generates a solvable instance: `bins` random triples each summing to
/// `capacity` with every item in (capacity/4, capacity/2). Requires
/// capacity >= 8 and capacity divisible by 4 for comfortable margins.
[[nodiscard]] ThreePartitionInstance random_solvable_three_partition(std::size_t bins,
                                                                     Time capacity,
                                                                     sim::Rng& rng);

/// Derives an unsolvable instance from a solvable one by growing one
/// item (total work then exceeds bin capacity, so no schedule exists).
[[nodiscard]] ThreePartitionInstance make_overloaded(ThreePartitionInstance inst);

/// Greedy/backtracking 3-PARTITION solver (exponential worst case) used
/// to cross-check instance solvability independent of the scheduler.
[[nodiscard]] bool solve_three_partition(const ThreePartitionInstance& inst);

}  // namespace rtg::core
