#include "core/optimize.hpp"

#include <stdexcept>

namespace rtg::core {

namespace {

// Rebuilds the schedule with entry `skip` replaced by idle time (or
// removed entirely when remove_slot is true and the entry is idle).
StaticSchedule rebuild_without(const StaticSchedule& sched, std::size_t skip,
                               bool to_idle) {
  StaticSchedule out;
  const auto& entries = sched.entries();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const ScheduleEntry& entry = entries[i];
    if (i == skip) {
      if (to_idle) out.push_idle(entry.duration);
      // else: drop entirely
      continue;
    }
    if (entry.elem == kIdleEntry) {
      out.push_idle(entry.duration);
    } else {
      out.push_execution(entry.elem, entry.duration);
    }
  }
  return out;
}

// Rebuilds with one slot shaved off idle entry `which`.
std::optional<StaticSchedule> shave_idle(const StaticSchedule& sched, std::size_t which) {
  StaticSchedule out;
  const auto& entries = sched.entries();
  bool shaved = false;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const ScheduleEntry& entry = entries[i];
    if (entry.elem == kIdleEntry) {
      Time dur = entry.duration;
      if (i == which) {
        if (dur == 1) {
          shaved = true;
          continue;  // drop the run entirely
        }
        dur -= 1;
        shaved = true;
      }
      out.push_idle(dur);
    } else {
      out.push_execution(entry.elem, entry.duration);
    }
  }
  if (!shaved) return std::nullopt;
  return out;
}

void init_stats(OptimizeStats* stats, const StaticSchedule& sched) {
  if (!stats) return;
  stats->length_before = sched.length();
  stats->utilization_before = sched.utilization();
}

void finish_stats(OptimizeStats* stats, const StaticSchedule& sched) {
  if (!stats) return;
  stats->length_after = sched.length();
  stats->utilization_after = sched.utilization();
}

}  // namespace

StaticSchedule compact_schedule(const StaticSchedule& sched, const GraphModel& model,
                                OptimizeStats* stats) {
  // The drop edit replaces one execution with an equal-length idle run,
  // so slot times are untouched — exactly the shape the incremental
  // verifier caches witnesses across. Only windows whose witness used
  // the dropped execution get re-queried per candidate.
  IncrementalVerifier verifier(model);
  if (!verifier.verify(sched).feasible) {
    throw std::invalid_argument("compact_schedule: input schedule is not feasible");
  }
  init_stats(stats, sched);
  StaticSchedule current = sched;
  bool changed = true;
  while (changed) {
    changed = false;
    const auto& entries = current.entries();
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (entries[i].elem == kIdleEntry) continue;
      StaticSchedule candidate = rebuild_without(current, i, /*to_idle=*/true);
      if (verifier.verify_drop(candidate, i).feasible) {
        verifier.commit_drop();
        current = std::move(candidate);
        if (stats) ++stats->executions_removed;
        changed = true;
        break;  // entry indices shifted; rescan
      }
    }
  }
  if (stats) stats->verify += verifier.stats();
  finish_stats(stats, current);
  return current;
}

StaticSchedule trim_idle(const StaticSchedule& sched, const GraphModel& model,
                         OptimizeStats* stats) {
  // Shaving changes slot times after the cut, so every window can move:
  // no incremental reuse here — each candidate is verified in full.
  VerifyStats step;
  VerifyOptions opts;
  opts.stats = stats ? &step : nullptr;
  auto feasible = [&](const StaticSchedule& s) {
    const bool ok = verify_schedule(s, model, opts).feasible;
    if (stats) stats->verify += step;
    return ok;
  };
  if (!feasible(sched)) {
    throw std::invalid_argument("trim_idle: input schedule is not feasible");
  }
  init_stats(stats, sched);
  StaticSchedule current = sched;
  bool changed = true;
  while (changed && current.length() > 1) {
    changed = false;
    const auto& entries = current.entries();
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (entries[i].elem != kIdleEntry) continue;
      const auto candidate = shave_idle(current, i);
      if (candidate && candidate->length() >= 1 && feasible(*candidate)) {
        current = *candidate;
        if (stats) stats->idle_removed += 1;
        changed = true;
        break;
      }
    }
  }
  finish_stats(stats, current);
  return current;
}

StaticSchedule optimize_schedule(const StaticSchedule& sched, const GraphModel& model,
                                 OptimizeStats* stats, std::size_t max_rounds) {
  init_stats(stats, sched);
  StaticSchedule current = sched;
  for (std::size_t round = 0; round < max_rounds; ++round) {
    OptimizeStats pass;
    current = compact_schedule(current, model, &pass);
    OptimizeStats trim_pass;
    StaticSchedule trimmed = trim_idle(current, model, &trim_pass);
    const Time idle_gain = current.length() - trimmed.length();
    current = std::move(trimmed);
    if (stats) {
      stats->executions_removed += pass.executions_removed;
      stats->idle_removed += idle_gain;
      stats->verify += pass.verify;
      stats->verify += trim_pass.verify;
    }
    if (pass.executions_removed == 0 && idle_gain == 0) break;
  }
  finish_stats(stats, current);
  return current;
}

std::optional<StaticSchedule> find_feasible_rotation(const StaticSchedule& sched,
                                                     const GraphModel& model) {
  const auto& entries = sched.entries();
  for (std::size_t r = 0; r < std::max<std::size_t>(entries.size(), 1); ++r) {
    StaticSchedule rotated;
    for (std::size_t i = 0; i < entries.size(); ++i) {
      const ScheduleEntry& entry = entries[(r + i) % entries.size()];
      if (entry.elem == kIdleEntry) {
        rotated.push_idle(entry.duration);
      } else {
        rotated.push_execution(entry.elem, entry.duration);
      }
    }
    if (verify_schedule(rotated, model).feasible) return rotated;
  }
  return std::nullopt;
}

}  // namespace rtg::core
