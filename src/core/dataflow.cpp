#include "core/dataflow.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace rtg::core {

namespace {

std::uint64_t pack_channel(ElementId from, ElementId to) {
  return (static_cast<std::uint64_t>(from) << 32) | to;
}

}  // namespace

std::vector<Value> DataflowResult::outputs_of(ElementId e) const {
  std::vector<Value> out;
  for (const ExecutionEvent& ev : executions) {
    if (ev.elem == e) out.push_back(ev.output);
  }
  return out;
}

std::vector<Value> DataflowResult::channel_values(ElementId from, ElementId to) const {
  std::vector<Value> out;
  for (const TransmissionEvent& tr : transmissions) {
    if (tr.from == from && tr.to == to) out.push_back(tr.value);
  }
  return out;
}

DataflowExecutive::DataflowExecutive(const GraphModel& model)
    : model_(model),
      behaviour_(model.comm().size()),
      state_(model.comm().size(), 0),
      source_(model.comm().size()) {
  for (ElementId e = 0; e < model.comm().size(); ++e) {
    behaviour_[e] = [](std::span<const Value> inputs, Value state) {
      Value sum = state;
      for (Value v : inputs) sum += v;
      return std::pair<Value, Value>{sum, state};
    };
  }
}

void DataflowExecutive::set_behaviour(ElementId e, ElementFn fn) {
  if (!model_.comm().has_element(e)) {
    throw std::out_of_range("DataflowExecutive::set_behaviour: unknown element");
  }
  behaviour_.at(e) = std::move(fn);
}

void DataflowExecutive::set_edge_relation(ElementId from, ElementId to,
                                          EdgeRelation relation) {
  if (!model_.comm().has_channel(from, to)) {
    throw std::invalid_argument("DataflowExecutive::set_edge_relation: no such channel");
  }
  relations_.emplace_back(pack_channel(from, to), std::move(relation));
}

void DataflowExecutive::set_state(ElementId e, Value state) {
  state_.at(e) = state;
}

void DataflowExecutive::set_source(ElementId e, std::function<Value(Time)> generator) {
  if (!model_.comm().has_element(e)) {
    throw std::out_of_range("DataflowExecutive::set_source: unknown element");
  }
  source_.at(e) = std::move(generator);
}

DataflowResult DataflowExecutive::run(const StaticSchedule& schedule,
                                      std::size_t cycles) {
  const auto diags = schedule.validate(model_.comm());
  if (!diags.empty()) {
    throw std::invalid_argument("DataflowExecutive::run: invalid schedule: " + diags[0]);
  }

  const CommGraph& comm = model_.comm();
  DataflowResult result;

  // latest[u][slot-of-v]: latest value received by v on channel u -> v.
  // Stored as map channel -> value, plus map channel -> last value for
  // relation checking.
  std::unordered_map<std::uint64_t, Value> received;
  std::unordered_map<std::uint64_t, Value> last_sent;

  std::vector<Value> state = state_;
  const std::vector<ScheduledOp> base = schedule.ops();
  const Time period = schedule.length();

  for (std::size_t cycle = 0; cycle < cycles; ++cycle) {
    const Time shift = static_cast<Time>(cycle) * period;
    for (const ScheduledOp& op : base) {
      const ElementId e = op.elem;
      const Time start = op.start + shift;
      const Time finish = start + op.duration;

      // Gather inputs: latest received value per in-channel, in
      // predecessor order; sources use their generator instead.
      std::vector<Value> inputs;
      const auto& preds = comm.digraph().predecessors(e);
      if (preds.empty()) {
        if (source_[e]) inputs.push_back(source_[e](start));
      } else {
        for (ElementId u : preds) {
          const auto it = received.find(pack_channel(u, e));
          inputs.push_back(it == received.end() ? 0 : it->second);
        }
      }

      const auto [output, new_state] = behaviour_[e](inputs, state[e]);
      state[e] = new_state;
      result.executions.push_back(ExecutionEvent{e, start, finish, output});

      // Transmit the latest output along every out-channel.
      for (ElementId v : comm.digraph().successors(e)) {
        const std::uint64_t ch = pack_channel(e, v);
        const Value previous =
            last_sent.contains(ch) ? last_sent[ch] : 0;
        for (const auto& [key, relation] : relations_) {
          if (key == ch && !relation(previous, output)) {
            result.violations.push_back(EdgeViolation{e, v, finish, previous, output});
          }
        }
        last_sent[ch] = output;
        received[ch] = output;
        result.transmissions.push_back(TransmissionEvent{e, v, finish, output});
      }
    }
  }

  result.pipeline_ordered =
      check_pipeline_ordering(result.executions, result.transmissions);
  return result;
}

bool check_pipeline_ordering(std::span<const ExecutionEvent> executions,
                             std::span<const TransmissionEvent> transmissions) {
  // Executions of an element: distinct start times, and start order
  // equals finish order.
  std::unordered_map<ElementId, std::vector<std::pair<Time, Time>>> per_element;
  for (const ExecutionEvent& ev : executions) {
    per_element[ev.elem].emplace_back(ev.start, ev.finish);
  }
  for (auto& [elem, runs] : per_element) {
    std::vector<std::pair<Time, Time>> by_start = runs;
    std::sort(by_start.begin(), by_start.end());
    for (std::size_t i = 1; i < by_start.size(); ++i) {
      if (by_start[i].first == by_start[i - 1].first) return false;  // equal starts
      if (by_start[i].second <= by_start[i - 1].second) return false;  // finish inversion
    }
  }
  // Transmissions per channel: strictly ordered send times.
  std::unordered_map<std::uint64_t, Time> last_at;
  for (const TransmissionEvent& tr : transmissions) {
    const std::uint64_t ch =
        (static_cast<std::uint64_t>(tr.from) << 32) | tr.to;
    const auto it = last_at.find(ch);
    if (it != last_at.end() && tr.at <= it->second) return false;
    last_at[ch] = tr.at;
  }
  return true;
}

}  // namespace rtg::core
