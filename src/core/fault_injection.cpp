#include "core/fault_injection.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <stdexcept>

namespace rtg::core {

namespace {

// Decision-type tags fold into the hash so the same (spec, time) pair
// draws independently for different questions.
constexpr std::uint64_t kTagSlot = 1;
constexpr std::uint64_t kTagFate = 2;
constexpr std::uint64_t kTagJitter = 3;

constexpr bool in_window(const FaultSpec& spec, Time t) {
  return t >= spec.begin && t < spec.end;
}

}  // namespace

std::string_view fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kSlotLoss: return "slotloss";
    case FaultKind::kElementFail: return "fail";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kDrop: return "drop";
    case FaultKind::kArrivalJitter: return "jitter";
    case FaultKind::kClockDrift: return "drift";
    case FaultKind::kProcessorFail: return "procfail";
    case FaultKind::kLinkFail: return "linkfail";
    case FaultKind::kLinkDegrade: return "linkdegrade";
  }
  return "unknown";
}

std::string_view execution_fate_name(ExecutionFate fate) {
  switch (fate) {
    case ExecutionFate::kOk: return "ok";
    case ExecutionFate::kSlotLost: return "slot-lost";
    case ExecutionFate::kElementDown: return "element-down";
    case ExecutionFate::kDropped: return "dropped";
    case ExecutionFate::kCorrupted: return "corrupted";
  }
  return "unknown";
}

std::vector<std::string> validate_fault_plan(const FaultPlan& plan,
                                             const GraphModel& model) {
  std::vector<std::string> issues;
  for (std::size_t i = 0; i < plan.faults.size(); ++i) {
    const FaultSpec& f = plan.faults[i];
    const std::string where =
        "fault " + std::to_string(i) + " (" + std::string(fault_kind_name(f.kind)) + ")";
    if (f.begin < 0) issues.push_back(where + ": negative window begin");
    if (f.end <= f.begin) issues.push_back(where + ": empty window (end <= begin)");
    const bool stochastic = f.kind == FaultKind::kSlotLoss ||
                            f.kind == FaultKind::kCorrupt ||
                            f.kind == FaultKind::kDrop;
    if (stochastic && (f.rate < 0.0 || f.rate > 1.0)) {
      issues.push_back(where + ": rate must be in [0, 1]");
    }
    if (f.element != kAnyElement && !model.comm().has_element(f.element)) {
      issues.push_back(where + ": unknown element id " + std::to_string(f.element));
    }
    switch (f.kind) {
      case FaultKind::kElementFail:
        if (f.element == kAnyElement) {
          issues.push_back(where + ": needs a concrete element");
        }
        if (f.magnitude < 1) issues.push_back(where + ": repair must be >= 1 slot");
        break;
      case FaultKind::kClockDrift:
        if (f.magnitude < 1) issues.push_back(where + ": tick spacing must be >= 1");
        break;
      case FaultKind::kProcessorFail:
      case FaultKind::kLinkFail:
        if (f.resource == kAnyResource) {
          issues.push_back(where + ": needs a concrete platform resource");
        }
        if (f.magnitude < 1) issues.push_back(where + ": repair must be >= 1 slot");
        break;
      case FaultKind::kLinkDegrade:
        if (f.resource == kAnyResource) {
          issues.push_back(where + ": needs a concrete platform resource");
        }
        if (f.magnitude < 1) {
          issues.push_back(where + ": bandwidth divisor must be >= 1");
        }
        break;
      case FaultKind::kArrivalJitter: {
        if (f.magnitude < 0) issues.push_back(where + ": max shift must be >= 0");
        if (f.constraint != kAnyConstraint) {
          if (f.constraint >= model.constraint_count()) {
            issues.push_back(where + ": unknown constraint index " +
                             std::to_string(f.constraint));
          } else if (model.constraint(f.constraint).periodic()) {
            issues.push_back(where + ": constraint '" +
                             model.constraint(f.constraint).name +
                             "' is periodic; jitter applies to asynchronous streams");
          }
        }
        break;
      }
      default:
        break;
    }
  }
  return issues;
}

std::vector<std::string> validate_fault_plan(const FaultPlan& plan,
                                             const GraphModel& model,
                                             const PlatformNames& names) {
  std::vector<std::string> issues = validate_fault_plan(plan, model);
  for (std::size_t i = 0; i < plan.faults.size(); ++i) {
    const FaultSpec& f = plan.faults[i];
    if (!is_platform_fault(f.kind) || f.resource == kAnyResource) continue;
    const std::string where =
        "fault " + std::to_string(i) + " (" + std::string(fault_kind_name(f.kind)) + ")";
    const std::size_t limit = f.kind == FaultKind::kProcessorFail
                                  ? names.processors.size()
                                  : names.links.size();
    const char* what = f.kind == FaultKind::kProcessorFail ? "processor" : "link";
    if (f.resource >= limit) {
      issues.push_back(where + ": " + what + " index " + std::to_string(f.resource) +
                       " out of range (platform has " + std::to_string(limit) + ")");
    }
  }
  return issues;
}

// ---------------------------------------------------------------------------
// FaultInjector

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

double FaultInjector::unit_draw(std::size_t spec, std::uint64_t a,
                                std::uint64_t b) const {
  std::uint64_t state = plan_.seed;
  std::uint64_t h = sim::splitmix64(state);
  state ^= (static_cast<std::uint64_t>(spec) + 1) * 0x9e3779b97f4a7c15ULL;
  h ^= sim::splitmix64(state);
  state ^= a * 0xbf58476d1ce4e5b9ULL;
  h ^= sim::splitmix64(state);
  state ^= b * 0x94d049bb133111ebULL;
  h ^= sim::splitmix64(state);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool FaultInjector::slot_lost(Time t) const {
  for (std::size_t i = 0; i < plan_.faults.size(); ++i) {
    const FaultSpec& f = plan_.faults[i];
    if (f.kind != FaultKind::kSlotLoss || !in_window(f, t)) continue;
    if (f.rate >= 1.0) return true;
    if (unit_draw(i, static_cast<std::uint64_t>(t), kTagSlot) < f.rate) return true;
  }
  return false;
}

bool FaultInjector::element_down(ElementId e, Time t) const {
  for (const FaultSpec& f : plan_.faults) {
    if (f.kind != FaultKind::kElementFail) continue;
    if (f.element != kAnyElement && f.element != e) continue;
    if (t >= f.begin && t < f.begin + f.magnitude) return true;
  }
  return false;
}

bool FaultInjector::processor_down(std::size_t proc, Time t) const {
  for (const FaultSpec& f : plan_.faults) {
    if (f.kind != FaultKind::kProcessorFail || f.resource != proc) continue;
    if (t >= f.begin && t < f.begin + f.magnitude) return true;
  }
  return false;
}

bool FaultInjector::link_down(std::size_t link, Time t) const {
  for (const FaultSpec& f : plan_.faults) {
    if (f.kind != FaultKind::kLinkFail || f.resource != link) continue;
    if (t >= f.begin && t < f.begin + f.magnitude) return true;
  }
  return false;
}

Time FaultInjector::link_degrade(std::size_t link, Time t) const {
  Time factor = 1;
  for (const FaultSpec& f : plan_.faults) {
    if (f.kind != FaultKind::kLinkDegrade || f.resource != link) continue;
    if (in_window(f, t) && f.magnitude > 1) factor *= f.magnitude;
  }
  return factor;
}

bool FaultInjector::has_platform_faults() const {
  for (const FaultSpec& f : plan_.faults) {
    if (is_platform_fault(f.kind)) return true;
  }
  return false;
}

std::vector<Time> FaultInjector::platform_event_times(Time horizon) const {
  std::vector<Time> times;
  auto push = [&](Time t) {
    if (t > 0 && t < horizon) times.push_back(t);
  };
  for (const FaultSpec& f : plan_.faults) {
    switch (f.kind) {
      case FaultKind::kProcessorFail:
      case FaultKind::kLinkFail:
        push(f.begin);
        if (f.magnitude > 0 && f.begin <= horizon - f.magnitude) {
          push(f.begin + f.magnitude);
        }
        break;
      case FaultKind::kLinkDegrade:
        push(f.begin);
        if (f.end != kOpenEnd) push(f.end);
        break;
      default:
        break;
    }
  }
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end()), times.end());
  return times;
}

ExecutionFate FaultInjector::fate(ElementId e, Time start, Time duration) const {
  for (Time t = start; t < start + duration; ++t) {
    if (element_down(e, t)) return ExecutionFate::kElementDown;
  }
  for (Time t = start; t < start + duration; ++t) {
    if (slot_lost(t)) return ExecutionFate::kSlotLost;
  }
  const std::uint64_t key = (static_cast<std::uint64_t>(e) << 3) | kTagFate;
  for (std::size_t i = 0; i < plan_.faults.size(); ++i) {
    const FaultSpec& f = plan_.faults[i];
    if (f.kind != FaultKind::kDrop && f.kind != FaultKind::kCorrupt) continue;
    if (f.element != kAnyElement && f.element != e) continue;
    if (!in_window(f, start)) continue;
    if (f.rate >= 1.0 || unit_draw(i, static_cast<std::uint64_t>(start), key) < f.rate) {
      return f.kind == FaultKind::kDrop ? ExecutionFate::kDropped
                                        : ExecutionFate::kCorrupted;
    }
  }
  return ExecutionFate::kOk;
}

Time FaultInjector::drift_before(Time t) const {
  Time drift = 0;
  for (const FaultSpec& f : plan_.faults) {
    if (f.kind != FaultKind::kClockDrift || f.magnitude < 1) continue;
    const Time hi = std::min(t, f.end);
    if (hi > f.begin) drift += (hi - f.begin) / f.magnitude;
  }
  return drift;
}

Time FaultInjector::arrival_shift(std::size_t ci, std::size_t index,
                                  Time nominal) const {
  for (std::size_t i = 0; i < plan_.faults.size(); ++i) {
    const FaultSpec& f = plan_.faults[i];
    if (f.kind != FaultKind::kArrivalJitter || !in_window(f, nominal)) continue;
    if (f.constraint != kAnyConstraint && f.constraint != ci) continue;
    if (f.magnitude <= 0) return 0;
    const std::uint64_t key = (static_cast<std::uint64_t>(index) << 3) | kTagJitter;
    const double u = unit_draw(i, static_cast<std::uint64_t>(ci), key);
    return std::min<Time>(static_cast<Time>(u * static_cast<double>(f.magnitude + 1)),
                          f.magnitude);
  }
  return 0;
}

ConstraintArrivals FaultInjector::apply_arrivals(const GraphModel& model,
                                                 const ConstraintArrivals& arrivals) const {
  ConstraintArrivals out = arrivals;
  for (std::size_t ci = 0; ci < model.constraint_count() && ci < out.size(); ++ci) {
    const TimingConstraint& c = model.constraint(ci);
    if (c.periodic() || out[ci].empty()) continue;
    std::vector<Time>& stream = out[ci];
    for (std::size_t k = 0; k < stream.size(); ++k) {
      stream[k] += arrival_shift(ci, k, stream[k]);
    }
    std::sort(stream.begin(), stream.end());
    Time prev = std::numeric_limits<Time>::min();
    for (Time& t : stream) {
      if (prev != std::numeric_limits<Time>::min() && t - prev < c.period) {
        t = prev + c.period;
      }
      prev = t;
    }
  }
  return out;
}

FaultedTimeline FaultInjector::apply(std::span<const ScheduledOp> nominal,
                                     Time horizon) const {
  FaultedTimeline out;
  out.ops.reserve(nominal.size());
  out.fate.reserve(nominal.size());
  Time cursor = 0;
  for (const ScheduledOp& op : nominal) {
    Time s = op.start + drift_before(op.start);
    s = std::max(s, cursor);
    cursor = s + op.duration;
    const ExecutionFate f = fate(op.elem, s, op.duration);
    out.ops.push_back(ScheduledOp{op.elem, s, op.duration});
    out.fate.push_back(f);
    if (f == ExecutionFate::kOk) {
      out.valid.push_back(out.ops.back());
    } else if (s < horizon) {
      out.events.push_back(FaultEvent{f, op.elem, s, op.duration});
      switch (f) {
        case ExecutionFate::kSlotLost: ++out.counters.slot_lost; break;
        case ExecutionFate::kElementDown: ++out.counters.element_down; break;
        case ExecutionFate::kDropped: ++out.counters.dropped; break;
        case ExecutionFate::kCorrupted: ++out.counters.corrupted; break;
        case ExecutionFate::kOk: break;
      }
    }
  }
  out.counters.drift_slots = drift_before(horizon);
  return out;
}

std::function<sim::Slot(Time, sim::Slot)> FaultInjector::make_slot_filter(
    const CommGraph& comm, FaultCounters* counters) const {
  std::vector<Time> weights(comm.size(), 1);
  for (ElementId e = 0; e < comm.size(); ++e) {
    if (comm.has_element(e)) weights[e] = comm.weight(e);
  }
  struct State {
    sim::Slot cur = sim::kIdle;
    Time remaining = 0;
    bool valid = true;
  };
  return [inj = *this, weights = std::move(weights), counters,
          st = State{}](Time t, sim::Slot s) mutable -> sim::Slot {
    if (s == sim::kIdle || s >= weights.size()) {
      st.cur = sim::kIdle;
      st.remaining = 0;
      return s;
    }
    if (s != st.cur || st.remaining == 0) {
      st.cur = s;
      st.remaining = weights[s];
      const ExecutionFate f = inj.fate(s, t, weights[s]);
      st.valid = f == ExecutionFate::kOk;
      if (!st.valid && counters != nullptr) {
        switch (f) {
          case ExecutionFate::kSlotLost: ++counters->slot_lost; break;
          case ExecutionFate::kElementDown: ++counters->element_down; break;
          case ExecutionFate::kDropped: ++counters->dropped; break;
          case ExecutionFate::kCorrupted: ++counters->corrupted; break;
          case ExecutionFate::kOk: break;
        }
      }
    }
    --st.remaining;
    return st.valid ? s : sim::kIdle;
  };
}

// ---------------------------------------------------------------------------
// Plan parsing

namespace {

struct LineParser {
  std::vector<std::string> tokens;
  std::size_t pos = 0;
  std::string error;

  [[nodiscard]] bool done() const { return pos >= tokens.size(); }
  [[nodiscard]] const std::string& next() { return tokens[pos++]; }

  bool parse_time(const std::string& tok, Time& out) {
    try {
      std::size_t used = 0;
      const long long v = std::stoll(tok, &used);
      if (used != tok.size()) throw std::invalid_argument(tok);
      out = static_cast<Time>(v);
      return true;
    } catch (const std::exception&) {
      error = "expected an integer, got '" + tok + "'";
      return false;
    }
  }

  bool parse_rate(const std::string& tok, double& out) {
    try {
      std::size_t used = 0;
      out = std::stod(tok, &used);
      if (used != tok.size()) throw std::invalid_argument(tok);
      return true;
    } catch (const std::exception&) {
      error = "expected a number, got '" + tok + "'";
      return false;
    }
  }
};

}  // namespace

FaultPlanParse parse_fault_plan(std::string_view text, const GraphModel& model) {
  return parse_fault_plan(text, model, PlatformNames{});
}

FaultPlanParse parse_fault_plan(std::string_view text, const GraphModel& model,
                                const PlatformNames& names) {
  FaultPlanParse result;
  FaultPlan plan;
  std::istringstream lines{std::string(text)};
  std::string line;
  std::size_t line_no = 0;
  auto fail = [&](const std::string& msg) {
    result.errors.push_back("line " + std::to_string(line_no) + ": " + msg);
  };
  while (std::getline(lines, line)) {
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    LineParser lp;
    std::istringstream words{line};
    std::string word;
    while (words >> word) lp.tokens.push_back(word);
    if (lp.tokens.empty()) continue;

    const std::string directive = lp.next();
    if (directive == "seed") {
      Time v = 0;
      if (lp.done() || !lp.parse_time(lp.next(), v) || v < 0) {
        fail("seed needs a non-negative integer");
        continue;
      }
      plan.seed = static_cast<std::uint64_t>(v);
      if (!lp.done()) fail("trailing tokens after seed");
      continue;
    }

    FaultSpec spec;
    bool needs_element = false;
    bool needs_constraint = false;
    bool needs_processor = false;
    bool needs_link = false;
    if (directive == "slotloss") {
      spec.kind = FaultKind::kSlotLoss;
    } else if (directive == "fail") {
      spec.kind = FaultKind::kElementFail;
      needs_element = true;
    } else if (directive == "corrupt") {
      spec.kind = FaultKind::kCorrupt;
      needs_element = true;
    } else if (directive == "drop") {
      spec.kind = FaultKind::kDrop;
      needs_element = true;
    } else if (directive == "jitter") {
      spec.kind = FaultKind::kArrivalJitter;
      needs_constraint = true;
    } else if (directive == "drift") {
      spec.kind = FaultKind::kClockDrift;
    } else if (directive == "procfail") {
      spec.kind = FaultKind::kProcessorFail;
      needs_processor = true;
    } else if (directive == "linkfail") {
      spec.kind = FaultKind::kLinkFail;
      needs_link = true;
    } else if (directive == "linkdegrade") {
      spec.kind = FaultKind::kLinkDegrade;
      needs_link = true;
    } else {
      fail("unknown directive '" + directive + "'");
      continue;
    }

    bool ok = true;
    if (needs_element) {
      if (lp.done()) {
        fail(directive + " needs an element name (or '*')");
        continue;
      }
      const std::string name = lp.next();
      if (name != "*") {
        const auto id = model.comm().find(name);
        if (!id) {
          fail("unknown element '" + name + "'");
          ok = false;
        } else {
          spec.element = *id;
        }
      }
    }
    if (needs_processor || needs_link) {
      const char* what = needs_processor ? "processor" : "link";
      if (lp.done()) {
        fail(directive + " needs a " + std::string(what) + " name");
        continue;
      }
      const std::string name = lp.next();
      const std::vector<std::string>& pool =
          needs_processor ? names.processors : names.links;
      if (pool.empty()) {
        fail(directive + ": no platform in scope (declare one in the spec or map first)");
        ok = false;
      } else {
        const auto it = std::find(pool.begin(), pool.end(), name);
        if (it == pool.end()) {
          fail("unknown " + std::string(what) + " '" + name + "'");
          ok = false;
        } else {
          spec.resource = static_cast<std::size_t>(it - pool.begin());
        }
      }
    }
    if (needs_constraint) {
      if (lp.done()) {
        fail("jitter needs a constraint name (or '*')");
        continue;
      }
      const std::string name = lp.next();
      if (name != "*") {
        const auto idx = model.find_constraint(name);
        if (!idx) {
          fail("unknown constraint '" + name + "'");
          ok = false;
        } else {
          spec.constraint = *idx;
        }
      }
    }

    bool saw_repair = false, saw_every = false, saw_max = false, saw_at = false;
    bool saw_factor = false;
    while (ok && !lp.done()) {
      const std::string key = lp.next();
      if (lp.done()) {
        fail("'" + key + "' needs a value");
        ok = false;
        break;
      }
      const std::string value = lp.next();
      if (key == "rate") {
        ok = lp.parse_rate(value, spec.rate);
      } else if (key == "from") {
        ok = lp.parse_time(value, spec.begin);
      } else if (key == "to") {
        ok = lp.parse_time(value, spec.end);
      } else if (key == "at") {
        ok = lp.parse_time(value, spec.begin);
        saw_at = true;
      } else if (key == "repair") {
        ok = lp.parse_time(value, spec.magnitude);
        saw_repair = true;
      } else if (key == "max") {
        ok = lp.parse_time(value, spec.magnitude);
        saw_max = true;
      } else if (key == "every") {
        ok = lp.parse_time(value, spec.magnitude);
        saw_every = true;
      } else if (key == "factor") {
        ok = lp.parse_time(value, spec.magnitude);
        saw_factor = true;
      } else {
        lp.error = "unknown option '" + key + "'";
        ok = false;
      }
      if (!ok) fail(lp.error.empty() ? "bad value for '" + key + "'" : lp.error);
    }
    if (!ok) continue;
    if (spec.kind == FaultKind::kElementFail && (!saw_at || !saw_repair)) {
      fail("fail needs 'at <t>' and 'repair <slots>'");
      continue;
    }
    if (spec.kind == FaultKind::kArrivalJitter && !saw_max) {
      fail("jitter needs 'max <slots>'");
      continue;
    }
    if (spec.kind == FaultKind::kClockDrift && !saw_every) {
      fail("drift needs 'every <slots>'");
      continue;
    }
    if ((spec.kind == FaultKind::kProcessorFail || spec.kind == FaultKind::kLinkFail) &&
        (!saw_at || !saw_repair)) {
      fail(directive + " needs 'at <t>' and 'repair <slots>'");
      continue;
    }
    if (spec.kind == FaultKind::kLinkDegrade && !saw_factor) {
      fail("linkdegrade needs 'factor <divisor>'");
      continue;
    }
    // A failure window is [at, at + repair); keep `end` open so window
    // checks in element_down (which use magnitude) see the full range.
    plan.faults.push_back(spec);
  }

  for (const std::string& issue : validate_fault_plan(plan, model, names)) {
    result.errors.push_back("plan: " + issue);
  }
  if (result.errors.empty()) result.plan = std::move(plan);
  return result;
}

// ---------------------------------------------------------------------------
// Baseline runner

FaultRunResult run_executive_with_faults(const StaticSchedule& sched,
                                         const GraphModel& model,
                                         const ConstraintArrivals& arrivals,
                                         Time horizon, const FaultPlan& plan,
                                         sim::TraceSink* trace_sink) {
  if (horizon < 0) {
    throw std::invalid_argument("run_executive_with_faults: negative horizon");
  }
  if (sched.length() == 0) {
    throw std::invalid_argument("run_executive_with_faults: empty schedule");
  }
  const ArrivalValidation validation = validate_arrivals(model, arrivals);
  if (!validation.ok()) {
    throw std::invalid_argument("run_executive_with_faults: " + validation.to_string());
  }
  const std::vector<std::string> plan_issues = validate_fault_plan(plan, model);
  if (!plan_issues.empty()) {
    throw std::invalid_argument("run_executive_with_faults: " + plan_issues.front());
  }

  const FaultInjector injector(plan);
  FaultRunResult result;
  result.effective_arrivals = injector.apply_arrivals(model, arrivals);
  result.executive.horizon = horizon;

  Time max_deadline = 0;
  std::size_t max_ops = 0;
  for (const TimingConstraint& c : model.constraints()) {
    max_deadline = std::max(max_deadline, c.deadline);
    max_ops = std::max(max_ops, c.task_graph.size());
  }
  const std::size_t periods = static_cast<std::size_t>(
      (horizon + max_deadline) / std::max<Time>(sched.length(), 1) + 1 +
      static_cast<Time>(2 * max_ops + 2));
  const std::vector<ScheduledOp> nominal = unroll_ops(sched, periods);
  const FaultedTimeline faulted = injector.apply(nominal, horizon);
  if (trace_sink != nullptr) emit_timeline(faulted.valid, horizon, *trace_sink);
  result.executive.dispatches = static_cast<std::size_t>(
      static_cast<Time>(sched.ops().size()) *
      ((horizon + sched.length() - 1) / sched.length()));
  result.counters = faulted.counters;
  result.events = faulted.events;
  for (const ScheduledOp& op : faulted.ops) {
    if (op.start < horizon) ++result.total_ops;
  }

  for (std::size_t i = 0; i < model.constraint_count(); ++i) {
    const TimingConstraint& c = model.constraint(i);
    std::vector<Time> instants;
    if (c.periodic()) {
      for (Time t = 0; t + c.deadline <= horizon; t += c.period) instants.push_back(t);
    } else {
      for (Time t : result.effective_arrivals[i]) {
        if (t + c.deadline <= horizon) instants.push_back(t);
      }
    }
    for (Time t : instants) {
      InvocationRecord rec;
      rec.constraint = i;
      rec.invoked = t;
      rec.abs_deadline = t + c.deadline;
      const auto finish = earliest_embedding_finish(c.task_graph, faulted.valid, t);
      if (finish && *finish <= rec.abs_deadline) {
        rec.completed = finish;
        rec.satisfied = true;
      } else {
        rec.satisfied = false;
        result.executive.all_met = false;
      }
      result.executive.invocations.push_back(rec);
    }
  }
  return result;
}

}  // namespace rtg::core
