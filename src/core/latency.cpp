#include "core/latency.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <unordered_map>

#include "rt/task.hpp"  // lcm_checked

namespace rtg::core {

namespace {

constexpr Time kInf = std::numeric_limits<Time>::max();

// Greedy earliest-finish embedding for task graphs without repeated
// element labels. Processing ops of `tg` in topological order and
// picking, for each, the earliest execution of its element that starts
// after all predecessors finish is optimal: each choice minimizes that
// op's finish, finishes propagate monotonically to successors, and no
// two task-graph ops compete for the same execution.
std::optional<EmbeddingWitness> greedy_embedding(const TaskGraph& tg,
                                                 std::span<const ScheduledOp> ops,
                                                 Time window_begin,
                                                 const std::vector<bool>& excluded) {
  const auto topo = tg.topological_ops();
  std::vector<Time> finish(tg.size(), 0);
  EmbeddingWitness witness;
  witness.assignment.assign(tg.size(), 0);

  Time makespan = window_begin;
  for (OpId v : topo) {
    Time ready = window_begin;
    for (OpId u : tg.skeleton().predecessors(v)) {
      ready = std::max(ready, finish[u]);
    }
    const ElementId want = tg.label(v);
    // Find the first available op of `want` with start >= ready.
    auto it = std::lower_bound(ops.begin(), ops.end(), ready,
                               [](const ScheduledOp& op, Time t) { return op.start < t; });
    bool found = false;
    for (; it != ops.end(); ++it) {
      const std::size_t idx = static_cast<std::size_t>(it - ops.begin());
      if (it->elem == want && (excluded.empty() || !excluded[idx])) {
        finish[v] = it->finish();
        makespan = std::max(makespan, finish[v]);
        witness.assignment[v] = idx;
        found = true;
        break;
      }
    }
    if (!found) return std::nullopt;
  }
  witness.finish = makespan;
  return witness;
}

// Branch-and-bound embedding for task graphs where an element labels
// several ops (executions must be assigned injectively). Worst case
// exponential — consistent with the general problem's hardness — but
// effective for the small task graphs of real constraints.
struct BnbSearch {
  const TaskGraph& tg;
  std::span<const ScheduledOp> ops;
  Time window_begin;
  const std::vector<bool>& excluded;
  std::vector<OpId> topo;
  std::vector<Time> finish;        // per task-graph op
  std::vector<std::size_t> chosen; // per task-graph op, current path
  std::vector<bool> used;          // per schedule op
  Time best = kInf;
  std::vector<std::size_t> best_assignment;

  void rec(std::size_t k, Time makespan) {
    if (makespan >= best) return;
    if (k == topo.size()) {
      best = makespan;
      best_assignment = chosen;
      return;
    }
    const OpId v = topo[k];
    Time ready = window_begin;
    for (OpId u : tg.skeleton().predecessors(v)) {
      ready = std::max(ready, finish[u]);
    }
    const ElementId want = tg.label(v);
    auto it = std::lower_bound(ops.begin(), ops.end(), ready,
                               [](const ScheduledOp& op, Time t) { return op.start < t; });
    for (; it != ops.end(); ++it) {
      if (it->elem != want) continue;
      if (it->start >= best) break;  // any later choice is no better
      const std::size_t idx = static_cast<std::size_t>(it - ops.begin());
      if (used[idx]) continue;
      if (!excluded.empty() && excluded[idx]) continue;
      used[idx] = true;
      finish[v] = it->finish();
      chosen[v] = idx;
      rec(k + 1, std::max(makespan, finish[v]));
      used[idx] = false;
    }
  }
};

std::optional<EmbeddingWitness> bnb_embedding(const TaskGraph& tg,
                                              std::span<const ScheduledOp> ops,
                                              Time window_begin,
                                              const std::vector<bool>& excluded) {
  BnbSearch search{tg,
                   ops,
                   window_begin,
                   excluded,
                   tg.topological_ops(),
                   std::vector<Time>(tg.size(), 0),
                   std::vector<std::size_t>(tg.size(), 0),
                   std::vector<bool>(ops.size(), false),
                   kInf,
                   {}};
  search.rec(0, window_begin);
  if (search.best == kInf) return std::nullopt;
  return EmbeddingWitness{search.best, std::move(search.best_assignment)};
}

}  // namespace

std::optional<EmbeddingWitness> find_earliest_embedding(const TaskGraph& tg,
                                                        std::span<const ScheduledOp> ops,
                                                        Time window_begin,
                                                        const std::vector<bool>& used) {
  if (tg.empty()) return EmbeddingWitness{window_begin, {}};
  if (tg.has_repeated_labels()) {
    return bnb_embedding(tg, ops, window_begin, used);
  }
  return greedy_embedding(tg, ops, window_begin, used);
}

std::optional<Time> earliest_embedding_finish(const TaskGraph& tg,
                                              std::span<const ScheduledOp> ops,
                                              Time window_begin) {
  const auto witness = find_earliest_embedding(tg, ops, window_begin);
  if (!witness) return std::nullopt;
  return witness->finish;
}

bool window_contains_execution(const TaskGraph& tg, std::span<const ScheduledOp> ops,
                               Time begin, Time end) {
  const auto finish = earliest_embedding_finish(tg, ops, begin);
  return finish.has_value() && *finish <= end;
}

std::vector<ScheduledOp> unroll_ops(const StaticSchedule& sched, std::size_t periods) {
  const std::vector<ScheduledOp> base = sched.ops();
  const Time period = sched.length();
  std::vector<ScheduledOp> result;
  result.reserve(base.size() * periods);
  for (std::size_t r = 0; r < periods; ++r) {
    const Time shift = static_cast<Time>(r) * period;
    for (const ScheduledOp& op : base) {
      result.push_back(ScheduledOp{op.elem, op.start + shift, op.duration});
    }
  }
  return result;
}

std::vector<ScheduledOp> ops_from_trace(const sim::ExecutionTrace& trace,
                                        const CommGraph& comm) {
  std::vector<ScheduledOp> ops;
  std::size_t i = 0;
  const std::size_t n = trace.size();
  while (i < n) {
    const sim::Slot s = trace[i];
    if (s == sim::kIdle) {
      ++i;
      continue;
    }
    if (!comm.has_element(s)) {
      throw std::invalid_argument("ops_from_trace: unknown element id " +
                                  std::to_string(s));
    }
    std::size_t run = 0;
    while (i + run < n && trace[i + run] == s) ++run;
    const Time w = comm.weight(s);
    const std::size_t complete = run / static_cast<std::size_t>(w);
    for (std::size_t k = 0; k < complete; ++k) {
      ops.push_back(ScheduledOp{s, static_cast<Time>(i) + static_cast<Time>(k) * w, w});
    }
    i += run;
  }
  return ops;
}

std::optional<Time> finite_trace_latency(std::span<const ScheduledOp> ops, Time horizon,
                                         const TaskGraph& tg) {
  if (tg.empty()) return 0;
  if (horizon <= 0) return std::nullopt;

  // completion(t) at the left endpoints of its constancy regions.
  std::vector<Time> candidates{0};
  for (const ScheduledOp& op : ops) {
    if (op.start + 1 <= horizon) candidates.push_back(op.start + 1);
  }
  struct Point {
    Time t;
    Time completion;  // kInf when no embedding at or after t
  };
  std::vector<Point> points;
  points.reserve(candidates.size());
  for (Time t : candidates) {
    const auto finish = earliest_embedding_finish(tg, ops, t);
    points.push_back(Point{t, finish && *finish <= horizon ? *finish : kInf});
  }

  // Smallest k such that for every t with t + k <= horizon:
  // completion(t) <= t + k. Checked via the candidate points: for a
  // point (t, c), the requirement applies to all window starts t' in
  // [t, next_t) with t' + k <= horizon and demands c <= t' + k; the
  // binding case is t' = t. Points with c == kInf forbid any window of
  // length k starting at t, i.e. require t + k > horizon.
  auto feasible = [&](Time k) {
    for (const Point& point : points) {
      if (point.t + k > horizon) continue;  // window does not fit
      if (point.completion == kInf || point.completion - point.t > k) return false;
    }
    return true;
  };
  // feasible(k) is monotone in k only while windows still fit; it is in
  // fact monotone overall (larger k both relaxes the bound and drops
  // trailing windows), so binary search applies.
  Time lo = 1, hi = horizon;
  if (!feasible(hi)) return std::nullopt;
  while (lo < hi) {
    const Time mid = lo + (hi - lo) / 2;
    if (feasible(mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

namespace {

// Number of unrolled periods sufficient for any embedding query with a
// window start inside the first period: in the greedy construction each
// task-graph op waits at most two periods past its ready time (one to
// reach the next occurrence of its element, one more when competing
// occurrences are exhausted), so 2|C| + 2 periods always suffice.
std::size_t unroll_budget(const TaskGraph& tg) { return 2 * tg.size() + 2; }

// True iff every element of tg occurs at least once in the schedule.
bool covers_elements(const StaticSchedule& sched, const TaskGraph& tg) {
  std::vector<bool> present;
  for (const ScheduledOp& op : sched.ops()) {
    if (op.elem >= present.size()) present.resize(op.elem + 1, false);
    present[op.elem] = true;
  }
  for (ElementId e : tg.labels()) {
    if (e >= present.size() || !present[e]) return false;
  }
  return true;
}

}  // namespace

std::optional<Time> schedule_latency(const StaticSchedule& sched, const TaskGraph& tg) {
  if (tg.empty()) return 0;
  if (sched.length() == 0 || !covers_elements(sched, tg)) return std::nullopt;

  const Time period = sched.length();
  const std::vector<ScheduledOp> unrolled = unroll_ops(sched, unroll_budget(tg));

  // completion(t) = earliest finish of an embedding starting at or
  // after t, is a non-decreasing step function of t that only jumps at
  // t = op.start + 1 (when the op at `start` leaves the window). The
  // maximum of completion(t) - t is therefore attained at t = 0 or at
  // one of those jump points, and by cyclicity only t in [0, period)
  // matters.
  std::vector<Time> candidates{0};
  for (const ScheduledOp& op : sched.ops()) {
    if (op.start + 1 < period) candidates.push_back(op.start + 1);
  }

  Time latency = 0;
  for (Time t : candidates) {
    const auto finish = earliest_embedding_finish(tg, unrolled, t);
    if (!finish) return std::nullopt;  // cannot happen if covers_elements
    latency = std::max(latency, *finish - t);
  }
  return latency;
}

bool periodic_satisfied(const StaticSchedule& sched, const TaskGraph& tg, Time p,
                        Time d) {
  if (p < 1 || d < 1) {
    throw std::invalid_argument("periodic_satisfied: p and d must be >= 1");
  }
  if (tg.empty()) return true;
  if (sched.length() == 0 || !covers_elements(sched, tg)) return false;

  const Time period = sched.length();
  const Time cycle = rt::lcm_checked(period, p);
  // Invocations at t = 0, p, ..., cycle - p repeat identically afterwards.
  const std::size_t periods_needed =
      static_cast<std::size_t>(cycle / period) + unroll_budget(tg);
  const std::vector<ScheduledOp> unrolled = unroll_ops(sched, periods_needed);
  for (Time t = 0; t < cycle; t += p) {
    const auto finish = earliest_embedding_finish(tg, unrolled, t);
    if (!finish || *finish > t + d) return false;
  }
  return true;
}

FeasibilityReport verify_schedule(const StaticSchedule& sched, const GraphModel& model) {
  FeasibilityReport report;
  report.feasible = true;
  for (std::size_t i = 0; i < model.constraint_count(); ++i) {
    const TimingConstraint& c = model.constraint(i);
    ConstraintVerdict verdict;
    verdict.constraint = i;
    if (c.periodic()) {
      verdict.satisfied = periodic_satisfied(sched, c.task_graph, c.period, c.deadline);
    } else {
      verdict.latency = schedule_latency(sched, c.task_graph);
      verdict.satisfied = verdict.latency.has_value() && *verdict.latency <= c.deadline;
    }
    report.feasible = report.feasible && verdict.satisfied;
    report.verdicts.push_back(verdict);
  }
  return report;
}

}  // namespace rtg::core
