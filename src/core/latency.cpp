#include "core/latency.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <numeric>
#include <stdexcept>
#include <unordered_map>

#include "rt/task.hpp"  // lcm_checked
#include "util/thread_pool.hpp"

namespace rtg::core {

HotPathConfig& hotpath_config() {
  static HotPathConfig config;
  return config;
}

namespace {

constexpr Time kInf = std::numeric_limits<Time>::max();

// Monotone-hint walks longer than this bail out to a binary-search
// re-seed: a sweep in ascending window order rarely advances a cursor
// more than a couple of occurrences per query, so a long walk means the
// query order is degenerate (e.g. a shuffled parallel part) and the
// O(log) probe is cheaper. The re-seed lands on the identical pick.
constexpr std::size_t kMaxHintWalk = 32;

// Greedy earliest-finish embedding for task graphs without repeated
// element labels. Processing ops of `tg` in topological order and
// picking, for each, the earliest execution of its element that starts
// after all predecessors finish is optimal: each choice minimizes that
// op's finish, finishes propagate monotonically to successors, and no
// two task-graph ops compete for the same execution.
std::optional<EmbeddingWitness> greedy_embedding(const TaskGraph& tg,
                                                 std::span<const ScheduledOp> ops,
                                                 Time window_begin,
                                                 const std::vector<bool>& excluded) {
  const auto topo = tg.topological_ops();
  std::vector<Time> finish(tg.size(), 0);
  EmbeddingWitness witness;
  witness.assignment.assign(tg.size(), 0);

  Time makespan = window_begin;
  for (OpId v : topo) {
    Time ready = window_begin;
    for (OpId u : tg.skeleton().predecessors(v)) {
      ready = std::max(ready, finish[u]);
    }
    const ElementId want = tg.label(v);
    // Find the first available op of `want` with start >= ready.
    auto it = std::lower_bound(ops.begin(), ops.end(), ready,
                               [](const ScheduledOp& op, Time t) { return op.start < t; });
    bool found = false;
    for (; it != ops.end(); ++it) {
      const std::size_t idx = static_cast<std::size_t>(it - ops.begin());
      if (it->elem == want && (excluded.empty() || !excluded[idx])) {
        finish[v] = it->finish();
        makespan = std::max(makespan, finish[v]);
        witness.assignment[v] = idx;
        found = true;
        break;
      }
    }
    if (!found) return std::nullopt;
  }
  witness.finish = makespan;
  return witness;
}

// Branch-and-bound embedding for task graphs where an element labels
// several ops (executions must be assigned injectively). Worst case
// exponential — consistent with the general problem's hardness — but
// effective for the small task graphs of real constraints.
struct BnbSearch {
  const TaskGraph& tg;
  std::span<const ScheduledOp> ops;
  Time window_begin;
  const std::vector<bool>& excluded;
  std::vector<OpId> topo;
  std::vector<Time> finish;        // per task-graph op
  std::vector<std::size_t> chosen; // per task-graph op, current path
  std::vector<bool> used;          // per schedule op
  Time best = kInf;
  std::vector<std::size_t> best_assignment;

  void rec(std::size_t k, Time makespan) {
    if (makespan >= best) return;
    if (k == topo.size()) {
      best = makespan;
      best_assignment = chosen;
      return;
    }
    const OpId v = topo[k];
    Time ready = window_begin;
    for (OpId u : tg.skeleton().predecessors(v)) {
      ready = std::max(ready, finish[u]);
    }
    const ElementId want = tg.label(v);
    auto it = std::lower_bound(ops.begin(), ops.end(), ready,
                               [](const ScheduledOp& op, Time t) { return op.start < t; });
    for (; it != ops.end(); ++it) {
      if (it->elem != want) continue;
      if (it->start >= best) break;  // any later choice is no better
      const std::size_t idx = static_cast<std::size_t>(it - ops.begin());
      if (used[idx]) continue;
      if (!excluded.empty() && excluded[idx]) continue;
      used[idx] = true;
      finish[v] = it->finish();
      chosen[v] = idx;
      rec(k + 1, std::max(makespan, finish[v]));
      used[idx] = false;
    }
  }
};

std::optional<EmbeddingWitness> bnb_embedding(const TaskGraph& tg,
                                              std::span<const ScheduledOp> ops,
                                              Time window_begin,
                                              const std::vector<bool>& excluded) {
  BnbSearch search{tg,
                   ops,
                   window_begin,
                   excluded,
                   tg.topological_ops(),
                   std::vector<Time>(tg.size(), 0),
                   std::vector<std::size_t>(tg.size(), 0),
                   std::vector<bool>(ops.size(), false),
                   kInf,
                   {}};
  search.rec(0, window_begin);
  if (search.best == kInf) return std::nullopt;
  return EmbeddingWitness{search.best, std::move(search.best_assignment)};
}

}  // namespace

std::optional<EmbeddingWitness> find_earliest_embedding(const TaskGraph& tg,
                                                        std::span<const ScheduledOp> ops,
                                                        Time window_begin,
                                                        const std::vector<bool>& used) {
  if (tg.empty()) return EmbeddingWitness{window_begin, {}};
  if (tg.has_repeated_labels()) {
    return bnb_embedding(tg, ops, window_begin, used);
  }
  return greedy_embedding(tg, ops, window_begin, used);
}

std::optional<Time> earliest_embedding_finish(const TaskGraph& tg,
                                              std::span<const ScheduledOp> ops,
                                              Time window_begin) {
  const auto witness = find_earliest_embedding(tg, ops, window_begin);
  if (!witness) return std::nullopt;
  return witness->finish;
}

bool window_contains_execution(const TaskGraph& tg, std::span<const ScheduledOp> ops,
                               Time begin, Time end) {
  const auto finish = earliest_embedding_finish(tg, ops, begin);
  return finish.has_value() && *finish <= end;
}

std::vector<ScheduledOp> unroll_ops(const StaticSchedule& sched, std::size_t periods) {
  const std::vector<ScheduledOp> base = sched.ops();
  const Time period = sched.length();
  std::vector<ScheduledOp> result;
  result.reserve(base.size() * periods);
  for (std::size_t r = 0; r < periods; ++r) {
    const Time shift = static_cast<Time>(r) * period;
    for (const ScheduledOp& op : base) {
      result.push_back(ScheduledOp{op.elem, op.start + shift, op.duration});
    }
  }
  return result;
}

UnrollIndex::UnrollIndex(const StaticSchedule& sched, std::size_t periods)
    : period_(sched.length()), periods_(periods), bitset_(hotpath_config().bitset) {
  // One pass over the entries builds the SoA columns directly — same
  // starts as sched.ops(), without materializing a ScheduledOp vector.
  const std::vector<ScheduleEntry>& entries = sched.entries();
  std::size_t n = 0;
  ElementId max_elem = 0;
  for (const ScheduleEntry& entry : entries) {
    if (entry.elem == kIdleEntry) continue;
    ++n;
    max_elem = std::max(max_elem, entry.elem);
  }
  starts_.reserve(n);
  durations_.reserve(n);
  elems_.reserve(n);
  Time t = 0;
  for (const ScheduleEntry& entry : entries) {
    if (entry.elem != kIdleEntry) {
      elems_.push_back(entry.elem);
      starts_.push_back(t);
      durations_.push_back(entry.duration);
    }
    t += entry.duration;
  }
  elem_count_ = n == 0 ? 0 : static_cast<std::size_t>(max_elem) + 1;

  // Counting sort into per-element occurrence rows; base ops are in
  // start order, so each row comes out in start order too, and the
  // parallel occ_starts_ column gives the searches contiguous Time data.
  occ_offsets_.assign(elem_count_ + 1, 0);
  for (const ElementId e : elems_) ++occ_offsets_[static_cast<std::size_t>(e) + 1];
  for (std::size_t e = 1; e <= elem_count_; ++e) occ_offsets_[e] += occ_offsets_[e - 1];
  occ_idx_.resize(n);
  occ_starts_.resize(n);
  occ_rank_.resize(n);
  words_per_row_ = bitset_ ? (n + 63) / 64 : 0;
  if (bitset_) bits_.assign(elem_count_ * words_per_row_, 0);
  std::vector<std::size_t> cursor(occ_offsets_.begin(),
                                  occ_offsets_.begin() +
                                      static_cast<std::ptrdiff_t>(elem_count_));
  for (std::size_t i = 0; i < n; ++i) {
    const auto e = static_cast<std::size_t>(elems_[i]);
    const std::size_t pos = cursor[e]++;
    occ_idx_[pos] = i;
    occ_starts_[pos] = starts_[i];
    occ_rank_[i] = pos - occ_offsets_[e];
    if (bitset_) bits_[e * words_per_row_ + (i >> 6)] |= 1ull << (i & 63);
  }
  if (!hotpath_config().soa) {
    aos_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      aos_.push_back(ScheduledOp{elems_[i], starts_[i], durations_[i]});
    }
  }
}

std::size_t UnrollIndex::occurrence_count(ElementId e) const {
  const auto bucket = static_cast<std::size_t>(e);
  return bucket < elem_count_ ? occ_offsets_[bucket + 1] - occ_offsets_[bucket] : 0;
}

std::span<const std::size_t> UnrollIndex::occurrences(ElementId e) const {
  const auto bucket = static_cast<std::size_t>(e);
  if (bucket >= elem_count_) return {};
  return {occ_idx_.data() + occ_offsets_[bucket],
          occ_offsets_[bucket + 1] - occ_offsets_[bucket]};
}

std::size_t UnrollIndex::search_row(std::size_t row_begin, std::size_t row_end,
                                    Time rel) const {
  if (aos_.empty()) {
    // SoA: binary search over the row's contiguous start column.
    const Time* first = occ_starts_.data() + row_begin;
    const Time* last = occ_starts_.data() + row_end;
    return static_cast<std::size_t>(std::lower_bound(first, last, rel) -
                                    occ_starts_.data());
  }
  // Ablation (HotPathConfig::soa off): the legacy indirect comparator,
  // one dependent AoS load per probe.
  const std::size_t* first = occ_idx_.data() + row_begin;
  const std::size_t* last = occ_idx_.data() + row_end;
  return static_cast<std::size_t>(
      std::lower_bound(first, last, rel,
                       [this](std::size_t base_idx, Time r) {
                         return aos_[base_idx].start < r;
                       }) -
      occ_idx_.data());
}

std::size_t UnrollIndex::first_at_or_after(ElementId e, Time t, std::size_t limit,
                                           std::size_t* row_skips) const {
  const auto bucket = static_cast<std::size_t>(e);
  if (elems_.empty() || period_ <= 0 || bucket >= elem_count_) return npos;
  const std::size_t row_begin = occ_offsets_[bucket];
  const std::size_t row_end = occ_offsets_[bucket + 1];
  if (row_begin == row_end) return npos;
  if (t < 0) t = 0;
  const std::size_t opp = elems_.size();
  // Cycle k covers starts in [k * period, (k+1) * period); every
  // occurrence in an earlier cycle starts before t, so the first match
  // is in cycle t / period (or the following one).
  std::size_t cycle = static_cast<std::size_t>(t / period_);
  const Time r = t - static_cast<Time>(cycle) * period_;
  std::size_t pos;
  if (bitset_) {
    // Occurrence-row gates: a window at or before the row's first start
    // takes the row head, one past its last start wraps to the next
    // cycle's head — both without a binary search.
    if (r <= occ_starts_[row_begin]) {
      pos = row_begin;
      if (row_skips != nullptr) ++*row_skips;
    } else if (r > occ_starts_[row_end - 1]) {
      ++cycle;
      pos = row_begin;
      if (row_skips != nullptr) ++*row_skips;
    } else {
      pos = search_row(row_begin, row_end, r);
    }
  } else {
    pos = search_row(row_begin, row_end, r);
    if (pos == row_end) {
      ++cycle;
      pos = row_begin;
    }
  }
  const std::size_t idx = cycle * opp + occ_idx_[pos];
  return idx < std::min(limit, size()) ? idx : npos;
}

std::size_t UnrollIndex::next_occurrence(std::size_t idx, std::size_t limit) const {
  const std::size_t opp = elems_.size();
  const std::size_t base_idx = idx % opp;
  std::size_t cycle = idx / opp;
  const auto bucket = static_cast<std::size_t>(base_elem(base_idx));
  const std::size_t row_begin = occ_offsets_[bucket];
  const std::size_t row_end = occ_offsets_[bucket + 1];
  std::size_t next_base = npos;
  if (bitset_) {
    // Same-word fast path: base positions are start-ordered, so the
    // next set bit of the element's row after base_idx — if it is in
    // the same word — is the next occurrence, one mask + countr_zero.
    const std::size_t off = base_idx & 63;
    if (off != 63) {
      const std::uint64_t rest =
          bits_[bucket * words_per_row_ + (base_idx >> 6)] >> (off + 1);
      if (rest != 0) {
        next_base = base_idx + 1 + static_cast<std::size_t>(std::countr_zero(rest));
      }
    }
  }
  if (next_base == npos) {
    const std::size_t rank = occ_rank_[base_idx];
    if (row_begin + rank + 1 < row_end) {
      next_base = occ_idx_[row_begin + rank + 1];
    } else {
      ++cycle;
      next_base = occ_idx_[row_begin];
    }
  }
  const std::size_t next = cycle * opp + next_base;
  return next < std::min(limit, size()) ? next : npos;
}

bool UnrollIndex::occupied_in(ElementId e, Time a, Time b) const {
  const auto bucket = static_cast<std::size_t>(e);
  if (elems_.empty() || period_ <= 0 || bucket >= elem_count_) return false;
  if (occ_offsets_[bucket] == occ_offsets_[bucket + 1]) return false;
  if (b <= 0 || a >= b) return false;
  if (a < 0) a = 0;
  // A window of a full period contains every residue once; a non-empty
  // row therefore always hits.
  if (b - a >= period_) return true;
  const Time ra = a % period_;
  const Time rb = ra + (b - a);
  if (rb <= period_) return row_has_start_in(bucket, ra, rb);
  return row_has_start_in(bucket, ra, period_) ||
         row_has_start_in(bucket, 0, rb - period_);
}

bool UnrollIndex::row_has_start_in(std::size_t bucket, Time x, Time y) const {
  if (!bitset_) {
    // Ablation fallback: search the row's start column directly.
    const std::size_t row_begin = occ_offsets_[bucket];
    const std::size_t row_end = occ_offsets_[bucket + 1];
    const std::size_t pos = search_row(row_begin, row_end, x);
    return pos != row_end && occ_starts_[pos] < y;
  }
  // Base positions with start in [x, y) come from the *shared* global
  // start column (one search serves every element); the element's
  // answer is then a mask test of its row words over that range.
  const std::size_t p0 = static_cast<std::size_t>(
      std::lower_bound(starts_.begin(), starts_.end(), x) - starts_.begin());
  const std::size_t p1 = static_cast<std::size_t>(
      std::lower_bound(starts_.begin(), starts_.end(), y) - starts_.begin());
  if (p0 >= p1) return false;
  const std::uint64_t* row = bits_.data() + bucket * words_per_row_;
  const std::size_t w0 = p0 >> 6;
  const std::size_t w1 = (p1 - 1) >> 6;
  const std::uint64_t lo = ~0ull << (p0 & 63);
  const std::size_t hi_off = p1 - (w1 << 6);  // bits of w1 below p1, in [1, 64]
  const std::uint64_t hi = hi_off == 64 ? ~0ull : (1ull << hi_off) - 1;
  if (w0 == w1) return (row[w0] & lo & hi) != 0;
  if ((row[w0] & lo) != 0) return true;
  for (std::size_t w = w0 + 1; w < w1; ++w) {
    if (row[w] != 0) return true;
  }
  return (row[w1] & hi) != 0;
}

EmbeddingKernel::EmbeddingKernel(const TaskGraph& tg, const UnrollIndex& index,
                                 std::size_t periods_limit, util::Arena* arena)
    : tg_(&tg),
      index_(&index),
      limit_(periods_limit == 0
                 ? index.size()
                 : std::min(index.size(), periods_limit * index.ops_per_period())),
      repeated_(tg.has_repeated_labels()),
      topo_(tg.topological_ops()) {
  const std::size_t n = tg.size();
  if (hotpath_config().arena) {
    arena_ = arena != nullptr ? arena : &own_arena_;
    finish_ = arena_->allocate<Time>(n);
    chosen_ = arena_->allocate<std::size_t>(n);
    best_assignment_ = arena_->allocate<std::size_t>(n);
    hint_ = arena_->allocate<SeekHint>(n);
  } else {
    finish_vec_.resize(n);
    chosen_vec_.resize(n);
    best_vec_.resize(n);
    hint_vec_.resize(n);
    finish_ = finish_vec_.data();
    chosen_ = chosen_vec_.data();
    best_assignment_ = best_vec_.data();
    hint_ = hint_vec_.data();
  }
  for (std::size_t i = 0; i < n; ++i) {
    finish_[i] = 0;
    chosen_[i] = 0;
    hint_[i] = SeekHint{};
  }
}

// Fills a hint from a fresh index probe; used on the first query of a
// sweep, after a backwards window jump, whenever the previous pick
// exhausted the prefix, and when a linear walk exceeds its step bound.
// The division to decompose the flat index is paid only here, off the
// steady-state path.
void EmbeddingKernel::seed_hint(SeekHint& h, ElementId e, Time ready) {
  ++counters_.index_seeks;
  h.idx = index_->first_at_or_after(e, ready, limit_, &counters_.bitset_skips);
  if (h.idx == UnrollIndex::npos) return;
  const std::size_t base_idx = h.idx % index_->ops_per_period();
  h.cycle = h.idx / index_->ops_per_period();
  h.rank = index_->occurrence_rank(base_idx);
  h.start = index_->base_start(base_idx) + static_cast<Time>(h.cycle) * index_->period();
  h.finish = h.start + index_->base_duration(base_idx);
}

// Indexed greedy / branch-and-bound. Candidate executions of an element
// are enumerated in the same (start) order as the flat scan visits
// them, so picks and pruning decisions — and hence finishes and witness
// assignments — are bit-identical to the reference kernels above.
bool EmbeddingKernel::solve(Time window_begin, const std::vector<bool>& excluded) {
  ++counters_.queries;
  if (warm_) {
    ++counters_.arena_reuses;
  } else {
    warm_ = true;
  }
  if (tg_->empty()) {
    result_finish_ = window_begin;
    return true;
  }
  if (repeated_) {
    if (used_words_ == nullptr) {
      // Word-granular availability bitset; backtracking restores every
      // bit, so this zero-fill happens once per kernel, not per query.
      used_words_len_ = limit_ / 64 + 1;
      if (arena_ != nullptr) {
        used_words_ = arena_->allocate_zeroed<std::uint64_t>(used_words_len_);
      } else {
        used_vec_.assign(used_words_len_, 0);
        used_words_ = used_vec_.data();
      }
    }
    best_ = kInf;
    bnb_rec(0, window_begin, window_begin, excluded);
    if (best_ == kInf) return false;
    result_finish_ = best_;
    return true;
  }
  // Monotone seek hints: the verify engines issue a group's queries in
  // ascending window order, and the greedy pick for each op is monotone
  // in the window begin (ready times only grow), so the previous pick
  // is a sound lower bound — advance linearly from it instead of binary
  // searching. Amortized O(1) seeks per query over a sweep. Hints are
  // bypassed (and left untouched) under exclusion masks or when the
  // window moves backwards; the picks are identical either way.
  const bool plain = excluded.empty();
  const bool monotone = plain && (!hints_primed_ || window_begin >= last_begin_);
  if (plain) {
    hints_primed_ = true;
    last_begin_ = window_begin;
  }
  const std::size_t opp = index_->ops_per_period();
  const Time index_period = index_->period();
  Time makespan = window_begin;
  for (OpId v : topo_) {
    Time ready = window_begin;
    for (OpId u : tg_->skeleton().predecessors(v)) {
      ready = std::max(ready, finish_[u]);
    }
    if (plain) {
      SeekHint& h = hint_[v];
      if (!monotone || h.idx == UnrollIndex::npos) {
        seed_hint(h, tg_->label(v), ready);
      } else if (h.start < ready) {
        // Steady-state advance: walk the element's occurrence row with
        // (cycle, rank) arithmetic only. Visits executions in exactly
        // next_occurrence order, so the pick is unchanged. Bounded —
        // after kMaxHintWalk steps the walk re-seeds via binary search,
        // keeping degenerate (non-ascending-dense) sweeps O(log).
        const std::span<const std::size_t> row =
            index_->occurrences(tg_->label(v));
        std::size_t steps = 0;
        do {
          if (++steps > kMaxHintWalk) {
            seed_hint(h, tg_->label(v), ready);
            break;
          }
          ++counters_.index_seeks;
          if (++h.rank == row.size()) {
            h.rank = 0;
            ++h.cycle;
          }
          const std::size_t base_idx = row[h.rank];
          h.idx = h.cycle * opp + base_idx;
          if (h.idx >= limit_) {
            h.idx = UnrollIndex::npos;
            break;
          }
          h.start =
              index_->base_start(base_idx) + static_cast<Time>(h.cycle) * index_period;
          h.finish = h.start + index_->base_duration(base_idx);
        } while (h.start < ready);
      }
      if (h.idx == UnrollIndex::npos) return false;
      finish_[v] = h.finish;
      chosen_[v] = h.idx;
    } else {
      std::size_t idx = index_->first_at_or_after(tg_->label(v), ready, limit_,
                                                  &counters_.bitset_skips);
      ++counters_.index_seeks;
      while (idx != UnrollIndex::npos && excluded[idx]) {
        idx = index_->next_occurrence(idx, limit_);
        ++counters_.index_seeks;
      }
      if (idx == UnrollIndex::npos) return false;
      finish_[v] = index_->op(idx).finish();
      chosen_[v] = idx;
    }
    makespan = std::max(makespan, finish_[v]);
  }
  result_finish_ = makespan;
  return true;
}

void EmbeddingKernel::bnb_rec(std::size_t k, Time makespan, Time window_begin,
                              const std::vector<bool>& excluded) {
  if (makespan >= best_) return;
  if (k == topo_.size()) {
    best_ = makespan;
    std::copy(chosen_, chosen_ + topo_.size(), best_assignment_);
    return;
  }
  const OpId v = topo_[k];
  Time ready = window_begin;
  for (OpId u : tg_->skeleton().predecessors(v)) {
    ready = std::max(ready, finish_[u]);
  }
  std::size_t idx = index_->first_at_or_after(tg_->label(v), ready, limit_,
                                              &counters_.bitset_skips);
  ++counters_.index_seeks;
  while (idx != UnrollIndex::npos) {
    const ScheduledOp op = index_->op(idx);
    if (op.start >= best_) break;  // any later choice is no better
    if (!used_test(idx) && (excluded.empty() || !excluded[idx])) {
      used_flip(idx);
      finish_[v] = op.finish();
      chosen_[v] = idx;
      bnb_rec(k + 1, std::max(makespan, finish_[v]), window_begin, excluded);
      used_flip(idx);
    }
    idx = index_->next_occurrence(idx, limit_);
    ++counters_.index_seeks;
  }
}

std::optional<Time> EmbeddingKernel::finish_at(Time window_begin) {
  static const std::vector<bool> kNoExclusions;
  if (!solve(window_begin, kNoExclusions)) return std::nullopt;
  return result_finish_;
}

std::optional<EmbeddingWitness> EmbeddingKernel::witness_at(
    Time window_begin, const std::vector<bool>& excluded) {
  if (!solve(window_begin, excluded)) return std::nullopt;
  EmbeddingWitness witness;
  witness.finish = result_finish_;
  if (!tg_->empty()) {
    const std::size_t* src = repeated_ ? best_assignment_ : chosen_;
    witness.assignment.assign(src, src + tg_->size());
  }
  return witness;
}

std::vector<ScheduledOp> ops_from_trace(const sim::ExecutionTrace& trace,
                                        const CommGraph& comm) {
  std::vector<ScheduledOp> ops;
  std::size_t i = 0;
  const std::size_t n = trace.size();
  while (i < n) {
    const sim::Slot s = trace[i];
    if (s == sim::kIdle) {
      ++i;
      continue;
    }
    if (!comm.has_element(s)) {
      throw std::invalid_argument("ops_from_trace: unknown element id " +
                                  std::to_string(s));
    }
    std::size_t run = 0;
    while (i + run < n && trace[i + run] == s) ++run;
    const Time w = comm.weight(s);
    const std::size_t complete = run / static_cast<std::size_t>(w);
    for (std::size_t k = 0; k < complete; ++k) {
      ops.push_back(ScheduledOp{s, static_cast<Time>(i) + static_cast<Time>(k) * w, w});
    }
    i += run;
  }
  return ops;
}

std::optional<Time> finite_trace_latency(std::span<const ScheduledOp> ops, Time horizon,
                                         const TaskGraph& tg) {
  if (tg.empty()) return 0;
  if (horizon <= 0) return std::nullopt;

  // completion(t) at the left endpoints of its constancy regions.
  std::vector<Time> candidates{0};
  for (const ScheduledOp& op : ops) {
    if (op.start + 1 <= horizon) candidates.push_back(op.start + 1);
  }
  struct Point {
    Time t;
    Time completion;  // kInf when no embedding at or after t
  };
  std::vector<Point> points;
  points.reserve(candidates.size());
  for (Time t : candidates) {
    const auto finish = earliest_embedding_finish(tg, ops, t);
    points.push_back(Point{t, finish && *finish <= horizon ? *finish : kInf});
  }

  // Smallest k such that for every t with t + k <= horizon:
  // completion(t) <= t + k. Checked via the candidate points: for a
  // point (t, c), the requirement applies to all window starts t' in
  // [t, next_t) with t' + k <= horizon and demands c <= t' + k; the
  // binding case is t' = t. Points with c == kInf forbid any window of
  // length k starting at t, i.e. require t + k > horizon.
  auto feasible = [&](Time k) {
    for (const Point& point : points) {
      if (point.t + k > horizon) continue;  // window does not fit
      if (point.completion == kInf || point.completion - point.t > k) return false;
    }
    return true;
  };
  // feasible(k) is monotone in k only while windows still fit; it is in
  // fact monotone overall (larger k both relaxes the bound and drops
  // trailing windows), so binary search applies.
  Time lo = 1, hi = horizon;
  if (!feasible(hi)) return std::nullopt;
  while (lo < hi) {
    const Time mid = lo + (hi - lo) / 2;
    if (feasible(mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

namespace {

// Number of unrolled periods sufficient for any embedding query with a
// window start inside the first period: in the greedy construction each
// task-graph op waits at most two periods past its ready time (one to
// reach the next occurrence of its element, one more when competing
// occurrences are exhausted), so 2|C| + 2 periods always suffice.
std::size_t unroll_budget(const TaskGraph& tg) { return 2 * tg.size() + 2; }

// True iff every element of tg occurs at least once in the schedule.
bool covers_elements(const StaticSchedule& sched, const TaskGraph& tg) {
  std::vector<bool> present;
  for (const ScheduledOp& op : sched.ops()) {
    if (op.elem >= present.size()) present.resize(op.elem + 1, false);
    present[op.elem] = true;
  }
  for (ElementId e : tg.labels()) {
    if (e >= present.size() || !present[e]) return false;
  }
  return true;
}

}  // namespace

std::optional<Time> schedule_latency(const StaticSchedule& sched, const TaskGraph& tg) {
  if (tg.empty()) return 0;
  if (sched.length() == 0 || !covers_elements(sched, tg)) return std::nullopt;

  const Time period = sched.length();
  const UnrollIndex index(sched, unroll_budget(tg));
  EmbeddingKernel kernel(tg, index);

  // completion(t) = earliest finish of an embedding starting at or
  // after t, is a non-decreasing step function of t that only jumps at
  // t = op.start + 1 (when the op at `start` leaves the window). The
  // maximum of completion(t) - t is therefore attained at t = 0 or at
  // one of those jump points, and by cyclicity only t in [0, period)
  // matters.
  std::vector<Time> candidates{0};
  for (const ScheduledOp& op : sched.ops()) {
    if (op.start + 1 < period) candidates.push_back(op.start + 1);
  }

  Time latency = 0;
  for (Time t : candidates) {
    const auto finish = kernel.finish_at(t);
    if (!finish) return std::nullopt;  // cannot happen if covers_elements
    latency = std::max(latency, *finish - t);
  }
  return latency;
}

bool periodic_satisfied(const StaticSchedule& sched, const TaskGraph& tg, Time p,
                        Time d) {
  if (p < 1 || d < 1) {
    throw std::invalid_argument("periodic_satisfied: p and d must be >= 1");
  }
  if (tg.empty()) return true;
  if (sched.length() == 0 || !covers_elements(sched, tg)) return false;

  const Time period = sched.length();
  const Time cycle = rt::lcm_checked(period, p);
  // Invocations at t = 0, p, ..., cycle - p repeat identically afterwards.
  const std::size_t periods_needed =
      static_cast<std::size_t>(cycle / period) + unroll_budget(tg);
  const UnrollIndex index(sched, periods_needed);
  EmbeddingKernel kernel(tg, index);
  for (Time t = 0; t < cycle; t += p) {
    const auto finish = kernel.finish_at(t);
    if (!finish || *finish > t + d) return false;
  }
  return true;
}

namespace {

// Flat-scan reference verifier: the pre-index serial path, one
// constraint at a time over materialized unroll_ops with linear element
// scans, no memo. Kept (behind VerifyOptions::flat_reference) to pin
// the legacy behavior for the differential suite.
std::optional<Time> schedule_latency_flat(const StaticSchedule& sched,
                                          const TaskGraph& tg) {
  if (tg.empty()) return 0;
  if (sched.length() == 0 || !covers_elements(sched, tg)) return std::nullopt;
  const Time period = sched.length();
  const std::vector<ScheduledOp> unrolled = unroll_ops(sched, unroll_budget(tg));
  std::vector<Time> candidates{0};
  for (const ScheduledOp& op : sched.ops()) {
    if (op.start + 1 < period) candidates.push_back(op.start + 1);
  }
  Time latency = 0;
  for (Time t : candidates) {
    const auto finish = earliest_embedding_finish(tg, unrolled, t);
    if (!finish) return std::nullopt;
    latency = std::max(latency, *finish - t);
  }
  return latency;
}

bool periodic_satisfied_flat(const StaticSchedule& sched, const TaskGraph& tg, Time p,
                             Time d) {
  if (p < 1 || d < 1) {
    throw std::invalid_argument("periodic_satisfied: p and d must be >= 1");
  }
  if (tg.empty()) return true;
  if (sched.length() == 0 || !covers_elements(sched, tg)) return false;
  const Time period = sched.length();
  const Time cycle = rt::lcm_checked(period, p);
  const std::size_t periods_needed =
      static_cast<std::size_t>(cycle / period) + unroll_budget(tg);
  const std::vector<ScheduledOp> unrolled = unroll_ops(sched, periods_needed);
  for (Time t = 0; t < cycle; t += p) {
    const auto finish = earliest_embedding_finish(tg, unrolled, t);
    if (!finish || *finish > t + d) return false;
  }
  return true;
}

FeasibilityReport verify_flat(const StaticSchedule& sched, const GraphModel& model) {
  FeasibilityReport report;
  report.feasible = true;
  for (std::size_t i = 0; i < model.constraint_count(); ++i) {
    const TimingConstraint& c = model.constraint(i);
    ConstraintVerdict verdict;
    verdict.constraint = i;
    if (c.periodic()) {
      verdict.satisfied =
          periodic_satisfied_flat(sched, c.task_graph, c.period, c.deadline);
    } else {
      verdict.latency = schedule_latency_flat(sched, c.task_graph);
      verdict.satisfied = verdict.latency.has_value() && *verdict.latency <= c.deadline;
    }
    report.feasible = report.feasible && verdict.satisfied;
    report.verdicts.push_back(verdict);
  }
  return report;
}

// Structural fingerprint of a task graph. Constraints whose task graphs
// are structurally identical (same op count, labels, and edges) produce
// identical embedding queries over identical op spans, so they share
// memo entries under one id.
std::string task_graph_fingerprint(const TaskGraph& tg) {
  std::string key;
  auto put = [&key](std::uint64_t v) {
    key.append(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  put(tg.size());
  for (OpId v = 0; v < tg.size(); ++v) {
    put(tg.label(v));
    const auto& succ = tg.skeleton().successors(v);
    put(succ.size());
    for (OpId s : succ) put(s);
  }
  return key;
}

// Fallback auto-mode cutoff when calibration is disabled: spawn workers
// only above this many planned window queries (E16/E17).
constexpr std::size_t kFixedSerialCutoff = 256;

// Plan of one constraint: either a fixed verdict (degenerate cases
// answered without embedding queries) or a batch of independent
// window-begin queries over a prefix of one shared unroll. The offset
// list lives in the plan-wide pool (offsets_id) — every async
// constraint shares one list, periodic constraints share per period.
struct ConstraintPlan {
  std::size_t tg_id = 0;
  std::size_t periods = 0;  // op-span prefix length, in periods
  std::size_t offsets_id = static_cast<std::size_t>(-1);
  std::optional<ConstraintVerdict> fixed;
};

struct VerifyPlan {
  std::vector<ConstraintPlan> plans;
  std::vector<const TaskGraph*> tg_of_id;
  std::vector<std::vector<Time>> offset_pool;  // deduplicated offset lists
  std::size_t max_periods = 0;
  std::size_t work_units = 0;  // total non-fixed (constraint, offset) units

  // Window begins of plan i, sorted ascending (non-fixed plans only).
  [[nodiscard]] std::span<const Time> offsets_of(std::size_t i) const {
    return offset_pool[plans[i].offsets_id];
  }
};

VerifyPlan build_verify_plan(const StaticSchedule& sched, const GraphModel& model) {
  // Argument validation mirrors the legacy paths: any malformed
  // periodic constraint makes verification throw, so throw up front.
  for (const TimingConstraint& c : model.constraints()) {
    if (c.periodic() && (c.period < 1 || c.deadline < 1)) {
      throw std::invalid_argument("periodic_satisfied: p and d must be >= 1");
    }
  }

  const Time period = sched.length();
  VerifyPlan out;
  out.plans.resize(model.constraint_count());
  std::unordered_map<std::string, std::size_t> tg_ids;

  // One materialization of the schedule's executions serves element
  // coverage checks and async offset lists for every constraint.
  const std::vector<ScheduledOp> ops = sched.ops();
  std::vector<bool> present;
  for (const ScheduledOp& op : ops) {
    if (op.elem >= present.size()) present.resize(op.elem + 1, false);
    present[op.elem] = true;
  }
  const auto covered = [&present](const TaskGraph& tg) {
    for (ElementId e : tg.labels()) {
      if (e >= present.size() || !present[e]) return false;
    }
    return true;
  };

  // Offset-list pooling (disabled with HotPathConfig::soa so the
  // ablation baseline reproduces the legacy per-constraint cost): the
  // async list depends only on the schedule, a periodic list only on
  // the period p — so each distinct list is built exactly once.
  const bool pooled = hotpath_config().soa;
  std::size_t async_id = static_cast<std::size_t>(-1);
  std::vector<std::pair<Time, std::size_t>> periodic_ids;
  const auto async_offsets_id = [&]() -> std::size_t {
    if (async_id != static_cast<std::size_t>(-1)) return async_id;
    std::vector<Time> offsets;
    offsets.reserve(ops.size() + 1);
    offsets.push_back(0);
    for (const ScheduledOp& op : ops) {
      if (op.start + 1 < period) offsets.push_back(op.start + 1);
    }
    out.offset_pool.push_back(std::move(offsets));
    if (pooled) async_id = out.offset_pool.size() - 1;
    return out.offset_pool.size() - 1;
  };
  const auto periodic_offsets_id = [&](Time p, Time cycle) -> std::size_t {
    if (pooled) {
      for (const auto& [key, id] : periodic_ids) {
        if (key == p) return id;
      }
    }
    std::vector<Time> offsets;
    offsets.reserve(static_cast<std::size_t>(cycle / p));
    for (Time t = 0; t < cycle; t += p) offsets.push_back(t);
    out.offset_pool.push_back(std::move(offsets));
    if (pooled) periodic_ids.emplace_back(p, out.offset_pool.size() - 1);
    return out.offset_pool.size() - 1;
  };

  for (std::size_t i = 0; i < model.constraint_count(); ++i) {
    const TimingConstraint& c = model.constraint(i);
    ConstraintPlan& plan = out.plans[i];
    ConstraintVerdict fixed;
    fixed.constraint = i;
    if (c.task_graph.empty()) {
      if (!c.periodic()) fixed.latency = 0;
      fixed.satisfied = c.periodic() || 0 <= c.deadline;
      plan.fixed = fixed;
      continue;
    }
    if (period == 0 || !covered(c.task_graph)) {
      fixed.satisfied = false;
      plan.fixed = fixed;
      continue;
    }
    const auto [it, inserted] =
        tg_ids.emplace(task_graph_fingerprint(c.task_graph), out.tg_of_id.size());
    if (inserted) out.tg_of_id.push_back(&c.task_graph);
    plan.tg_id = it->second;
    if (c.periodic()) {
      const Time cycle = rt::lcm_checked(period, c.period);
      plan.periods =
          static_cast<std::size_t>(cycle / period) + unroll_budget(c.task_graph);
      plan.offsets_id = periodic_offsets_id(c.period, cycle);
    } else {
      plan.periods = unroll_budget(c.task_graph);
      plan.offsets_id = async_offsets_id();
    }
    out.work_units += out.offset_pool[plan.offsets_id].size();
    out.max_periods = std::max(out.max_periods, plan.periods);
  }
  return out;
}

// Deduplicated query table: one slot per distinct (tg_id, periods,
// window begin). Plans are grouped by (tg_id, periods); each group's
// offset lists (sorted ascending by construction) merge into unique
// slots, and slot(i, j) maps plan i's j-th offset to its slot. Groups
// whose members all reference one pooled offset list — every async
// group — skip the merge, and plans whose list *is* the group's slot
// list are identity-mapped (a base offset instead of a materialized
// per-offset vector). Slots of one group are contiguous, so a serial
// executor reuses one kernel per group and parallel workers fill
// disjoint slots lock-free.
struct Query {
  std::size_t tg_id = 0;
  std::size_t periods = 0;
  Time t = 0;
};

struct QueryTable {
  std::vector<Query> queries;
  std::vector<std::size_t> unit_base;   // per plan: identity-map base slot
  std::vector<std::size_t> idx_offset;  // per plan: npos = identity mapping
  std::vector<std::size_t> idx_pool;    // flat storage for explicit maps

  [[nodiscard]] std::size_t slot(std::size_t i, std::size_t j) const {
    return idx_offset[i] == static_cast<std::size_t>(-1)
               ? unit_base[i] + j
               : idx_pool[idx_offset[i] + j];
  }
};

QueryTable build_query_table(const VerifyPlan& plan) {
  QueryTable out;
  out.unit_base.assign(plan.plans.size(), 0);
  out.idx_offset.assign(plan.plans.size(), static_cast<std::size_t>(-1));
  const bool fast = hotpath_config().soa;
  std::vector<std::pair<std::size_t, std::size_t>> group_keys;  // (tg_id, periods)
  std::vector<std::vector<std::size_t>> group_plans;
  for (std::size_t i = 0; i < plan.plans.size(); ++i) {
    const ConstraintPlan& p = plan.plans[i];
    if (p.fixed) continue;
    const auto key = std::make_pair(p.tg_id, p.periods);
    std::size_t g = group_keys.size();
    for (std::size_t j = 0; j < group_keys.size(); ++j) {
      if (group_keys[j] == key) {
        g = j;
        break;
      }
    }
    if (g == group_keys.size()) {
      group_keys.push_back(key);
      group_plans.emplace_back();
    }
    group_plans[g].push_back(i);
  }
  std::vector<Time> merged;
  std::vector<Time> scratch;
  for (std::size_t g = 0; g < group_keys.size(); ++g) {
    const std::vector<std::size_t>& members = group_plans[g];
    // Pool fast path: members referencing one shared offset list (all
    // async constraints of a group, duplicated periodic constraints)
    // need no merge at all — the pool list is the slot list.
    bool uniform = fast;
    for (const std::size_t i : members) {
      if (plan.plans[i].offsets_id != plan.plans[members.front()].offsets_id) {
        uniform = false;
        break;
      }
    }
    std::span<const Time> slots;
    if (uniform) {
      slots = plan.offsets_of(members.front());
    } else {
      // Each plan's offset list is sorted and unique by construction,
      // so the group's slots come from a linear merge, not a sort.
      merged.clear();
      for (const std::size_t i : members) {
        const std::span<const Time> offsets = plan.offsets_of(i);
        if (merged.empty()) {
          merged.assign(offsets.begin(), offsets.end());
          continue;
        }
        if (merged.size() == offsets.size() &&
            std::equal(merged.begin(), merged.end(), offsets.begin())) {
          continue;
        }
        scratch.clear();
        scratch.reserve(merged.size() + offsets.size());
        std::merge(merged.begin(), merged.end(), offsets.begin(), offsets.end(),
                   std::back_inserter(scratch));
        scratch.erase(std::unique(scratch.begin(), scratch.end()), scratch.end());
        merged.swap(scratch);
      }
      slots = merged;
    }
    const std::size_t base = out.queries.size();
    for (const Time t : slots) {
      out.queries.push_back(Query{group_keys[g].first, group_keys[g].second, t});
    }
    for (const std::size_t i : members) {
      const std::span<const Time> offsets = plan.offsets_of(i);
      if (fast && offsets.data() == slots.data() && offsets.size() == slots.size()) {
        out.unit_base[i] = base;  // identity mapping, nothing materialized
        continue;
      }
      out.idx_offset[i] = out.idx_pool.size();
      std::size_t pos = 0;  // both lists sorted: a single forward walk
      for (const Time t : offsets) {
        while (slots[pos] < t) ++pos;
        out.idx_pool.push_back(base + pos);
      }
    }
  }
  return out;
}

// Reduces per-query finishes into the report with commutative
// operations (max / conjunction), so verdicts are independent of which
// worker answered which unit. `fixed_of(i)` may pre-empt a constraint,
// `finish_of(i, j)` yields the j-th offset's finish (kInf = none), and
// `include(i, j)` filters offsets (the incremental path drops the
// edited window; full verification includes everything).
template <typename FixedFn, typename FinishFn, typename IncludeFn>
FeasibilityReport reduce_report(const VerifyPlan& plan, const GraphModel& model,
                                FixedFn&& fixed_of, FinishFn&& finish_of,
                                IncludeFn&& include) {
  FeasibilityReport report;
  report.feasible = true;
  for (std::size_t i = 0; i < plan.plans.size(); ++i) {
    ConstraintVerdict verdict;
    if (const auto fixed = fixed_of(i)) {
      verdict = *fixed;
    } else {
      verdict.constraint = i;
      const TimingConstraint& c = model.constraint(i);
      const std::span<const Time> offsets = plan.offsets_of(i);
      if (c.periodic()) {
        bool all_met = true;
        for (std::size_t j = 0; j < offsets.size(); ++j) {
          if (!include(i, j)) continue;
          const Time finish = finish_of(i, j);
          if (finish == kInf || finish > offsets[j] + c.deadline) all_met = false;
        }
        verdict.satisfied = all_met;
      } else {
        std::optional<Time> worst;
        bool any_missing = false;
        for (std::size_t j = 0; j < offsets.size(); ++j) {
          if (!include(i, j)) continue;
          const Time finish = finish_of(i, j);
          if (finish == kInf) {
            any_missing = true;
          } else {
            const Time lag = finish - offsets[j];
            if (!worst || lag > *worst) worst = lag;
          }
        }
        verdict.latency = any_missing ? std::nullopt : worst;
        verdict.satisfied =
            verdict.latency.has_value() && *verdict.latency <= c.deadline;
      }
    }
    report.feasible = report.feasible && verdict.satisfied;
    report.verdicts.push_back(verdict);
  }
  return report;
}

// Full reduce over a memoized finish table (serial and parallel paths).
FeasibilityReport reduce_full(const VerifyPlan& plan, const QueryTable& table,
                              const std::vector<Time>& memo, const GraphModel& model) {
  return reduce_report(
      plan, model,
      [&](std::size_t i) { return plan.plans[i].fixed; },
      [&](std::size_t i, std::size_t j) { return memo[table.slot(i, j)]; },
      [](std::size_t, std::size_t) { return true; });
}

void fill_stats(VerifyStats* stats, const VerifyPlan& plan, const QueryTable& table,
                const KernelCounters& counters, std::size_t threads_used,
                std::size_t arena_peak) {
  if (stats == nullptr) return;
  stats->embedding_queries = table.queries.size();
  stats->memo_hits = plan.work_units - table.queries.size();
  stats->work_units = plan.work_units;
  stats->index_seeks = counters.index_seeks;
  stats->incremental_hits = 0;
  stats->arena_reuses = counters.arena_reuses;
  stats->bitset_skips = counters.bitset_skips;
  stats->arena_bytes_peak = arena_peak;
  stats->threads_used = threads_used;
}

// A report signalling cooperative cancellation: no verdicts, not
// feasible, and never confusable with a real INFEASIBLE answer.
FeasibilityReport cancelled_report() {
  FeasibilityReport report;
  report.feasible = false;
  report.cancelled = true;
  return report;
}

bool cancel_requested(const std::atomic<bool>* cancel,
                      std::atomic<std::uint64_t>* progress = nullptr) {
  if (progress != nullptr) progress->fetch_add(1, std::memory_order_relaxed);
  return cancel != nullptr && cancel->load(std::memory_order_relaxed);
}

// Serial indexed path: one shared UnrollIndex, one kernel per
// contiguous (tg_id, periods) query group, memoized like the parallel
// path (identical pure queries are answered once). One bump arena backs
// every kernel's scratch; it resets at group switches, so each kernel
// re-lands on the same warm block.
FeasibilityReport verify_serial(const StaticSchedule& sched, const GraphModel& model,
                                const VerifyPlan& plan, VerifyStats* stats,
                                const std::atomic<bool>* cancel = nullptr,
                                std::atomic<std::uint64_t>* progress = nullptr) {
  const QueryTable table = build_query_table(plan);
  std::vector<Time> memo(table.queries.size(), kInf);
  KernelCounters counters;
  std::size_t arena_peak = 0;
  if (!table.queries.empty()) {
    const UnrollIndex index(sched, plan.max_periods);
    util::Arena arena;
    std::optional<EmbeddingKernel> kernel;
    std::size_t cur_tg = UnrollIndex::npos;
    std::size_t cur_periods = 0;
    for (std::size_t q = 0; q < table.queries.size(); ++q) {
      if ((q & 63) == 0 && cancel_requested(cancel, progress)) return cancelled_report();
      const Query& query = table.queries[q];
      if (!kernel || query.tg_id != cur_tg || query.periods != cur_periods) {
        if (kernel) {
          counters += kernel->counters();
          kernel.reset();  // before the arena reset: its scratch dies with it
          arena.reset();
        }
        kernel.emplace(*plan.tg_of_id[query.tg_id], index, query.periods, &arena);
        cur_tg = query.tg_id;
        cur_periods = query.periods;
      }
      const auto finish = kernel->finish_at(query.t);
      memo[q] = finish ? *finish : kInf;
    }
    if (kernel) counters += kernel->counters();
    arena_peak = arena.bytes_peak();
  }
  fill_stats(stats, plan, table, counters, 1, arena_peak);
  return reduce_full(plan, table, memo, model);
}

FeasibilityReport verify_parallel(const StaticSchedule& sched, const GraphModel& model,
                                  const VerifyPlan& plan, std::size_t n_threads,
                                  VerifyStats* stats,
                                  const std::atomic<bool>* cancel = nullptr,
                                  std::atomic<std::uint64_t>* progress = nullptr) {
  const QueryTable table = build_query_table(plan);
  std::vector<Time> memo(table.queries.size(), kInf);
  KernelCounters counters;
  std::size_t arena_peak = 0;
  if (!table.queries.empty()) {
    // Shared read-only index built before the pool; workers fill
    // disjoint memo slots with per-part kernels (the scratch arenas are
    // mutable), so the hot loop stays lock-free.
    const UnrollIndex index(sched, plan.max_periods);
    // Parts are *contiguous* chunks of the query table: a part then
    // sweeps each of its (tg, periods) group segments in ascending
    // window order, so the kernels' monotone seek hints amortize
    // exactly as in the serial path. (A shuffled deal gives every part
    // a strided subsequence whose hint walks re-cover the gaps — the
    // E16 n_threads >= 2 collapse.) Work-stealing over 4x chunks
    // rebalances uneven groups; the split cannot affect results, since
    // slots are disjoint and every query is pure.
    const std::size_t n_queries = table.queries.size();
    const std::size_t n_parts = std::min(n_queries, 4 * n_threads);
    std::vector<std::pair<std::size_t, std::size_t>> parts(n_parts);
    for (std::size_t pi = 0, begin = 0; pi < n_parts; ++pi) {
      const std::size_t len = n_queries / n_parts + (pi < n_queries % n_parts ? 1 : 0);
      parts[pi] = {begin, begin + len};
      begin += len;
    }
    std::vector<KernelCounters> part_counters(parts.size());
    std::vector<std::size_t> part_peaks(parts.size(), 0);
    const auto run_part = [&](std::size_t pi) {
      util::Arena arena;
      std::map<std::pair<std::size_t, std::size_t>, EmbeddingKernel> kernels;
      // Chunks are contiguous, so group switches are rare: queries of
      // one group hit the cached kernel with two integer compares, and
      // the map is consulted only at segment boundaries.
      EmbeddingKernel* cur = nullptr;
      std::size_t cur_tg = UnrollIndex::npos;
      std::size_t cur_periods = 0;
      for (std::size_t q = parts[pi].first; q < parts[pi].second; ++q) {
        if (cancel_requested(cancel, progress)) break;  // abandon remaining queries
        const Query& query = table.queries[q];
        if (cur == nullptr || query.tg_id != cur_tg || query.periods != cur_periods) {
          const auto key = std::make_pair(query.tg_id, query.periods);
          auto it = kernels.find(key);
          if (it == kernels.end()) {
            it = kernels
                     .emplace(std::piecewise_construct, std::forward_as_tuple(key),
                              std::forward_as_tuple(*plan.tg_of_id[query.tg_id], index,
                                                    query.periods, &arena))
                     .first;
          }
          cur = &it->second;
          cur_tg = query.tg_id;
          cur_periods = query.periods;
        }
        const auto finish = cur->finish_at(query.t);
        memo[q] = finish ? *finish : kInf;
      }
      for (const auto& [key, kernel] : kernels) {
        part_counters[pi] += kernel.counters();
      }
      part_peaks[pi] = arena.bytes_peak();
    };
    if (util::resolve_threads(n_threads) > 1) {
      util::ThreadPool pool(n_threads);
      for (std::size_t pi = 0; pi < parts.size(); ++pi) {
        pool.submit([&run_part, pi] { run_part(pi); });
      }
      pool.wait_idle();
    } else {
      // The clamped pool would hold a single worker (single-core host):
      // spawning it buys no parallelism, only thread create/join and
      // scheduler churn. Run the identical per-part tasks inline — the
      // partitioning, kernels, and counters stay a function of the
      // requested n_threads, so results and stats match the pooled run.
      for (std::size_t pi = 0; pi < parts.size(); ++pi) run_part(pi);
    }
    for (const KernelCounters& c : part_counters) counters += c;
    for (const std::size_t peak : part_peaks) arena_peak = std::max(arena_peak, peak);
  }
  // Workers that saw the cancel flag left their memo slots unanswered,
  // so the table cannot be reduced to a trustworthy verdict.
  if (cancel_requested(cancel)) return cancelled_report();
  fill_stats(stats, plan, table, counters, n_threads, arena_peak);
  return reduce_full(plan, table, memo, model);
}

}  // namespace

FeasibilityReport verify_schedule(const StaticSchedule& sched, const GraphModel& model) {
  return verify_schedule(sched, model, VerifyOptions{});
}

FeasibilityReport verify_schedule(const StaticSchedule& sched, const GraphModel& model,
                                  const VerifyOptions& options) {
  if (options.flat_reference) {
    if (options.stats != nullptr) {
      *options.stats = VerifyStats{};
      options.stats->threads_used = 1;
    }
    return verify_flat(sched, model);
  }
  const VerifyPlan plan = build_verify_plan(sched, model);
  std::size_t n_threads = options.n_threads;
  if (n_threads == 0) {
    // Small-work cutoff: spawning workers pessimizes single-core hosts
    // and sub-threshold plans (E16), so auto mode stays serial there.
    const std::size_t hw = util::resolve_threads(0);
    n_threads = (hw <= 1 || plan.work_units < serial_parallel_cutoff()) ? 1 : hw;
  }
  if (n_threads <= 1) {
    return verify_serial(sched, model, plan, options.stats, options.cancel,
                         options.progress);
  }
  return verify_parallel(sched, model, plan, n_threads, options.stats,
                         options.cancel, options.progress);
}

std::size_t calibrate_serial_cutoff() {
  using clock = std::chrono::steady_clock;
  const auto ns_since = [](clock::time_point t0) {
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - t0)
            .count());
  };

  // Canned plan: three unit-weight elements, two async single-op
  // constraints plus one periodic, over a short handmade schedule —
  // enough work units to time steadily, microseconds to run.
  CommGraph comm;
  for (int i = 0; i < 3; ++i) comm.add_element("cal" + std::to_string(i), 1);
  GraphModel model(std::move(comm));
  for (ElementId c = 0; c < 2; ++c) {
    TaskGraph tg;
    tg.add_op(c);
    model.add_constraint(TimingConstraint{"cal_a" + std::to_string(c), std::move(tg), 4,
                                          16, ConstraintKind::kAsynchronous});
  }
  {
    TaskGraph tg;
    tg.add_op(2);
    model.add_constraint(
        TimingConstraint{"cal_p", std::move(tg), 6, 12, ConstraintKind::kPeriodic});
  }
  StaticSchedule sched;
  for (int r = 0; r < 4; ++r) {
    sched.push_execution(0, 1);
    sched.push_execution(1, 1);
    sched.push_execution(2, 1);
    sched.push_idle(1);
  }

  // Per-unit serial cost. n_threads is pinned to 1 — the probe must not
  // consult the cutoff it is computing.
  VerifyStats stats;
  VerifyOptions options;
  options.n_threads = 1;
  options.stats = &stats;
  (void)verify_schedule(sched, model, options);  // warm-up
  constexpr int kVerifyReps = 24;
  std::size_t units = 0;
  const auto t0 = clock::now();
  for (int i = 0; i < kVerifyReps; ++i) {
    (void)verify_schedule(sched, model, options);
    units += stats.work_units;
  }
  const double unit_ns = std::max(1.0, ns_since(t0) / static_cast<double>(
                                                          units == 0 ? 1 : units));

  // Pool spawn + teardown cost, the overhead the parallel path must
  // amortize.
  constexpr int kPoolReps = 4;
  const auto t1 = clock::now();
  for (int i = 0; i < kPoolReps; ++i) {
    util::ThreadPool pool;
    pool.wait_idle();
  }
  const double pool_ns = ns_since(t1) / kPoolReps;

  // Go parallel once the serial work would cost at least twice the pool
  // setup. Clamped: never below the fixed cutoff's order of magnitude,
  // never so high that genuinely heavy plans stay serial.
  const double crossover = 2.0 * pool_ns / unit_ns;
  const double clamped = std::clamp(crossover, 64.0, 65536.0);
  return static_cast<std::size_t>(clamped);
}

std::size_t serial_parallel_cutoff() {
  static const std::size_t cached = [] {
    if (const char* env = std::getenv("RTG_SERIAL_CUTOFF")) {
      const long v = std::atol(env);
      if (v > 0) return static_cast<std::size_t>(v);
    }
    if (!hotpath_config().calibrate) return kFixedSerialCutoff;
    return calibrate_serial_cutoff();
  }();
  return cached;
}

// ---------------------------------------------------------------------------
// IncrementalVerifier

struct IncrementalVerifier::Impl {
  VerifyPlan plan;
  QueryTable table;
  UnrollIndex index;
  std::vector<CachedQuery> memo;  // per query: finish + witness assignment
  // Kernel scratch, warm across the session's drop probes: reset at the
  // start of each verify_drop / baseline rebuild, never mid-call.
  util::Arena arena;

  // Pending candidate state (valid between verify_drop and commit_drop).
  bool pending = false;
  StaticSchedule candidate;
  std::size_t dropped_base = 0;  // dropped op's index within one period
  ElementId dropped_elem = 0;
  Time dropped_offset = 0;  // the window begin that disappears (start + 1)
  std::unordered_map<std::size_t, CachedQuery> overrides;  // re-queried slots
  std::vector<char> force_unsat;  // per constraint: coverage lost
  FeasibilityReport candidate_report;
};

namespace {

// Fingerprints per tg_id, for matching query slots across plan rebuilds
// (tg ids themselves can shift when a constraint turns fixed).
std::vector<std::string> plan_fingerprints(const VerifyPlan& plan) {
  std::vector<std::string> out;
  out.reserve(plan.tg_of_id.size());
  for (const TaskGraph* tg : plan.tg_of_id) out.push_back(task_graph_fingerprint(*tg));
  return out;
}

}  // namespace

IncrementalVerifier::IncrementalVerifier(const GraphModel& model) : model_(&model) {}

void IncrementalVerifier::rebuild_baseline(const StaticSchedule& sched) {
  auto impl = std::make_shared<Impl>();
  impl->plan = build_verify_plan(sched, *model_);
  impl->table = build_query_table(impl->plan);
  impl->memo.assign(impl->table.queries.size(), CachedQuery{});
  KernelCounters counters;
  if (!impl->table.queries.empty()) {
    impl->index = UnrollIndex(sched, impl->plan.max_periods);
    std::optional<EmbeddingKernel> kernel;
    std::size_t cur_tg = UnrollIndex::npos;
    std::size_t cur_periods = 0;
    for (std::size_t q = 0; q < impl->table.queries.size(); ++q) {
      const Query& query = impl->table.queries[q];
      if (!kernel || query.tg_id != cur_tg || query.periods != cur_periods) {
        if (kernel) {
          counters += kernel->counters();
          kernel.reset();
          impl->arena.reset();
        }
        kernel.emplace(*impl->plan.tg_of_id[query.tg_id], impl->index, query.periods,
                       &impl->arena);
        cur_tg = query.tg_id;
        cur_periods = query.periods;
      }
      auto witness = kernel->witness_at(query.t);
      if (witness) {
        impl->memo[q] = CachedQuery{witness->finish, std::move(witness->assignment)};
      } else {
        impl->memo[q] = CachedQuery{kInf, {}};
      }
    }
    if (kernel) counters += kernel->counters();
  }
  stats_.embedding_queries += impl->table.queries.size();
  stats_.memo_hits += impl->plan.work_units - impl->table.queries.size();
  stats_.work_units += impl->plan.work_units;
  stats_.index_seeks += counters.index_seeks;
  stats_.arena_reuses += counters.arena_reuses;
  stats_.bitset_skips += counters.bitset_skips;
  stats_.arena_bytes_peak = std::max(stats_.arena_bytes_peak, impl->arena.bytes_peak());
  stats_.threads_used = 1;
  report_ = reduce_report(
      impl->plan, *model_, [&](std::size_t i) { return impl->plan.plans[i].fixed; },
      [&](std::size_t i, std::size_t j) {
        return impl->memo[impl->table.slot(i, j)].finish;
      },
      [](std::size_t, std::size_t) { return true; });
  committed_ = sched;
  impl_ = std::move(impl);
}

const FeasibilityReport& IncrementalVerifier::verify(const StaticSchedule& sched) {
  rebuild_baseline(sched);
  return report_;
}

const FeasibilityReport& IncrementalVerifier::verify_drop(
    const StaticSchedule& candidate, std::size_t entry) {
  if (!impl_) throw std::logic_error("IncrementalVerifier::verify_drop before verify");
  const auto& entries = committed_.entries();
  if (entry >= entries.size() || entries[entry].elem == kIdleEntry) {
    throw std::invalid_argument("verify_drop: entry is not an execution");
  }
  if (candidate.length() != committed_.length()) {
    throw std::invalid_argument("verify_drop: candidate changes the schedule length");
  }
  Impl& im = *impl_;
  im.pending = false;
  im.overrides.clear();
  im.force_unsat.assign(im.plan.plans.size(), 0);
  im.arena.reset();  // probe kernels below re-land on the warm block

  std::size_t base = 0;
  for (std::size_t i = 0; i < entry; ++i) {
    if (entries[i].elem != kIdleEntry) ++base;
  }
  im.dropped_base = base;
  im.dropped_elem = entries[entry].elem;
  const std::vector<ScheduledOp> committed_ops = committed_.ops();
  im.dropped_offset = committed_ops.at(base).start + 1;

  std::size_t remaining = 0;
  for (const ScheduledOp& op : committed_ops) {
    if (op.elem == im.dropped_elem) ++remaining;
  }
  --remaining;  // the dropped execution itself
  const bool coverage_lost = remaining == 0;

  auto tg_uses_elem = [&](const TaskGraph& tg) {
    const auto& labels = tg.labels();
    return std::find(labels.begin(), labels.end(), im.dropped_elem) != labels.end();
  };
  // A task graph whose labels avoid the dropped element sees the exact
  // same executions in the candidate — every one of its windows is a
  // cache hit. If the last occurrence of the element went away, every
  // constraint over it fails outright, again with no queries.
  std::vector<char> tg_affected(im.plan.tg_of_id.size(), 0);
  for (std::size_t g = 0; g < im.plan.tg_of_id.size(); ++g) {
    tg_affected[g] = !coverage_lost && tg_uses_elem(*im.plan.tg_of_id[g]) ? 1 : 0;
  }
  if (coverage_lost) {
    for (std::size_t i = 0; i < im.plan.plans.size(); ++i) {
      if (!im.plan.plans[i].fixed &&
          tg_uses_elem(*im.plan.tg_of_id[im.plan.plans[i].tg_id])) {
        im.force_unsat[i] = 1;
      }
    }
  }

  // Re-query only windows whose cached witness used the dropped
  // execution (in any unrolled cycle). Dropping shrinks availability,
  // so a witness that avoided it stays optimal and an embedding-free
  // window stays embedding-free — those are served from the cache.
  std::size_t hits = 0;
  std::size_t recomputed = 0;
  KernelCounters counters;
  std::optional<UnrollIndex> cand_index;
  std::map<std::pair<std::size_t, std::size_t>, EmbeddingKernel> kernels;
  const std::size_t opp = im.index.ops_per_period();
  for (std::size_t q = 0; q < im.table.queries.size(); ++q) {
    const Query& query = im.table.queries[q];
    if (!tg_affected[query.tg_id]) {
      ++hits;
      continue;
    }
    const CachedQuery& cached = im.memo[q];
    if (cached.finish == kInf) {
      ++hits;
      continue;
    }
    bool uses_dropped = false;
    for (const std::size_t idx : cached.assignment) {
      if (idx % opp == im.dropped_base) {
        uses_dropped = true;
        break;
      }
    }
    if (!uses_dropped) {
      ++hits;
      continue;
    }
    if (!cand_index) cand_index.emplace(candidate, im.plan.max_periods);
    const auto key = std::make_pair(query.tg_id, query.periods);
    auto it = kernels.find(key);
    if (it == kernels.end()) {
      it = kernels
               .emplace(std::piecewise_construct, std::forward_as_tuple(key),
                        std::forward_as_tuple(*im.plan.tg_of_id[query.tg_id],
                                              *cand_index, query.periods, &im.arena))
               .first;
    }
    auto witness = it->second.witness_at(query.t);
    if (witness) {
      im.overrides[q] = CachedQuery{witness->finish, std::move(witness->assignment)};
    } else {
      im.overrides[q] = CachedQuery{kInf, {}};
    }
    ++recomputed;
  }
  for (const auto& [key, kernel] : kernels) counters += kernel.counters();

  stats_.incremental_hits += hits;
  stats_.embedding_queries += recomputed;
  stats_.work_units += hits + recomputed;
  stats_.index_seeks += counters.index_seeks;
  stats_.arena_reuses += counters.arena_reuses;
  stats_.bitset_skips += counters.bitset_skips;
  stats_.arena_bytes_peak = std::max(stats_.arena_bytes_peak, im.arena.bytes_peak());

  im.candidate_report = reduce_report(
      im.plan, *model_,
      [&](std::size_t i) -> std::optional<ConstraintVerdict> {
        if (im.plan.plans[i].fixed) return im.plan.plans[i].fixed;
        if (im.force_unsat[i]) {
          ConstraintVerdict verdict;
          verdict.constraint = i;
          verdict.satisfied = false;
          return verdict;
        }
        return std::nullopt;
      },
      [&](std::size_t i, std::size_t j) {
        const std::size_t q = im.table.slot(i, j);
        const auto it = im.overrides.find(q);
        return it != im.overrides.end() ? it->second.finish : im.memo[q].finish;
      },
      [&](std::size_t i, std::size_t j) {
        // The dropped execution's window begin disappears from the
        // candidate's async offset set; periodic invocation instants
        // are schedule-independent.
        return model_->constraint(i).periodic() ||
               im.plan.offsets_of(i)[j] != im.dropped_offset;
      });

  im.pending = true;
  im.candidate = candidate;
  return im.candidate_report;
}

void IncrementalVerifier::commit_drop() {
  if (!impl_ || !impl_->pending) {
    throw std::logic_error("IncrementalVerifier::commit_drop without a candidate");
  }
  Impl& old = *impl_;
  auto next = std::make_shared<Impl>();
  next->plan = build_verify_plan(old.candidate, *model_);
  next->table = build_query_table(next->plan);
  next->memo.assign(next->table.queries.size(), CachedQuery{});

  if (!next->table.queries.empty()) {
    next->index = UnrollIndex(old.candidate, next->plan.max_periods);
    // Carry the cache over: every new query existed in the old table
    // (offsets only shrink), keyed by task-graph fingerprint because tg
    // ids can shift when a constraint turned fixed. Cached witnesses
    // from the old view remap into the shortened period (base indices
    // above the dropped op shift down by one); re-queried slots are
    // already candidate-indexed.
    const std::vector<std::string> old_fp = plan_fingerprints(old.plan);
    const std::vector<std::string> new_fp = plan_fingerprints(next->plan);
    std::map<std::tuple<std::string, std::size_t, Time>, std::size_t> old_slot;
    for (std::size_t q = 0; q < old.table.queries.size(); ++q) {
      const Query& query = old.table.queries[q];
      old_slot.emplace(std::make_tuple(old_fp[query.tg_id], query.periods, query.t), q);
    }
    const std::size_t old_opp = old.index.ops_per_period();
    const std::size_t new_opp = next->index.ops_per_period();
    for (std::size_t nq = 0; nq < next->table.queries.size(); ++nq) {
      const Query& query = next->table.queries[nq];
      const std::size_t oq =
          old_slot.at(std::make_tuple(new_fp[query.tg_id], query.periods, query.t));
      const auto it = old.overrides.find(oq);
      if (it != old.overrides.end()) {
        next->memo[nq] = std::move(it->second);
        continue;
      }
      CachedQuery remapped;
      remapped.finish = old.memo[oq].finish;
      remapped.assignment.reserve(old.memo[oq].assignment.size());
      for (const std::size_t idx : old.memo[oq].assignment) {
        const std::size_t cycle = idx / old_opp;
        const std::size_t base = idx % old_opp;
        remapped.assignment.push_back(cycle * new_opp + base -
                                      (base > old.dropped_base ? 1 : 0));
      }
      next->memo[nq] = std::move(remapped);
    }
  }

  report_ = std::move(old.candidate_report);
  committed_ = std::move(old.candidate);
  impl_ = std::move(next);
}

}  // namespace rtg::core
