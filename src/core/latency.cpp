#include "core/latency.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <unordered_map>

#include "rt/task.hpp"  // lcm_checked
#include "util/partition.hpp"
#include "util/thread_pool.hpp"

namespace rtg::core {

namespace {

constexpr Time kInf = std::numeric_limits<Time>::max();

// Greedy earliest-finish embedding for task graphs without repeated
// element labels. Processing ops of `tg` in topological order and
// picking, for each, the earliest execution of its element that starts
// after all predecessors finish is optimal: each choice minimizes that
// op's finish, finishes propagate monotonically to successors, and no
// two task-graph ops compete for the same execution.
std::optional<EmbeddingWitness> greedy_embedding(const TaskGraph& tg,
                                                 std::span<const ScheduledOp> ops,
                                                 Time window_begin,
                                                 const std::vector<bool>& excluded) {
  const auto topo = tg.topological_ops();
  std::vector<Time> finish(tg.size(), 0);
  EmbeddingWitness witness;
  witness.assignment.assign(tg.size(), 0);

  Time makespan = window_begin;
  for (OpId v : topo) {
    Time ready = window_begin;
    for (OpId u : tg.skeleton().predecessors(v)) {
      ready = std::max(ready, finish[u]);
    }
    const ElementId want = tg.label(v);
    // Find the first available op of `want` with start >= ready.
    auto it = std::lower_bound(ops.begin(), ops.end(), ready,
                               [](const ScheduledOp& op, Time t) { return op.start < t; });
    bool found = false;
    for (; it != ops.end(); ++it) {
      const std::size_t idx = static_cast<std::size_t>(it - ops.begin());
      if (it->elem == want && (excluded.empty() || !excluded[idx])) {
        finish[v] = it->finish();
        makespan = std::max(makespan, finish[v]);
        witness.assignment[v] = idx;
        found = true;
        break;
      }
    }
    if (!found) return std::nullopt;
  }
  witness.finish = makespan;
  return witness;
}

// Branch-and-bound embedding for task graphs where an element labels
// several ops (executions must be assigned injectively). Worst case
// exponential — consistent with the general problem's hardness — but
// effective for the small task graphs of real constraints.
struct BnbSearch {
  const TaskGraph& tg;
  std::span<const ScheduledOp> ops;
  Time window_begin;
  const std::vector<bool>& excluded;
  std::vector<OpId> topo;
  std::vector<Time> finish;        // per task-graph op
  std::vector<std::size_t> chosen; // per task-graph op, current path
  std::vector<bool> used;          // per schedule op
  Time best = kInf;
  std::vector<std::size_t> best_assignment;

  void rec(std::size_t k, Time makespan) {
    if (makespan >= best) return;
    if (k == topo.size()) {
      best = makespan;
      best_assignment = chosen;
      return;
    }
    const OpId v = topo[k];
    Time ready = window_begin;
    for (OpId u : tg.skeleton().predecessors(v)) {
      ready = std::max(ready, finish[u]);
    }
    const ElementId want = tg.label(v);
    auto it = std::lower_bound(ops.begin(), ops.end(), ready,
                               [](const ScheduledOp& op, Time t) { return op.start < t; });
    for (; it != ops.end(); ++it) {
      if (it->elem != want) continue;
      if (it->start >= best) break;  // any later choice is no better
      const std::size_t idx = static_cast<std::size_t>(it - ops.begin());
      if (used[idx]) continue;
      if (!excluded.empty() && excluded[idx]) continue;
      used[idx] = true;
      finish[v] = it->finish();
      chosen[v] = idx;
      rec(k + 1, std::max(makespan, finish[v]));
      used[idx] = false;
    }
  }
};

std::optional<EmbeddingWitness> bnb_embedding(const TaskGraph& tg,
                                              std::span<const ScheduledOp> ops,
                                              Time window_begin,
                                              const std::vector<bool>& excluded) {
  BnbSearch search{tg,
                   ops,
                   window_begin,
                   excluded,
                   tg.topological_ops(),
                   std::vector<Time>(tg.size(), 0),
                   std::vector<std::size_t>(tg.size(), 0),
                   std::vector<bool>(ops.size(), false),
                   kInf,
                   {}};
  search.rec(0, window_begin);
  if (search.best == kInf) return std::nullopt;
  return EmbeddingWitness{search.best, std::move(search.best_assignment)};
}

}  // namespace

std::optional<EmbeddingWitness> find_earliest_embedding(const TaskGraph& tg,
                                                        std::span<const ScheduledOp> ops,
                                                        Time window_begin,
                                                        const std::vector<bool>& used) {
  if (tg.empty()) return EmbeddingWitness{window_begin, {}};
  if (tg.has_repeated_labels()) {
    return bnb_embedding(tg, ops, window_begin, used);
  }
  return greedy_embedding(tg, ops, window_begin, used);
}

std::optional<Time> earliest_embedding_finish(const TaskGraph& tg,
                                              std::span<const ScheduledOp> ops,
                                              Time window_begin) {
  const auto witness = find_earliest_embedding(tg, ops, window_begin);
  if (!witness) return std::nullopt;
  return witness->finish;
}

bool window_contains_execution(const TaskGraph& tg, std::span<const ScheduledOp> ops,
                               Time begin, Time end) {
  const auto finish = earliest_embedding_finish(tg, ops, begin);
  return finish.has_value() && *finish <= end;
}

std::vector<ScheduledOp> unroll_ops(const StaticSchedule& sched, std::size_t periods) {
  const std::vector<ScheduledOp> base = sched.ops();
  const Time period = sched.length();
  std::vector<ScheduledOp> result;
  result.reserve(base.size() * periods);
  for (std::size_t r = 0; r < periods; ++r) {
    const Time shift = static_cast<Time>(r) * period;
    for (const ScheduledOp& op : base) {
      result.push_back(ScheduledOp{op.elem, op.start + shift, op.duration});
    }
  }
  return result;
}

std::vector<ScheduledOp> ops_from_trace(const sim::ExecutionTrace& trace,
                                        const CommGraph& comm) {
  std::vector<ScheduledOp> ops;
  std::size_t i = 0;
  const std::size_t n = trace.size();
  while (i < n) {
    const sim::Slot s = trace[i];
    if (s == sim::kIdle) {
      ++i;
      continue;
    }
    if (!comm.has_element(s)) {
      throw std::invalid_argument("ops_from_trace: unknown element id " +
                                  std::to_string(s));
    }
    std::size_t run = 0;
    while (i + run < n && trace[i + run] == s) ++run;
    const Time w = comm.weight(s);
    const std::size_t complete = run / static_cast<std::size_t>(w);
    for (std::size_t k = 0; k < complete; ++k) {
      ops.push_back(ScheduledOp{s, static_cast<Time>(i) + static_cast<Time>(k) * w, w});
    }
    i += run;
  }
  return ops;
}

std::optional<Time> finite_trace_latency(std::span<const ScheduledOp> ops, Time horizon,
                                         const TaskGraph& tg) {
  if (tg.empty()) return 0;
  if (horizon <= 0) return std::nullopt;

  // completion(t) at the left endpoints of its constancy regions.
  std::vector<Time> candidates{0};
  for (const ScheduledOp& op : ops) {
    if (op.start + 1 <= horizon) candidates.push_back(op.start + 1);
  }
  struct Point {
    Time t;
    Time completion;  // kInf when no embedding at or after t
  };
  std::vector<Point> points;
  points.reserve(candidates.size());
  for (Time t : candidates) {
    const auto finish = earliest_embedding_finish(tg, ops, t);
    points.push_back(Point{t, finish && *finish <= horizon ? *finish : kInf});
  }

  // Smallest k such that for every t with t + k <= horizon:
  // completion(t) <= t + k. Checked via the candidate points: for a
  // point (t, c), the requirement applies to all window starts t' in
  // [t, next_t) with t' + k <= horizon and demands c <= t' + k; the
  // binding case is t' = t. Points with c == kInf forbid any window of
  // length k starting at t, i.e. require t + k > horizon.
  auto feasible = [&](Time k) {
    for (const Point& point : points) {
      if (point.t + k > horizon) continue;  // window does not fit
      if (point.completion == kInf || point.completion - point.t > k) return false;
    }
    return true;
  };
  // feasible(k) is monotone in k only while windows still fit; it is in
  // fact monotone overall (larger k both relaxes the bound and drops
  // trailing windows), so binary search applies.
  Time lo = 1, hi = horizon;
  if (!feasible(hi)) return std::nullopt;
  while (lo < hi) {
    const Time mid = lo + (hi - lo) / 2;
    if (feasible(mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

namespace {

// Number of unrolled periods sufficient for any embedding query with a
// window start inside the first period: in the greedy construction each
// task-graph op waits at most two periods past its ready time (one to
// reach the next occurrence of its element, one more when competing
// occurrences are exhausted), so 2|C| + 2 periods always suffice.
std::size_t unroll_budget(const TaskGraph& tg) { return 2 * tg.size() + 2; }

// True iff every element of tg occurs at least once in the schedule.
bool covers_elements(const StaticSchedule& sched, const TaskGraph& tg) {
  std::vector<bool> present;
  for (const ScheduledOp& op : sched.ops()) {
    if (op.elem >= present.size()) present.resize(op.elem + 1, false);
    present[op.elem] = true;
  }
  for (ElementId e : tg.labels()) {
    if (e >= present.size() || !present[e]) return false;
  }
  return true;
}

}  // namespace

std::optional<Time> schedule_latency(const StaticSchedule& sched, const TaskGraph& tg) {
  if (tg.empty()) return 0;
  if (sched.length() == 0 || !covers_elements(sched, tg)) return std::nullopt;

  const Time period = sched.length();
  const std::vector<ScheduledOp> unrolled = unroll_ops(sched, unroll_budget(tg));

  // completion(t) = earliest finish of an embedding starting at or
  // after t, is a non-decreasing step function of t that only jumps at
  // t = op.start + 1 (when the op at `start` leaves the window). The
  // maximum of completion(t) - t is therefore attained at t = 0 or at
  // one of those jump points, and by cyclicity only t in [0, period)
  // matters.
  std::vector<Time> candidates{0};
  for (const ScheduledOp& op : sched.ops()) {
    if (op.start + 1 < period) candidates.push_back(op.start + 1);
  }

  Time latency = 0;
  for (Time t : candidates) {
    const auto finish = earliest_embedding_finish(tg, unrolled, t);
    if (!finish) return std::nullopt;  // cannot happen if covers_elements
    latency = std::max(latency, *finish - t);
  }
  return latency;
}

bool periodic_satisfied(const StaticSchedule& sched, const TaskGraph& tg, Time p,
                        Time d) {
  if (p < 1 || d < 1) {
    throw std::invalid_argument("periodic_satisfied: p and d must be >= 1");
  }
  if (tg.empty()) return true;
  if (sched.length() == 0 || !covers_elements(sched, tg)) return false;

  const Time period = sched.length();
  const Time cycle = rt::lcm_checked(period, p);
  // Invocations at t = 0, p, ..., cycle - p repeat identically afterwards.
  const std::size_t periods_needed =
      static_cast<std::size_t>(cycle / period) + unroll_budget(tg);
  const std::vector<ScheduledOp> unrolled = unroll_ops(sched, periods_needed);
  for (Time t = 0; t < cycle; t += p) {
    const auto finish = earliest_embedding_finish(tg, unrolled, t);
    if (!finish || *finish > t + d) return false;
  }
  return true;
}

namespace {

// Serial legacy path: one constraint at a time, no memo, no pool.
FeasibilityReport verify_serial(const StaticSchedule& sched, const GraphModel& model) {
  FeasibilityReport report;
  report.feasible = true;
  for (std::size_t i = 0; i < model.constraint_count(); ++i) {
    const TimingConstraint& c = model.constraint(i);
    ConstraintVerdict verdict;
    verdict.constraint = i;
    if (c.periodic()) {
      verdict.satisfied = periodic_satisfied(sched, c.task_graph, c.period, c.deadline);
    } else {
      verdict.latency = schedule_latency(sched, c.task_graph);
      verdict.satisfied = verdict.latency.has_value() && *verdict.latency <= c.deadline;
    }
    report.feasible = report.feasible && verdict.satisfied;
    report.verdicts.push_back(verdict);
  }
  return report;
}

// Structural fingerprint of a task graph. Constraints whose task graphs
// are structurally identical (same op count, labels, and edges) produce
// identical embedding queries over identical op spans, so they share
// memo entries under one id.
std::string task_graph_fingerprint(const TaskGraph& tg) {
  std::string key;
  auto put = [&key](std::uint64_t v) {
    key.append(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  put(tg.size());
  for (OpId v = 0; v < tg.size(); ++v) {
    put(tg.label(v));
    const auto& succ = tg.skeleton().successors(v);
    put(succ.size());
    for (OpId s : succ) put(s);
  }
  return key;
}

// Partition seed: fixed so the unit-to-group assignment (and therefore
// run-to-run behavior) is reproducible.
constexpr std::uint64_t kPartitionSeed = 0x9e3779b97f4a7c15ULL;

FeasibilityReport verify_parallel(const StaticSchedule& sched, const GraphModel& model,
                                  std::size_t n_threads, VerifyStats* stats) {
  // Argument validation mirrors the serial path: any malformed periodic
  // constraint makes serial verification throw, so throw up front.
  for (const TimingConstraint& c : model.constraints()) {
    if (c.periodic() && (c.period < 1 || c.deadline < 1)) {
      throw std::invalid_argument("periodic_satisfied: p and d must be >= 1");
    }
  }

  // Plan every constraint: either a fixed verdict (degenerate cases the
  // serial path answers without embedding queries) or a batch of
  // independent (window begin) queries over a prefix of one shared
  // unrolled op sequence.
  struct ConstraintPlan {
    std::size_t tg_id = 0;
    std::size_t periods = 0;      // op-span prefix length, in periods
    std::vector<Time> offsets;    // window begins to query
    std::optional<ConstraintVerdict> fixed;
  };

  const Time period = sched.length();
  std::vector<ConstraintPlan> plans(model.constraint_count());
  std::unordered_map<std::string, std::size_t> tg_ids;
  std::vector<const TaskGraph*> tg_of_id;
  std::size_t max_periods = 0;

  for (std::size_t i = 0; i < model.constraint_count(); ++i) {
    const TimingConstraint& c = model.constraint(i);
    ConstraintPlan& plan = plans[i];
    ConstraintVerdict fixed;
    fixed.constraint = i;
    if (c.task_graph.empty()) {
      if (!c.periodic()) fixed.latency = 0;
      fixed.satisfied = c.periodic() || 0 <= c.deadline;
      plan.fixed = fixed;
      continue;
    }
    if (period == 0 || !covers_elements(sched, c.task_graph)) {
      fixed.satisfied = false;
      plan.fixed = fixed;
      continue;
    }
    const auto [it, inserted] =
        tg_ids.emplace(task_graph_fingerprint(c.task_graph), tg_of_id.size());
    if (inserted) tg_of_id.push_back(&c.task_graph);
    plan.tg_id = it->second;
    if (c.periodic()) {
      const Time cycle = rt::lcm_checked(period, c.period);
      plan.periods = static_cast<std::size_t>(cycle / period) +
                     unroll_budget(c.task_graph);
      for (Time t = 0; t < cycle; t += c.period) plan.offsets.push_back(t);
    } else {
      plan.periods = unroll_budget(c.task_graph);
      plan.offsets.push_back(0);
      for (const ScheduledOp& op : sched.ops()) {
        if (op.start + 1 < period) plan.offsets.push_back(op.start + 1);
      }
    }
    max_periods = std::max(max_periods, plan.periods);
  }

  // One shared unroll: unroll_ops(sched, k) is a prefix of
  // unroll_ops(sched, k') for k <= k', so every constraint's query span
  // is a prefix of the longest one.
  const std::vector<ScheduledOp> unrolled = unroll_ops(sched, max_periods);
  const std::size_t ops_per_period = sched.ops().size();

  // Shared memo table: one slot per distinct (tg_id, periods, window
  // begin) query, built in two steps so the parallel hot loop is
  // lock-free. Plans are grouped by (tg_id, periods); each group's
  // offset lists (sorted ascending by construction) merge into unique
  // slots, and unit_queries[i][j] maps plan i's j-th offset to its
  // slot. Workers then fill disjoint slots with no synchronization
  // beyond the pool's completion barrier.
  struct Query {
    std::size_t tg_id = 0;
    std::size_t periods = 0;
    Time t = 0;
  };
  std::vector<Query> queries;
  std::vector<std::vector<std::size_t>> unit_queries(plans.size());
  std::size_t work_units = 0;
  {
    std::vector<std::pair<std::size_t, std::size_t>> group_keys;  // (tg_id, periods)
    std::vector<std::vector<std::size_t>> group_plans;
    for (std::size_t i = 0; i < plans.size(); ++i) {
      const ConstraintPlan& plan = plans[i];
      if (plan.fixed) continue;
      work_units += plan.offsets.size();
      const auto key = std::make_pair(plan.tg_id, plan.periods);
      std::size_t g = group_keys.size();
      for (std::size_t j = 0; j < group_keys.size(); ++j) {
        if (group_keys[j] == key) {
          g = j;
          break;
        }
      }
      if (g == group_keys.size()) {
        group_keys.push_back(key);
        group_plans.emplace_back();
      }
      group_plans[g].push_back(i);
    }
    for (std::size_t g = 0; g < group_keys.size(); ++g) {
      std::vector<Time> merged;
      for (const std::size_t i : group_plans[g]) {
        merged.insert(merged.end(), plans[i].offsets.begin(), plans[i].offsets.end());
      }
      std::sort(merged.begin(), merged.end());
      merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
      const std::size_t base = queries.size();
      for (const Time t : merged) {
        queries.push_back(Query{group_keys[g].first, group_keys[g].second, t});
      }
      for (const std::size_t i : group_plans[g]) {
        const ConstraintPlan& plan = plans[i];
        unit_queries[i].reserve(plan.offsets.size());
        std::size_t pos = 0;  // both lists sorted: a single forward walk
        for (const Time t : plan.offsets) {
          while (merged[pos] < t) ++pos;
          unit_queries[i].push_back(base + pos);
        }
      }
    }
  }

  // Memoized finish per query; kInf encodes "no embedding".
  std::vector<Time> memo(queries.size(), kInf);
  {
    util::ThreadPool pool(n_threads);
    const auto parts =
        util::partition_indices(queries.size(), 4 * n_threads, kPartitionSeed);
    for (const auto& part : parts) {
      pool.submit([&, part] {
        for (std::size_t q : part) {
          const Query& query = queries[q];
          const std::span<const ScheduledOp> span(unrolled.data(),
                                                  ops_per_period * query.periods);
          const auto finish =
              earliest_embedding_finish(*tg_of_id[query.tg_id], span, query.t);
          memo[q] = finish ? *finish : kInf;
        }
      });
    }
    pool.wait_idle();
  }

  // Reduce per constraint with commutative operations, so the verdicts
  // are independent of which worker answered which unit.
  std::vector<std::optional<Time>> worst(plans.size());      // async: max finish - t
  std::vector<bool> all_met(plans.size(), true);             // periodic
  std::vector<bool> any_missing(plans.size(), false);        // async: some nullopt
  for (std::size_t i = 0; i < plans.size(); ++i) {
    const ConstraintPlan& plan = plans[i];
    if (plan.fixed) continue;
    const TimingConstraint& c = model.constraint(i);
    for (std::size_t j = 0; j < plan.offsets.size(); ++j) {
      const Time t = plan.offsets[j];
      const Time finish = memo[unit_queries[i][j]];
      if (c.periodic()) {
        if (finish == kInf || finish > t + c.deadline) all_met[i] = false;
      } else {
        if (finish == kInf) {
          any_missing[i] = true;
        } else {
          const Time lag = finish - t;
          if (!worst[i] || lag > *worst[i]) worst[i] = lag;
        }
      }
    }
  }

  FeasibilityReport report;
  report.feasible = true;
  for (std::size_t i = 0; i < plans.size(); ++i) {
    ConstraintVerdict verdict;
    if (plans[i].fixed) {
      verdict = *plans[i].fixed;
    } else {
      verdict.constraint = i;
      const TimingConstraint& c = model.constraint(i);
      if (c.periodic()) {
        verdict.satisfied = all_met[i];
      } else {
        verdict.latency = any_missing[i] ? std::nullopt : worst[i];
        verdict.satisfied =
            verdict.latency.has_value() && *verdict.latency <= c.deadline;
      }
    }
    report.feasible = report.feasible && verdict.satisfied;
    report.verdicts.push_back(verdict);
  }

  if (stats != nullptr) {
    stats->embedding_queries = queries.size();
    stats->memo_hits = work_units - queries.size();
    stats->work_units = work_units;
  }
  return report;
}

}  // namespace

FeasibilityReport verify_schedule(const StaticSchedule& sched, const GraphModel& model) {
  return verify_schedule(sched, model, VerifyOptions{});
}

FeasibilityReport verify_schedule(const StaticSchedule& sched, const GraphModel& model,
                                  const VerifyOptions& options) {
  const std::size_t n_threads = util::resolve_threads(options.n_threads);
  if (n_threads <= 1) return verify_serial(sched, model);
  return verify_parallel(sched, model, n_threads, options.stats);
}

}  // namespace rtg::core
