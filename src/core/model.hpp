// model.hpp — Mok's graph-based computation model M = (G, T).
//
// G = (V, E, W_V) is the *communication graph*: nodes are functional
// elements with non-negative integer computation times (weights), edges
// are communication paths. T is a finite set of *timing constraints*
// (C, p, d): C a task graph compatible with G (an acyclic digraph whose
// nodes are labelled with functional elements and whose edges map to
// communication-graph edges), p the period / minimum separation, d the
// deadline. T splits into T_p (periodic: invoked at 0, p, 2p, ...) and
// T_a (asynchronous a.k.a. sporadic: invoked at arbitrary instants at
// least p apart). An invocation at time t requires an execution of C
// inside [t, t+d].
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "graph/digraph.hpp"
#include "sim/event_queue.hpp"  // Time

namespace rtg::core {

using graph::NodeId;
using sim::Time;

/// Functional-element id within a communication graph.
using ElementId = graph::NodeId;

/// Task-graph node (operation) id.
using OpId = graph::NodeId;

/// The communication graph G = (V, E, W_V), plus the per-element
/// pipelinability flag Theorem 3 relies on (whether the element can be
/// decomposed into a chain of unit-time sub-functions).
class CommGraph {
 public:
  /// Adds a functional element. Weight is its worst-case computation
  /// time in slots (>= 1). Names must be unique and non-empty.
  ElementId add_element(std::string name, Time weight = 1, bool pipelinable = true);

  /// Adds a communication path u -> v. Returns false if already present.
  bool add_channel(ElementId u, ElementId v);

  [[nodiscard]] std::size_t size() const { return g_.node_count(); }
  [[nodiscard]] bool has_element(ElementId e) const { return g_.has_node(e); }
  [[nodiscard]] bool has_channel(ElementId u, ElementId v) const {
    return g_.has_edge(u, v);
  }
  [[nodiscard]] Time weight(ElementId e) const { return g_.weight(e); }
  [[nodiscard]] const std::string& name(ElementId e) const { return g_.name(e); }
  [[nodiscard]] bool pipelinable(ElementId e) const { return pipelinable_.at(e); }
  [[nodiscard]] std::optional<ElementId> find(std::string_view name) const {
    return g_.find(name);
  }
  /// Underlying digraph view (for algorithms and DOT export).
  [[nodiscard]] const graph::Digraph& digraph() const { return g_; }

  /// Names of all elements indexed by id (for trace rendering).
  [[nodiscard]] std::vector<std::string> element_names() const;

 private:
  graph::Digraph g_;
  std::vector<bool> pipelinable_;
};

/// A task graph C: acyclic digraph whose nodes (operations) are
/// labelled with functional elements of some communication graph, and
/// whose edges denote data transmission / precedence.
class TaskGraph {
 public:
  /// Adds an operation executing functional element `e`.
  OpId add_op(ElementId e);

  /// Adds a precedence/transmission edge between two operations.
  /// Returns false if already present.
  bool add_dep(OpId u, OpId v);

  [[nodiscard]] std::size_t size() const { return skel_.node_count(); }
  [[nodiscard]] bool empty() const { return skel_.empty(); }
  [[nodiscard]] ElementId label(OpId op) const { return labels_.at(op); }
  [[nodiscard]] const std::vector<ElementId>& labels() const { return labels_; }
  [[nodiscard]] const graph::Digraph& skeleton() const { return skel_; }

  /// Total computation time: Σ weight(label(op)).
  [[nodiscard]] Time computation_time(const CommGraph& g) const;

  /// Validation against a communication graph: acyclic, every label a
  /// valid element, every edge a valid channel. Returns human-readable
  /// diagnostics; empty means valid (a homomorphism into G exists).
  [[nodiscard]] std::vector<std::string> validate(const CommGraph& g) const;

  /// If the skeleton is a simple chain (each node <=1 pred / <=1 succ,
  /// connected), returns the ops in chain order; otherwise nullopt.
  /// A single op and the empty graph count as chains.
  [[nodiscard]] std::optional<std::vector<OpId>> as_chain() const;

  /// Ops in a deterministic topological order.
  [[nodiscard]] std::vector<OpId> topological_ops() const;

  /// True iff some element labels two or more ops.
  [[nodiscard]] bool has_repeated_labels() const;

 private:
  graph::Digraph skel_;
  std::vector<ElementId> labels_;
};

/// Periodic vs asynchronous (sporadic) constraint.
enum class ConstraintKind : std::uint8_t { kPeriodic, kAsynchronous };

/// Degradation priority of a constraint. When the adaptive executive
/// sheds load (core/degradation), asynchronous constraints are dropped
/// in increasing criticality order: level 0 is best-effort and goes
/// first, higher levels survive longer. Levels are relative; only the
/// ordering matters.
using Criticality = std::uint32_t;

/// A timing constraint (C, p, d).
struct TimingConstraint {
  std::string name;
  TaskGraph task_graph;
  Time period = 1;    ///< period (periodic) or minimum separation (async)
  Time deadline = 1;  ///< relative deadline d
  ConstraintKind kind = ConstraintKind::kPeriodic;
  Criticality criticality = 1;  ///< shed order under degradation (0 first)

  [[nodiscard]] bool periodic() const { return kind == ConstraintKind::kPeriodic; }
};

/// The full model M = (G, T).
class GraphModel {
 public:
  GraphModel() = default;
  explicit GraphModel(CommGraph g) : comm_(std::move(g)) {}

  [[nodiscard]] CommGraph& comm() { return comm_; }
  [[nodiscard]] const CommGraph& comm() const { return comm_; }

  /// Adds a constraint after validating it against the communication
  /// graph. Throws std::invalid_argument with the diagnostics on
  /// failure. Returns its index.
  std::size_t add_constraint(TimingConstraint c);

  [[nodiscard]] std::size_t constraint_count() const { return constraints_.size(); }
  [[nodiscard]] const TimingConstraint& constraint(std::size_t i) const {
    return constraints_.at(i);
  }
  [[nodiscard]] const std::vector<TimingConstraint>& constraints() const {
    return constraints_;
  }
  [[nodiscard]] std::optional<std::size_t> find_constraint(std::string_view name) const;

  /// Σ_i w_i / d_i over all constraints — the load measure of Theorem 3.
  [[nodiscard]] double deadline_utilization() const;

  /// True iff every constraint satisfies Theorem 3's hypotheses:
  /// Σ w_i/d_i <= 1/2, floor(d_i/2) >= w_i, and every element reachable
  /// from a task graph is pipelinable.
  [[nodiscard]] bool satisfies_theorem3() const;

  /// Elements used by two or more constraints (candidates for monitors
  /// in process-based synthesis and for sharing in latency scheduling).
  [[nodiscard]] std::vector<ElementId> shared_elements() const;

 private:
  CommGraph comm_;
  std::vector<TimingConstraint> constraints_;
};

/// Builds the paper's Figure 1 / Figure 2 control-system example:
/// elements f_x, f_y, f_z, f_s, f_k with channels
/// f_x->f_s, f_y->f_s, f_z->f_s, f_s->f_k, f_k->f_s; constraints
///   X: periodic (f_x -> f_s -> f_k), period p_x, deadline d_x
///   Y: periodic (f_y -> f_s -> f_k), period p_y, deadline d_y
///   Z: asynchronous (f_z -> f_s), separation p_z, deadline d_z.
struct ControlSystemParams {
  Time cx = 1, cy = 1, cz = 1, cs = 2, ck = 1;  ///< element weights
  Time px = 20, dx = 20;
  Time py = 40, dy = 40;
  Time pz = 50, dz = 25;
};
[[nodiscard]] GraphModel make_control_system(const ControlSystemParams& params = {});

}  // namespace rtg::core
