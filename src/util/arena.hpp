// Bump-pointer arena for hot-path scratch memory (ISSUE 8).
//
// The embedding kernels allocate the same handful of scratch arrays
// (finish/chosen/assignment/hints/used-bitset) for every kernel they
// build, and the verify engines build thousands of kernels per call.
// Routing that scratch through a bump allocator turns the per-kernel
// cost into pointer arithmetic over memory that stays hot in cache:
//
//   * allocate<T>(n) bumps a cursor inside the current block; a new
//     block (geometrically grown) is chained only when the current one
//     is exhausted, so previously returned pointers remain stable;
//   * reset() rewinds to the start while keeping the largest block, so
//     a warmed-up arena serves steady-state queries with zero mallocs
//     (`reuses()` counts resets that recycled a block);
//   * bytes_peak() reports the high-water mark of live bytes, surfaced
//     as VerifyStats::arena_bytes_peak.
//
// Only trivially-destructible types are supported — reset() never runs
// destructors — and the arena is deliberately not thread-safe: engines
// use one arena per worker.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace rtg::util {

class Arena {
 public:
  explicit Arena(std::size_t first_block_bytes = 4096)
      : first_block_bytes_(first_block_bytes < 64 ? 64 : first_block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Uninitialised storage for `count` objects of trivially-destructible
  /// type T, aligned for T. Pointers stay valid until reset().
  template <typename T>
  [[nodiscard]] T* allocate(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors");
    return static_cast<T*>(allocate_bytes(count * sizeof(T), alignof(T)));
  }

  /// Zero-initialised variant (for bitset words / counter rows).
  template <typename T>
  [[nodiscard]] T* allocate_zeroed(std::size_t count) {
    T* p = allocate<T>(count);
    for (std::size_t i = 0; i < count; ++i) p[i] = T{};
    return p;
  }

  /// Rewind to empty, keeping the largest block for reuse. All pointers
  /// handed out so far become invalid.
  void reset() {
    if (!blocks_.empty()) {
      std::size_t best = 0;
      for (std::size_t i = 1; i < blocks_.size(); ++i) {
        if (blocks_[i].size > blocks_[best].size) best = i;
      }
      if (best != 0) std::swap(blocks_[0], blocks_[best]);
      blocks_.resize(1);
      ++reuses_;
    }
    block_used_ = 0;
    live_bytes_ = 0;
  }

  /// High-water mark of live (allocated-since-reset) bytes, including
  /// alignment padding.
  [[nodiscard]] std::size_t bytes_peak() const { return bytes_peak_; }
  /// Number of reset() calls that recycled an existing block.
  [[nodiscard]] std::size_t reuses() const { return reuses_; }
  /// Bytes currently reserved across all blocks.
  [[nodiscard]] std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void* allocate_bytes(std::size_t bytes, std::size_t align) {
    std::size_t used = blocks_.empty() ? 0 : aligned(block_used_, align);
    if (blocks_.empty() || used + bytes > blocks_[0].size) {
      grow(bytes, align);
      used = 0;
    }
    std::byte* p = blocks_[0].data.get() + used;
    live_bytes_ += (used - block_used_) + bytes;
    block_used_ = used + bytes;
    if (live_bytes_ > bytes_peak_) bytes_peak_ = live_bytes_;
    return p;
  }

  // New blocks go to the *front* so the bump cursor always works on
  // blocks_[0]; older blocks stay alive (pointer stability) until reset.
  void grow(std::size_t bytes, std::size_t align) {
    std::size_t size = blocks_.empty() ? first_block_bytes_ : blocks_[0].size * 2;
    if (size < bytes + align) size = bytes + align;
    Block block{std::make_unique<std::byte[]>(size), size};
    blocks_.insert(blocks_.begin(), std::move(block));
    block_used_ = 0;
  }

  static std::size_t aligned(std::size_t offset, std::size_t align) {
    return (offset + align - 1) & ~(align - 1);
  }

  std::size_t first_block_bytes_;
  std::vector<Block> blocks_;
  std::size_t block_used_ = 0;   // bump cursor inside blocks_[0]
  std::size_t live_bytes_ = 0;   // bytes since last reset (all blocks)
  std::size_t bytes_peak_ = 0;
  std::size_t reuses_ = 0;
};

}  // namespace rtg::util
