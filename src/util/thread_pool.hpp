// thread_pool.hpp — work-stealing thread pool for the parallel
// verification and feasibility engines.
//
// Each worker owns a deque guarded by its own mutex: the owner pushes
// and pops at the back (LIFO, cache-friendly for recursive splits) and
// idle workers steal from the front of a victim's deque (FIFO, taking
// the oldest — typically largest — task). A pool is cheap enough to
// construct per top-level query, which keeps the engines free of global
// mutable state and makes every run independently schedulable under
// ThreadSanitizer.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace rtg::util {

/// Resolves a user-facing thread-count knob into a count worth running
/// *compute* threads at: 0 means "auto" (the hardware concurrency, at
/// least 1); any other value is clamped to the hardware concurrency —
/// workers beyond the physical cores cannot run in parallel, they only
/// preempt the ones that do (the E16 `n_threads >= 2` collapse on a
/// single-core host). Engines partition and report by the *requested*
/// count (results and stats stay a function of the knob, not the
/// machine) and consult this only to size or skip the pool. The
/// ThreadPool constructor deliberately does NOT clamp an explicit
/// count: resident-task users (the service layer) need one thread per
/// parked task regardless of core count.
[[nodiscard]] std::size_t resolve_threads(std::size_t n_threads);

class ThreadPool {
 public:
  /// Spawns `n_threads` workers (0 = hardware concurrency).
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueues a task. Tasks submitted from a worker thread go to that
  /// worker's own deque; external submissions are dealt round-robin.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished running. Tasks may
  /// submit further tasks; wait_idle() covers those too.
  void wait_idle();

 private:
  struct Worker {
    std::mutex mutex;
    std::deque<std::function<void()>> deque;
  };

  void worker_loop(std::size_t id);
  [[nodiscard]] std::function<void()> take_task(std::size_t id);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::mutex signal_mutex_;  // guards queued_, in_flight_, stopping_
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  // Tasks sitting in some deque. Signed: a task is pushed *before* it
  // is counted (so queued_ > 0 implies it is findable by a deque scan),
  // which lets a racing taker decrement transiently past zero.
  std::ptrdiff_t queued_ = 0;
  std::size_t in_flight_ = 0;  // tasks queued or currently running
  bool stopping_ = false;
  std::size_t next_victim_ = 0;  // round-robin external submission cursor
};

/// Runs fn(i) for every i in [0, n) across the pool and blocks until
/// all calls return. Indices are dealt into roughly 4 * pool.size()
/// contiguous chunks so stealing can rebalance uneven work.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

}  // namespace rtg::util
