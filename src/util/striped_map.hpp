// striped_map.hpp — lock-striped hash containers for shared state.
//
// The parallel engines share two kinds of state across workers: a memo
// table of embedding-query results and the visited-state set of the
// simulation game. Both see high-frequency point lookups/inserts from
// many threads with no cross-key operations, so a fixed array of
// independently locked shards (stripes) keyed by hash suffices:
// contention drops by the stripe count, and no resize of a global
// table ever stalls every worker at once.
//
// First-write-wins semantics: values inserted for a key are never
// replaced. The engines only store results of deterministic
// computations, so racing writers always carry equal values and either
// may win.
#pragma once

#include <cstddef>
#include <functional>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace rtg::util {

template <typename K, typename V, typename Hash = std::hash<K>>
class StripedMap {
 public:
  explicit StripedMap(std::size_t stripes = 64) : shards_(stripes) {}

  /// Returns the value stored for `key`, if any.
  [[nodiscard]] std::optional<V> get(const K& key) const {
    const Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.map.find(key);
    if (it == shard.map.end()) return std::nullopt;
    return it->second;
  }

  /// Inserts key -> value unless the key is present; returns true iff
  /// this call inserted.
  bool put_if_absent(const K& key, const V& value) {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    return shard.map.emplace(key, value).second;
  }

  [[nodiscard]] std::size_t size() const {
    std::size_t total = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      total += shard.map.size();
    }
    return total;
  }

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<K, V, Hash> map;
  };

  [[nodiscard]] Shard& shard_for(const K& key) {
    return shards_[Hash{}(key) % shards_.size()];
  }
  [[nodiscard]] const Shard& shard_for(const K& key) const {
    return shards_[Hash{}(key) % shards_.size()];
  }

  std::vector<Shard> shards_;
};

template <typename K, typename Hash = std::hash<K>>
class StripedSet {
 public:
  explicit StripedSet(std::size_t stripes = 64) : shards_(stripes) {}

  /// Inserts `key`; returns true iff it was absent (first inserter).
  bool insert(const K& key) {
    Shard& shard = shards_[Hash{}(key) % shards_.size()];
    std::lock_guard<std::mutex> lock(shard.mutex);
    return shard.set.insert(key).second;
  }

  [[nodiscard]] bool contains(const K& key) const {
    const Shard& shard = shards_[Hash{}(key) % shards_.size()];
    std::lock_guard<std::mutex> lock(shard.mutex);
    return shard.set.count(key) != 0;
  }

  [[nodiscard]] std::size_t size() const {
    std::size_t total = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      total += shard.set.size();
    }
    return total;
  }

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_set<K, Hash> set;
  };

  std::vector<Shard> shards_;
};

}  // namespace rtg::util
