// striped_map.hpp — lock-striped hash containers for shared state.
//
// The parallel engines share two kinds of state across workers: a memo
// table of embedding-query results and the visited-state set of the
// simulation game. Both see high-frequency point lookups/inserts from
// many threads with no cross-key operations, so a fixed array of
// independently locked shards (stripes) keyed by hash suffices:
// contention drops by the stripe count, and no resize of a global
// table ever stalls every worker at once.
//
// First-write-wins semantics: values inserted for a key are never
// replaced. The engines only store results of deterministic
// computations, so racing writers always carry equal values and either
// may win.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace rtg::util {

template <typename K, typename V, typename Hash = std::hash<K>>
class StripedMap {
 public:
  explicit StripedMap(std::size_t stripes = 64) : shards_(stripes) {}

  /// Returns the value stored for `key`, if any.
  [[nodiscard]] std::optional<V> get(const K& key) const {
    const Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.map.find(key);
    if (it == shard.map.end()) return std::nullopt;
    return it->second;
  }

  /// Inserts key -> value unless the key is present; returns true iff
  /// this call inserted.
  bool put_if_absent(const K& key, const V& value) {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    return shard.map.emplace(key, value).second;
  }

  [[nodiscard]] std::size_t size() const {
    std::size_t total = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      total += shard.map.size();
    }
    return total;
  }

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<K, V, Hash> map;
  };

  [[nodiscard]] Shard& shard_for(const K& key) {
    return shards_[Hash{}(key) % shards_.size()];
  }
  [[nodiscard]] const Shard& shard_for(const K& key) const {
    return shards_[Hash{}(key) % shards_.size()];
  }

  std::vector<Shard> shards_;
};

/// Lock-striped map with per-shard LRU eviction: the bounded flavor of
/// StripedMap for long-lived caches (the service result cache). Unlike
/// StripedMap, put() replaces existing values, and each shard holds at
/// most ceil(capacity / stripes) entries — inserting beyond that evicts
/// the shard's least-recently-used entry (gets and puts both refresh
/// recency). Eviction is per-shard, so a skewed key distribution can
/// evict earlier than a global-LRU would; for a cache that is only a
/// correctness-preserving memo, that is an acceptable trade for never
/// taking more than one lock per operation.
template <typename K, typename V, typename Hash = std::hash<K>>
class StripedLruMap {
 public:
  explicit StripedLruMap(std::size_t capacity, std::size_t stripes = 16)
      : shards_(stripes == 0 ? 1 : stripes) {
    const std::size_t n = shards_.size();
    per_shard_cap_ = (capacity + n - 1) / n;
    if (per_shard_cap_ == 0) per_shard_cap_ = 1;
  }

  /// Returns the value stored for `key` (refreshing its recency).
  [[nodiscard]] std::optional<V> get(const K& key) {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.map.find(key);
    if (it == shard.map.end()) return std::nullopt;
    shard.order.splice(shard.order.begin(), shard.order, it->second);
    return it->second->second;
  }

  /// Inserts or replaces key -> value; evicts the shard's LRU entry
  /// when the shard is at capacity. Returns true iff an eviction
  /// happened.
  bool put(const K& key, V value) {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      it->second->second = std::move(value);
      shard.order.splice(shard.order.begin(), shard.order, it->second);
      return false;
    }
    bool evicted = false;
    if (shard.map.size() >= per_shard_cap_) {
      const auto& lru = shard.order.back();
      shard.map.erase(lru.first);
      shard.order.pop_back();
      evicted = true;
      ++evictions_count_;
    }
    shard.order.emplace_front(key, std::move(value));
    shard.map.emplace(key, shard.order.begin());
    return evicted;
  }

  bool erase(const K& key) {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.map.find(key);
    if (it == shard.map.end()) return false;
    shard.order.erase(it->second);
    shard.map.erase(it);
    return true;
  }

  [[nodiscard]] std::size_t size() const {
    std::size_t total = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      total += shard.map.size();
    }
    return total;
  }

  /// Total evictions since construction (across all shards).
  [[nodiscard]] std::size_t evictions() const {
    return evictions_count_.load(std::memory_order_relaxed);
  }

  /// Visits every entry under the shard locks, one shard at a time, in
  /// shard order then recency order (MRU first). `fn` must not call
  /// back into the map.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      for (const auto& [k, v] : shard.order) fn(k, v);
    }
  }

  void clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      shard.map.clear();
      shard.order.clear();
    }
  }

 private:
  struct Shard {
    mutable std::mutex mutex;
    // MRU at front; map points into the list.
    std::list<std::pair<K, V>> order;
    std::unordered_map<K, typename std::list<std::pair<K, V>>::iterator, Hash> map;
  };

  [[nodiscard]] Shard& shard_for(const K& key) {
    return shards_[Hash{}(key) % shards_.size()];
  }

  std::vector<Shard> shards_;
  std::size_t per_shard_cap_ = 1;
  std::atomic<std::size_t> evictions_count_{0};
};

template <typename K, typename Hash = std::hash<K>>
class StripedSet {
 public:
  explicit StripedSet(std::size_t stripes = 64) : shards_(stripes) {}

  /// Inserts `key`; returns true iff it was absent (first inserter).
  bool insert(const K& key) {
    Shard& shard = shards_[Hash{}(key) % shards_.size()];
    std::lock_guard<std::mutex> lock(shard.mutex);
    return shard.set.insert(key).second;
  }

  [[nodiscard]] bool contains(const K& key) const {
    const Shard& shard = shards_[Hash{}(key) % shards_.size()];
    std::lock_guard<std::mutex> lock(shard.mutex);
    return shard.set.count(key) != 0;
  }

  [[nodiscard]] std::size_t size() const {
    std::size_t total = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      total += shard.set.size();
    }
    return total;
  }

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_set<K, Hash> set;
  };

  std::vector<Shard> shards_;
};

}  // namespace rtg::util
