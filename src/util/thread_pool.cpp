#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <utility>

namespace rtg::util {

namespace {

// A failed deque scan while queued_ > 0 means another thread claimed
// the task between our scan and the counter check. Re-scanning is right
// a few times (the claimant decrements imminently), but an unbounded
// re-scan loop becomes a busy spin that starves the very workers
// holding the tasks — on a single-core host this collapsed n_threads
// >= 2 verification to ~0.01x serial (E16). After this many misses the
// thread blocks on its condition variable with a timeout instead.
constexpr std::size_t kMaxSpinMisses = 8;
constexpr std::chrono::microseconds kBlockedPoll(100);

// Which worker (if any) the current thread is; lets submit() route
// nested submissions to the submitter's own deque.
thread_local const ThreadPool* tls_pool = nullptr;
thread_local std::size_t tls_worker_id = 0;

// Decrements in_flight_ (and wakes wait_idle) even when the task body
// throws. Without this a throwing task would leave in_flight_ stuck
// above zero and every later wait_idle() — including the one the
// destructor runs — would block forever.
class InFlightGuard {
 public:
  InFlightGuard(std::mutex& m, std::size_t& in_flight, std::condition_variable& cv)
      : mutex_(m), in_flight_(in_flight), idle_cv_(cv) {}
  InFlightGuard(const InFlightGuard&) = delete;
  InFlightGuard& operator=(const InFlightGuard&) = delete;
  ~InFlightGuard() {
    bool idle;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      idle = --in_flight_ == 0;
    }
    if (idle) idle_cv_.notify_all();
  }

 private:
  std::mutex& mutex_;
  std::size_t& in_flight_;
  std::condition_variable& idle_cv_;
};

}  // namespace

std::size_t resolve_threads(std::size_t n_threads) {
  const unsigned hw_raw = std::thread::hardware_concurrency();
  const std::size_t hw = hw_raw == 0 ? 1 : static_cast<std::size_t>(hw_raw);
  if (n_threads == 0) return hw;
  return std::min(n_threads, hw);
}

ThreadPool::ThreadPool(std::size_t n_threads) {
  // An explicit count is honored as given — users like the service
  // layer park *resident* tasks, one per worker, and need exactly that
  // many threads. Oversubscribed workers are harmless since the wait
  // path blocks (bounded spin) instead of spinning; engines that want
  // the clamped count for sizing decisions call resolve_threads().
  const std::size_t n = n_threads == 0 ? resolve_threads(0) : n_threads;
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  // Shutdown order matters: drain FIRST, then stop. wait_idle() returns
  // only once queued_ == 0 and in_flight_ == 0, so by the time
  // stopping_ is set no queued-but-unstarted work can exist — a worker
  // observing (stopping_ && queued_ == 0) and exiting can never strand
  // a task in a deque. Setting stopping_ under signal_mutex_ before
  // notify_all pairs with the workers' wait() predicate reading it
  // under the same mutex, so no worker can miss the wakeup.
  wait_idle();
  {
    std::lock_guard<std::mutex> lock(signal_mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  std::size_t target;
  if (tls_pool == this) {
    target = tls_worker_id;
  } else {
    std::lock_guard<std::mutex> lock(signal_mutex_);
    target = next_victim_++ % workers_.size();
  }
  // in_flight_ goes up before the task becomes stealable (wait_idle
  // must not observe idle while the push is pending), but queued_ goes
  // up only *after* the push: queued_ > 0 then guarantees a deque scan
  // finds a task, so woken threads cannot spin on a counted-but-
  // unpushed task. The price is a transient negative queued_ when the
  // taker's decrement lands first — hence the signed type.
  {
    std::lock_guard<std::mutex> lock(signal_mutex_);
    ++in_flight_;
  }
  {
    std::lock_guard<std::mutex> lock(workers_[target]->mutex);
    workers_[target]->deque.push_back(std::move(task));
  }
  {
    std::lock_guard<std::mutex> lock(signal_mutex_);
    ++queued_;
  }
  work_cv_.notify_one();
  idle_cv_.notify_all();  // a thread helping in wait_idle can take this task
}

std::function<void()> ThreadPool::take_task(std::size_t id) {
  // Own deque first, newest task (LIFO).
  {
    Worker& own = *workers_[id];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.deque.empty()) {
      auto task = std::move(own.deque.back());
      own.deque.pop_back();
      return task;
    }
  }
  // Steal the oldest task from the first non-empty victim.
  for (std::size_t k = 1; k < workers_.size(); ++k) {
    Worker& victim = *workers_[(id + k) % workers_.size()];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.deque.empty()) {
      auto task = std::move(victim.deque.front());
      victim.deque.pop_front();
      return task;
    }
  }
  return {};
}

void ThreadPool::worker_loop(std::size_t id) {
  tls_pool = this;
  tls_worker_id = id;
  std::size_t misses = 0;
  for (;;) {
    std::function<void()> task = take_task(id);
    if (!task) {
      std::unique_lock<std::mutex> lock(signal_mutex_);
      if (stopping_ && queued_ <= 0) return;
      if (queued_ > 0 && ++misses <= kMaxSpinMisses) {
        continue;  // claimed under us — bounded re-scan
      }
      if (misses > kMaxSpinMisses) {
        // Spin budget exhausted: yield the core to whoever holds the
        // work, re-checking at a coarse poll interval.
        work_cv_.wait_for(lock, kBlockedPoll, [this] { return stopping_; });
      } else {
        work_cv_.wait(lock, [this] { return stopping_ || queued_ > 0; });
      }
      misses = 0;
      if (stopping_ && queued_ <= 0) return;
      continue;  // re-race for the task
    }
    misses = 0;
    {
      std::lock_guard<std::mutex> lock(signal_mutex_);
      --queued_;
    }
    InFlightGuard guard(signal_mutex_, in_flight_, idle_cv_);
    task();
  }
}

void ThreadPool::wait_idle() {
  // The waiting thread helps drain the queue instead of sleeping: with
  // fewer hardware threads than pool threads (or a loaded machine) this
  // keeps throughput at least near the serial path's.
  std::size_t misses = 0;
  for (;;) {
    std::function<void()> task = take_task(0);
    if (task) {
      misses = 0;
      {
        std::lock_guard<std::mutex> lock(signal_mutex_);
        --queued_;
      }
      InFlightGuard guard(signal_mutex_, in_flight_, idle_cv_);
      task();
      continue;
    }
    std::unique_lock<std::mutex> lock(signal_mutex_);
    if (in_flight_ == 0) return;
    if (queued_ > 0) {
      // Claimed under us — re-scan a bounded number of times, then
      // block with a timeout instead of spinning against the claimant.
      if (++misses <= kMaxSpinMisses) continue;
      idle_cv_.wait_for(lock, kBlockedPoll, [this] { return in_flight_ == 0; });
      misses = 0;
      if (in_flight_ == 0) return;
      continue;
    }
    idle_cv_.wait(lock, [this] { return in_flight_ == 0 || queued_ > 0; });
    misses = 0;
    if (in_flight_ == 0) return;
  }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t chunks = std::min(n, 4 * pool.size());
  const std::size_t base = n / chunks;
  const std::size_t extra = n % chunks;
  std::size_t begin = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t len = base + (c < extra ? 1 : 0);
    const std::size_t end = begin + len;
    pool.submit([&fn, begin, end] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    });
    begin = end;
  }
  pool.wait_idle();
}

}  // namespace rtg::util
