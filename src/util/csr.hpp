// csr.hpp — compressed-sparse-row bucketing.
//
// Builds, in two counting-sort passes, the classic CSR layout (an
// offsets array plus a flat values array) for a sequence of
// (bucket, value) pairs whose bucket ids are small dense integers.
// Values keep their insertion order within each bucket, so feeding
// pairs in a globally sorted order yields per-bucket sorted rows — the
// property the embedding index relies on (ops fed in start order give
// per-element occurrence lists in start order).
#pragma once

#include <cstddef>
#include <vector>

namespace rtg::util {

template <typename Value>
class CsrBuckets {
 public:
  CsrBuckets() = default;

  /// Builds the layout from `pairs` of (bucket id, value); bucket ids
  /// must be < bucket_count.
  CsrBuckets(std::size_t bucket_count,
             const std::vector<std::pair<std::size_t, Value>>& pairs) {
    offsets_.assign(bucket_count + 1, 0);
    for (const auto& [bucket, value] : pairs) ++offsets_[bucket + 1];
    for (std::size_t b = 1; b <= bucket_count; ++b) offsets_[b] += offsets_[b - 1];
    values_.resize(pairs.size());
    std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
    for (const auto& [bucket, value] : pairs) values_[cursor[bucket]++] = value;
  }

  [[nodiscard]] std::size_t bucket_count() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }

  /// Values of one bucket, in insertion order.
  [[nodiscard]] const Value* begin(std::size_t bucket) const {
    return values_.data() + offsets_[bucket];
  }
  [[nodiscard]] const Value* end(std::size_t bucket) const {
    return values_.data() + offsets_[bucket + 1];
  }
  [[nodiscard]] std::size_t size(std::size_t bucket) const {
    return offsets_[bucket + 1] - offsets_[bucket];
  }

 private:
  std::vector<std::size_t> offsets_;
  std::vector<Value> values_;
};

}  // namespace rtg::util
