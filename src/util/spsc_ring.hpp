// spsc_ring.hpp — bounded lock-free single-producer/single-consumer
// ring buffer.
//
// The producer (an executive emitting trace slots) and the consumer
// (the monitor drain thread) each own one index; the only shared state
// is two atomics, so a push or pop is wait-free: one relaxed load of
// the own index, one acquire load of the remote index (amortized away
// by caching), the element copy, and one release store. Capacity is
// rounded up to a power of two so wrap-around is a mask, not a modulo.
#pragma once

#include <atomic>
#include <cstddef>
#include <new>
#include <span>
#include <stdexcept>
#include <vector>

namespace rtg::util {

#ifdef __cpp_lib_hardware_interference_size
inline constexpr std::size_t kCacheLine = std::hardware_destructive_interference_size;
#else
inline constexpr std::size_t kCacheLine = 64;
#endif

template <typename T>
class SpscRing {
 public:
  /// Rounds `min_capacity` (>= 1) up to a power of two.
  explicit SpscRing(std::size_t min_capacity) {
    if (min_capacity == 0) {
      throw std::invalid_argument("SpscRing: capacity must be >= 1");
    }
    std::size_t cap = 1;
    while (cap < min_capacity) cap <<= 1;
    buf_.resize(cap);
    mask_ = cap - 1;
  }

  [[nodiscard]] std::size_t capacity() const { return buf_.size(); }

  /// Producer side. Returns false (and drops nothing) when full.
  bool try_push(const T& value) {
    const std::size_t tail = tail_.pos.load(std::memory_order_relaxed);
    if (tail - head_cache_ > mask_) {
      head_cache_ = head_.pos.load(std::memory_order_acquire);
      if (tail - head_cache_ > mask_) return false;
    }
    buf_[tail & mask_] = value;
    tail_.pos.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: pops up to out.size() elements, returns the count.
  std::size_t pop_batch(std::span<T> out) {
    const std::size_t head = head_.pos.load(std::memory_order_relaxed);
    std::size_t available = tail_cache_ - head;
    if (available == 0) {
      tail_cache_ = tail_.pos.load(std::memory_order_acquire);
      available = tail_cache_ - head;
      if (available == 0) return 0;
    }
    const std::size_t n = available < out.size() ? available : out.size();
    for (std::size_t i = 0; i < n; ++i) out[i] = buf_[(head + i) & mask_];
    head_.pos.store(head + n, std::memory_order_release);
    return n;
  }

  /// Consumer-side emptiness probe (exact for the consumer thread).
  [[nodiscard]] bool empty() const {
    return head_.pos.load(std::memory_order_acquire) ==
           tail_.pos.load(std::memory_order_acquire);
  }

 private:
  struct alignas(kCacheLine) Index {
    std::atomic<std::size_t> pos{0};
  };

  std::vector<T> buf_;
  std::size_t mask_ = 0;
  Index head_;  ///< consumer-owned
  Index tail_;  ///< producer-owned
  // Single-thread-owned caches of the remote index, refreshed only when
  // the cached value would block the operation.
  alignas(kCacheLine) std::size_t head_cache_ = 0;  ///< producer's view of head
  alignas(kCacheLine) std::size_t tail_cache_ = 0;  ///< consumer's view of tail
};

}  // namespace rtg::util
