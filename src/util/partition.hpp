// partition.hpp — seeded-deterministic task partitioning.
//
// The parallel engines fan work units out in groups. Units that are
// expensive tend to be clustered (all window offsets of one heavy
// constraint are adjacent in the unit list), so contiguous chunking
// would hand one group all the expensive units. A seeded Fisher-Yates
// shuffle followed by round-robin dealing spreads clusters across
// groups in expectation while staying bit-reproducible: the same
// (n_items, n_parts, seed) always yields the same partition, so runs
// are comparable and failures replayable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <numeric>
#include <vector>

#include "sim/rng.hpp"

namespace rtg::util {

/// Partitions the index set [0, n_items) into at most `n_parts`
/// non-empty groups of near-equal size (difference at most one), after
/// a seeded deterministic shuffle. Returns fewer groups when
/// n_items < n_parts; an empty vector when n_items == 0.
[[nodiscard]] inline std::vector<std::vector<std::size_t>> partition_indices(
    std::size_t n_items, std::size_t n_parts, std::uint64_t seed) {
  std::vector<std::vector<std::size_t>> parts;
  if (n_items == 0 || n_parts == 0) return parts;

  std::vector<std::size_t> order(n_items);
  std::iota(order.begin(), order.end(), std::size_t{0});
  sim::Rng rng(seed);
  for (std::size_t i = n_items; i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(i) - 1));
    std::swap(order[i - 1], order[j]);
  }

  const std::size_t used = n_parts < n_items ? n_parts : n_items;
  parts.resize(used);
  for (std::size_t i = 0; i < n_items; ++i) {
    parts[i % used].push_back(order[i]);
  }
  return parts;
}

}  // namespace rtg::util
